/**
 * @file
 * The shared map service: queues, batching, cache, merge.
 *
 * TileServer is the server half of the map tier. It reuses the
 * serving-layer idioms on tile traffic instead of NN inference:
 *
 *  - bounded per-vehicle request queues with *freshest-request drop*
 *    (a vehicle that out-drives its own fetch pipeline keeps the
 *    requests for where it is going and sheds the ones for where it
 *    has been);
 *  - a cross-vehicle batch scheduler that coalesces queued requests
 *    of many vehicles into one backend read batch (demand fetches
 *    dispatch immediately, pure-prefetch batches may wait out a
 *    short batching window);
 *  - deadline-aware admission that sheds a *prefetch* whose
 *    predicted completion falls after the moment the vehicle will
 *    need the tile -- a late prefetch is pure waste, while a demand
 *    fetch is always admitted because someone is stalled on it;
 *  - a server-side LRU cache of encoded tiles, modeling the DRAM
 *    tier in front of the paper's 41 TB store: hits cost `hitMs`,
 *    misses pay `missMs` of backend storage latency.
 *
 * The server also owns the authoritative map state: crowd-sourced
 * DeltaUpdates buffer until a merge epoch, then apply in a canonical
 * (tile, point, tMs, vehicle, seq) order so the merged content --
 * and the version-stamp log recording it -- is bit-identical no
 * matter how pushes interleaved. Every merged tile's version bumps,
 * which is how clients holding the old copy learn to refresh.
 *
 * Like serve::MultiStreamServer the class is clocked externally:
 * the sim owns the event loop and calls submit / dispatch / merge
 * at virtual times; the server never reads a real clock.
 */

#ifndef AD_MAPSERVE_SERVER_HH
#define AD_MAPSERVE_SERVER_HH

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/random.hh"
#include "mapserve/tile_codec.hh"
#include "mapserve/world.hh"

namespace ad {
class Config;
}

namespace ad::mapserve {

/** Map-server knobs (`mapserve.*`). */
struct TileServerParams
{
    int queueDepth = 6;        ///< per-vehicle pending-request bound.
    int batchMax = 32;         ///< max requests per backend batch.
    /** Batching window: a pure-prefetch batch may wait this long for
        co-riders; any demand request dispatches immediately. */
    double windowMs = 4.0;
    bool admission = true;     ///< shed predictably-late prefetches.
    std::size_t cacheTiles = 64; ///< server DRAM cache (tiles).
    double fixedMs = 1.0;      ///< per-batch fixed service cost.
    double hitMs = 0.2;        ///< per-tile cost on a cache hit.
    double missMs = 2.0;       ///< per-tile backend storage latency.
    double jitterSigma = 0.05; ///< lognormal batch-cost jitter.
    double mergePeriodMs = 2000.0; ///< delta-merge epoch length.
    std::uint64_t seed = 43;   ///< jitter RNG seed.

    /** Read every `mapserve.server.*` knob (defaults from *this). */
    static TileServerParams fromConfig(const Config& cfg);

    /** The `mapserve.server.*` key registry (docs/CONFIG.md gate). */
    static std::vector<std::string> knownConfigKeys();
};

/** One tile request as submitted by a vehicle. */
struct TileRequest
{
    int vehicle = -1;          ///< requesting stream id.
    std::int64_t seq = 0;      ///< per-vehicle request sequence.
    TileId tile;               ///< requested tile.
    bool prefetch = false;     ///< speculative (sheddable) fetch.
    double arrivalMs = 0.0;    ///< submission time.
    /** Latest useful completion time: the moment the vehicle is
        predicted to need the tile (admission sheds prefetches that
        would land later). */
    double deadlineMs = 0.0;
};

/** Outcome of submitting one request. */
enum class SubmitOutcome
{
    Queued,  ///< accepted into the vehicle's queue.
    Shed     ///< admission-rejected (predictably late prefetch).
};

/** One tile response inside a completed batch. */
struct ServedTile
{
    TileRequest request;       ///< the request being answered.
    std::uint64_t version = 0; ///< tile version at serve time.
    std::vector<std::uint8_t> payload; ///< encodeTile() bytes.
    bool cacheHit = false;     ///< served from the server cache.
};

/** One dispatched backend batch and its completion time. */
struct BatchResult
{
    double startMs = 0.0;      ///< dispatch time.
    double doneMs = 0.0;       ///< completion (delivery) time.
    std::vector<ServedTile> served; ///< responses, request order.
};

/** Server-side counters (merged into MapServeReport). */
struct TileServerStats
{
    std::int64_t submitted = 0;     ///< requests offered.
    std::int64_t demand = 0;        ///< demand (stall) fetches.
    std::int64_t prefetches = 0;    ///< speculative fetches.
    std::int64_t admissionShed = 0; ///< prefetches shed at submit.
    std::int64_t queueEvictions = 0; ///< freshest-drop evictions.
    std::int64_t served = 0;        ///< responses delivered.
    std::int64_t batches = 0;       ///< backend batches dispatched.
    std::int64_t cacheHits = 0;     ///< served from the tile cache.
    std::int64_t cacheMisses = 0;   ///< paid backend latency.
    std::int64_t bytesServed = 0;   ///< compressed payload bytes.
    std::int64_t rawBytes = 0;      ///< uncompressed-equivalent bytes.
    std::int64_t updatesReceived = 0; ///< delta pushes buffered.
    std::int64_t updatesMerged = 0;   ///< delta pushes applied.
    std::int64_t mergeEpochs = 0;     ///< merge() calls.
    std::int64_t tilesMerged = 0;     ///< tile versions bumped.
};

/**
 * The deterministic map server. Externally clocked: the owning sim
 * calls submit() on vehicle traffic, polls nextDispatchMs() to
 * schedule dispatch events, and calls merge() on epoch boundaries.
 */
class TileServer
{
  public:
    /** @param world the synthetic ground-truth map (outlives us). */
    TileServer(const TileServerParams& params, const WorldModel& world);

    /** The construction parameters. */
    const TileServerParams& params() const { return params_; }

    /**
     * Offer one request at virtual time `nowMs`. Demand requests are
     * always accepted; a prefetch whose predicted completion exceeds
     * its deadline is shed when admission is on. A full vehicle
     * queue evicts its oldest queued *prefetch* (freshest-request
     * drop; oldest request if all are demand) to make room -- the
     * eviction is reported through `evicted`/`hadEviction` (both
     * optional) so the caller can clear in-flight bookkeeping.
     */
    SubmitOutcome submit(const TileRequest& request, double nowMs,
                         TileRequest* evicted = nullptr,
                         bool* hadEviction = nullptr);

    /**
     * Earliest time a dispatch could do work: engine-free time once
     * a batch is ready (full batch or demand present), queue-window
     * expiry otherwise, +inf with nothing queued. The sim schedules
     * a dispatch event here after every submit / completion.
     */
    double nextDispatchMs(double nowMs) const;

    /**
     * Try to form and dispatch one batch at `nowMs`. Returns the
     * batch (with completion time and encoded responses) or nullopt
     * when nothing is ready (engine busy, window still open, or
     * queues empty).
     */
    std::optional<BatchResult> dispatch(double nowMs);

    /** Queued requests across all vehicles. */
    std::size_t queuedRequests() const { return queued_; }

    /** Buffer one crowd-sourced descriptor refresh. */
    void pushUpdate(const DeltaUpdate& update);

    /**
     * Merge every buffered update at epoch boundary `nowMs`:
     * canonical (tile, point, tMs, vehicle, seq) application order,
     * one version bump per touched tile, one version-stamp log line
     * per touched tile (embedding the merged tile's checksum), and
     * cache invalidation of the merged tiles.
     */
    void merge(double nowMs);

    /** Current version of `tile` (0 = never merged). */
    std::uint64_t tileVersion(TileId tile) const;

    /** Authoritative current content of `tile`. */
    Tile authoritative(TileId tile) const;

    /**
     * The version-stamp log: one canonical line per merged tile,
     * "epoch=E t=T tile=X,Y v=V updates=K checksum=HEX". Triple-run
     * bitwise identity of this string is a BENCH_map.json bar.
     */
    const std::string& versionLog() const { return versionLog_; }

    /** Server-side counters. */
    const TileServerStats& stats() const { return stats_; }

  private:
    /** Serve one request (cache lookup + encode); cost via *outMs. */
    ServedTile serveOne(const TileRequest& request, double* costMs);
    void cacheInsert(TileId id, std::vector<std::uint8_t> payload,
                     std::uint64_t version);

    TileServerParams params_;
    const WorldModel& world_;
    Rng jitterRng_;

    /** Per-vehicle bounded FIFO queues, created on first use. */
    std::vector<std::deque<TileRequest>> queues_;
    std::size_t queued_ = 0;
    std::size_t demandQueued_ = 0;
    /** Arrival times of every queued request (window expiry). */
    std::multiset<double> queuedArrivals_;
    double engineFreeAtMs_ = 0.0;

    /** Authoritative state of tiles touched by merges; pristine
        tiles materialize from the world on demand. */
    std::map<TileId, Tile> dirty_;
    std::vector<DeltaUpdate> pendingUpdates_;
    std::int64_t mergeEpoch_ = 0;
    std::string versionLog_;

    /** Encoded-tile LRU cache: map + recency list of TileIds. */
    struct CacheEntry
    {
        std::vector<std::uint8_t> payload;
        std::uint64_t version = 0;
        std::list<TileId>::iterator lruIt; ///< position in lru_.
    };
    std::map<TileId, CacheEntry> cache_;
    std::list<TileId> lru_; ///< most recently used at the front.

    TileServerStats stats_;
};

} // namespace ad::mapserve

#endif // AD_MAPSERVE_SERVER_HH
