/**
 * @file
 * Vehicle-side map client: local tile cache + prefetch bookkeeping.
 *
 * Each vehicle carries a small decoded-tile cache (the on-board DRAM
 * slice of the paper's 41 TB map) and the bookkeeping the
 * pose-driven prefetcher needs: which tiles have a fetch in flight
 * (so a tile is never requested twice) and which appearance level
 * each tile was last crowd-reported at (so a vehicle pushes one
 * refresh burst per appearance step, not one per frame).
 *
 * The client is deliberately passive -- the sim decides *when* to
 * prefetch and *what* to push; MapClient only answers "is this tile
 * warm", "is it already on the wire", and keeps LRU order. That
 * keeps every policy decision in one place (the sim event loop)
 * where its ordering is deterministic.
 */

#ifndef AD_MAPSERVE_CLIENT_HH
#define AD_MAPSERVE_CLIENT_HH

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mapserve/tile_codec.hh"

namespace ad {
class Config;
}

namespace ad::mapserve {

/** Vehicle-side knobs (`mapserve.client.*`). */
struct MapClientParams
{
    std::size_t cacheTiles = 9; ///< on-board decoded-tile cache.
    bool prefetch = true;       ///< pose-driven prefetch enabled.
    /**
     * Prefetch horizon (ms): the prefetcher requests the tile under
     * the pose predicted this far ahead along the velocity vector;
     * the same horizon is the prefetch's admission deadline.
     */
    double horizonMs = 3000.0;

    /** Read every `mapserve.client.*` knob (defaults from *this). */
    static MapClientParams fromConfig(const Config& cfg);

    /** The `mapserve.client.*` key registry (docs/CONFIG.md gate). */
    static std::vector<std::string> knownConfigKeys();
};

/** Per-vehicle client counters (summed into MapServeReport). */
struct MapClientStats
{
    std::int64_t hits = 0;       ///< frame found its tile warm.
    std::int64_t evictions = 0;  ///< LRU capacity evictions.
    std::int64_t installs = 0;   ///< tiles delivered and decoded.
};

/** One vehicle's map cache and in-flight bookkeeping. */
class MapClient
{
  public:
    /** Empty cache with capacity from `params`. */
    explicit MapClient(const MapClientParams& params);

    /** The construction parameters. */
    const MapClientParams& params() const { return params_; }

    /** Cached tile (touching LRU order), nullptr when cold. */
    const Tile* find(TileId id);

    /** Peek without touching LRU order (tests, staleness checks). */
    const Tile* peek(TileId id) const;

    /** Install a delivered tile (evicting LRU beyond capacity) and
        clear its in-flight mark. */
    void install(Tile&& tile);

    /** True when a fetch for `id` is already on the wire. */
    bool inFlight(TileId id) const
    {
        return inFlight_.count(id) != 0;
    }

    /** Mark a fetch as on the wire (submitted and queued). */
    void markInFlight(TileId id) { inFlight_.insert(id); }

    /** Clear an in-flight mark (request was shed, not served). */
    void clearInFlight(TileId id) { inFlight_.erase(id); }

    /**
     * Appearance this vehicle last pushed refreshes for `id` at
     * (negative sentinel = never). The sim re-pushes only when live
     * appearance has moved past the threshold again.
     */
    float lastPushed(TileId id) const;

    /** Record a refresh push of `id` at appearance `a`. */
    void notePushed(TileId id, float a) { pushed_[id] = a; }

    /** Cached tiles right now. */
    std::size_t cachedTiles() const { return cache_.size(); }

    /** Client-side counters. */
    const MapClientStats& stats() const { return stats_; }

  private:
    MapClientParams params_;
    struct Entry
    {
        Tile tile;
        std::list<TileId>::iterator lruIt;
    };
    std::map<TileId, Entry> cache_;
    std::list<TileId> lru_; ///< most recently used first.
    std::set<TileId> inFlight_;
    std::map<TileId, float> pushed_;
    MapClientStats stats_;
};

} // namespace ad::mapserve

#endif // AD_MAPSERVE_CLIENT_HH
