#include "mapserve/world.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad::mapserve {

namespace {

/** SplitMix64 finalizer: the hash behind every world query. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashOf(std::uint64_t seed, std::int64_t a, std::int64_t b,
       std::int64_t c, std::uint64_t salt)
{
    std::uint64_t h = mix64(seed ^ salt);
    h = mix64(h ^ static_cast<std::uint64_t>(a));
    h = mix64(h ^ static_cast<std::uint64_t>(b));
    h = mix64(h ^ static_cast<std::uint64_t>(c));
    return h;
}

/** Hash mapped to a uniform double in [0, 1). */
double
uniformOf(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltAnchor = 0xA0C4;
constexpr std::uint64_t kSaltPattern = 0xB3E7;
constexpr std::uint64_t kSaltPos = 0xC519;
constexpr std::uint64_t kSaltDrift = 0xD82B;

} // namespace

WorldModel::WorldModel(const WorldParams& params) : params_(params)
{
    if (params.worldTiles < 1 || params.pointsPerTile < 1)
        fatal("WorldModel: need at least one tile and one point");
    if (params.tileSizeM <= 0.0)
        fatal("WorldModel: tile size must be positive");
    if (params.driftBits < 1 || params.driftBits > 256)
        fatal("WorldModel: driftBits must be in [1, 256]");
}

double
WorldModel::extentM() const
{
    return params_.worldTiles * params_.tileSizeM;
}

std::int64_t
WorldModel::tileCount() const
{
    return static_cast<std::int64_t>(params_.worldTiles) *
           params_.worldTiles;
}

double
WorldModel::wrap(double x) const
{
    const double extent = extentM();
    x = std::fmod(x, extent);
    return x < 0.0 ? x + extent : x;
}

TileId
WorldModel::tileFor(double x, double y) const
{
    return {static_cast<std::int32_t>(
                std::floor(wrap(x) / params_.tileSizeM)),
            static_cast<std::int32_t>(
                std::floor(wrap(y) / params_.tileSizeM))};
}

Tile
WorldModel::tileAt(TileId id, float appearance) const
{
    Tile tile;
    tile.id = id;
    tile.appearance = appearance;
    tile.points.reserve(static_cast<std::size_t>(params_.pointsPerTile));
    for (int i = 0; i < params_.pointsPerTile; ++i) {
        TilePoint p;
        p.id = i;
        const std::uint64_t hp =
            hashOf(params_.seed, id.x, id.y, i, kSaltPos);
        p.dx = static_cast<float>(uniformOf(hp) * params_.tileSizeM);
        p.dy = static_cast<float>(uniformOf(mix64(hp)) *
                                  params_.tileSizeM);
        p.height =
            static_cast<float>(uniformOf(mix64(mix64(hp))) * 6.0);
        p.desc = observed(id, i, appearance);
        tile.points.push_back(p);
    }
    return tile;
}

vision::Descriptor
WorldModel::observed(TileId id, int pointIndex,
                     float appearance) const
{
    // Tile anchor: shared descriptor structure across the tile's
    // landmarks (what the codec's delta packing exploits).
    vision::Descriptor d;
    for (int w = 0; w < 4; ++w)
        d.words[static_cast<std::size_t>(w)] =
            hashOf(params_.seed, id.x, id.y, w, kSaltAnchor);

    // Per-point pattern: a sparse byte-level difference from the
    // anchor (4 hashed byte positions get hashed values).
    for (int k = 0; k < 4; ++k) {
        const std::uint64_t h = hashOf(
            params_.seed, id.x * 1024 + id.y, pointIndex, k,
            kSaltPattern);
        const int byte = static_cast<int>(h % 32);
        const auto value =
            static_cast<std::uint64_t>((h >> 8) & 0xff);
        const int word = byte / 8;
        const int shift = (byte % 8) * 8;
        auto& slot = d.words[static_cast<std::size_t>(word)];
        slot = (slot & ~(0xffull << shift)) | (value << shift);
    }

    // Appearance drift: slot k owns one bit inside its own stride of
    // the 256-bit descriptor and flips iff its threshold u_k is below
    // the illumination state, so observations at a1 < a2 differ in
    // exactly the slots with u_k in (a1, a2].
    const int stride = 256 / params_.driftBits;
    for (int k = 0; k < params_.driftBits; ++k) {
        const std::uint64_t h = hashOf(
            params_.seed, id.x * 1024 + id.y, pointIndex, k,
            kSaltDrift);
        const double threshold = uniformOf(h);
        if (threshold < static_cast<double>(appearance)) {
            const int bit =
                k * stride + static_cast<int>(mix64(h) %
                                              static_cast<std::uint64_t>(
                                                  stride));
            d.words[static_cast<std::size_t>(bit / 64)] ^=
                1ull << (bit % 64);
        }
    }
    return d;
}

double
WorldModel::meanHammingBits(const Tile& tile, float appearance) const
{
    if (tile.points.empty())
        return 0.0;
    std::int64_t total = 0;
    for (std::size_t i = 0; i < tile.points.size(); ++i)
        total += tile.points[i].desc.hamming(
            observed(tile.id, static_cast<int>(i), appearance));
    return static_cast<double>(total) /
           static_cast<double>(tile.points.size());
}

} // namespace ad::mapserve
