#include "mapserve/tile_codec.hh"

#include <cstring>

#include "common/logging.hh"

namespace ad::mapserve {

namespace {

constexpr std::uint32_t kMagic = 0x41444d54u; // "ADMT"
constexpr std::size_t kDescBytes = 32;

/** Append a POD value little-endian-as-stored (the tree is
    single-architecture; tiles never cross an ABI boundary). */
template <typename T>
void
put(std::vector<std::uint8_t>& out, const T& value)
{
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), p, p + sizeof(T));
}

/** Read a POD value, advancing the cursor; fatal on truncation. */
template <typename T>
T
take(const std::vector<std::uint8_t>& in, std::size_t& cursor)
{
    if (cursor + sizeof(T) > in.size())
        fatal("decodeTile: truncated payload at byte ", cursor, " of ",
              in.size());
    T value;
    std::memcpy(&value, in.data() + cursor, sizeof(T));
    cursor += sizeof(T);
    return value;
}

/** The descriptor as 32 raw bytes (word-order preserving). */
void
descBytes(const vision::Descriptor& d,
          std::uint8_t out[kDescBytes])
{
    std::memcpy(out, d.words.data(), kDescBytes);
}

vision::Descriptor
descFromBytes(const std::uint8_t in[kDescBytes])
{
    vision::Descriptor d;
    std::memcpy(d.words.data(), in, kDescBytes);
    return d;
}

} // namespace

std::string
TileId::toString() const
{
    return std::to_string(x) + "," + std::to_string(y);
}

std::vector<std::uint8_t>
encodeTile(const Tile& tile)
{
    std::vector<std::uint8_t> out;
    out.reserve(16 + kDescBytes + tile.points.size() * 24);
    put(out, kMagic);
    put(out, static_cast<std::uint32_t>(tile.points.size()));
    put(out, tile.appearance);
    if (tile.points.empty())
        return out;

    // Anchor: the first point's descriptor, stored raw. Every other
    // descriptor becomes a presence mask over its 32 bytes plus the
    // bytes that differ from the anchor.
    std::uint8_t anchor[kDescBytes];
    descBytes(tile.points.front().desc, anchor);
    out.insert(out.end(), anchor, anchor + kDescBytes);

    for (const TilePoint& p : tile.points) {
        put(out, p.id);
        put(out, p.dx);
        put(out, p.dy);
        put(out, p.height);
        std::uint8_t bytes[kDescBytes];
        descBytes(p.desc, bytes);
        std::uint32_t mask = 0;
        for (std::size_t b = 0; b < kDescBytes; ++b)
            if (bytes[b] != anchor[b])
                mask |= 1u << b;
        put(out, mask);
        for (std::size_t b = 0; b < kDescBytes; ++b)
            if (mask & (1u << b))
                out.push_back(bytes[b]);
    }
    return out;
}

Tile
decodeTile(TileId id, std::uint64_t version,
           const std::vector<std::uint8_t>& bytes)
{
    std::size_t cursor = 0;
    if (take<std::uint32_t>(bytes, cursor) != kMagic)
        fatal("decodeTile: bad magic");
    const auto count = take<std::uint32_t>(bytes, cursor);

    Tile tile;
    tile.id = id;
    tile.version = version;
    tile.appearance = take<float>(bytes, cursor);
    if (count == 0) {
        if (cursor != bytes.size())
            fatal("decodeTile: trailing bytes in empty tile");
        return tile;
    }

    std::uint8_t anchor[kDescBytes];
    if (cursor + kDescBytes > bytes.size())
        fatal("decodeTile: truncated anchor");
    std::memcpy(anchor, bytes.data() + cursor, kDescBytes);
    cursor += kDescBytes;

    tile.points.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        TilePoint p;
        p.id = take<std::int32_t>(bytes, cursor);
        p.dx = take<float>(bytes, cursor);
        p.dy = take<float>(bytes, cursor);
        p.height = take<float>(bytes, cursor);
        const auto mask = take<std::uint32_t>(bytes, cursor);
        std::uint8_t desc[kDescBytes];
        std::memcpy(desc, anchor, kDescBytes);
        for (std::size_t b = 0; b < kDescBytes; ++b)
            if (mask & (1u << b))
                desc[b] = take<std::uint8_t>(bytes, cursor);
        p.desc = descFromBytes(desc);
        tile.points.push_back(p);
    }
    if (cursor != bytes.size())
        fatal("decodeTile: trailing bytes after ", count, " points");
    return tile;
}

std::size_t
rawTileBytes(const Tile& tile)
{
    // Header (magic, count, appearance) + 48 fixed bytes per point
    // (id, dx, dy, height, raw descriptor).
    return 12 + tile.points.size() * (16 + kDescBytes);
}

std::uint64_t
tileChecksum(const Tile& tile)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    std::uint32_t appearanceBits;
    std::memcpy(&appearanceBits, &tile.appearance, 4);
    mix(tile.version);
    mix(appearanceBits);
    for (const TilePoint& p : tile.points) {
        std::uint32_t fx, fy, fh;
        std::memcpy(&fx, &p.dx, 4);
        std::memcpy(&fy, &p.dy, 4);
        std::memcpy(&fh, &p.height, 4);
        mix(static_cast<std::uint32_t>(p.id));
        mix(fx);
        mix(fy);
        mix(fh);
        for (const std::uint64_t w : p.desc.words)
            mix(w);
    }
    return h;
}

} // namespace ad::mapserve
