/**
 * @file
 * Per-stream SLO accounting. The paper states the constraint per
 * vehicle -- complete each frame within the latency budget at the
 * 99.99th percentile -- and a shared machine must therefore track
 * *each stream's* tail, not a machine-wide aggregate that lets one
 * starved stream hide inside forty healthy ones.
 *
 * StreamSlo keeps a rolling window of recent completion latencies per
 * stream and derives from it: window percentiles (p50/p99/p99.9, with
 * an explicit "not enough samples" sentinel instead of a fabricated
 * tail), the miss-budget burn rate (how fast the stream is spending
 * its allowed miss fraction -- burn > 1 means the SLO is being
 * violated *now*, long before the lifetime ratio shows it), and the
 * goodput ratio (frames served by the engine on time, the number the
 * operator actually sells).
 *
 * Hot-path contract: observe() is a ring store plus a few counter
 * bumps; the derived snapshot is recomputed every refreshEvery
 * completions (and on demand), so per-completion cost stays O(1) and
 * allocation-free after construction.
 */

#ifndef AD_SERVE_SLO_HH
#define AD_SERVE_SLO_HH

#include <cstdint>

#include "common/stats.hh"

namespace ad::serve {

/** SLO accounting knobs (shared by all streams of a run). */
struct SloParams
{
    int windowFrames = 2048;      ///< completions in the rolling window.
    double budgetMs = 0.0;        ///< latency budget; 0 = stream deadline.
    double targetMissRate = 1e-4; ///< allowed miss fraction (p99.99).
    int refreshEvery = 32;        ///< completions between snapshot refreshes.
};

/**
 * Derived SLO state at one refresh point. Percentiles are taken over
 * the rolling window and report kInsufficientSamples (-1) until the
 * window holds enough samples to resolve them (see
 * WindowedLatencyRecorder::minSamplesFor) -- a p99.9 from 40 samples
 * would be noise dressed as a guarantee.
 */
struct SloSnapshot
{
    std::size_t window = 0;  ///< samples currently in the window.
    double p50Ms = -1.0;     ///< window median (-1 until resolvable).
    double p99Ms = -1.0;     ///< window p99 (-1 until resolvable).
    double p999Ms = -1.0;    ///< window p99.9 (-1 until resolvable).
    double missRate = 0.0;   ///< lifetime miss fraction.
    double burnRate = 0.0;   ///< window miss rate / target miss rate.
    double goodputRatio = 0.0; ///< lifetime on-time engine-served share.
    std::uint64_t misses = 0;  ///< lifetime completions past budget.
    std::uint64_t total = 0;   ///< lifetime completions observed.
};

/**
 * One stream's SLO accountant: rolling latency window plus lifetime
 * counters, with a cached snapshot refreshed every refreshEvery
 * completions so readers (admission slack, metrics gauges) never pay
 * the percentile sort on the completion path.
 */
class StreamSlo
{
  public:
    /**
     * @param params   shared knobs.
     * @param deadlineMs the stream's deadline, used as the budget
     *                   when params.budgetMs is 0.
     */
    StreamSlo(const SloParams& params, double deadlineMs);

    /**
     * Record one completion.
     * @param latencyMs arrival-to-done latency.
     * @param goodput   true when the frame was engine-served on time.
     */
    void observe(double latencyMs, bool goodput);

    /** Recompute the cached snapshot now. */
    void refresh();

    /** The cached snapshot (refreshed every refreshEvery observes). */
    const SloSnapshot& snapshot() const { return snap_; }

    /**
     * The window's resolvable p99 for admission slack, or -1 while
     * the window is too small to state one.
     */
    double tailMs() const { return snap_.p99Ms; }

    /** The effective latency budget (ms). */
    double budgetMs() const { return budgetMs_; }

    /** Lifetime completions observed. */
    std::uint64_t total() const { return total_; }

    /** Lifetime completions past the budget. */
    std::uint64_t misses() const { return misses_; }

  private:
    SloParams params_;
    double budgetMs_;
    WindowedLatencyRecorder window_;
    std::uint64_t total_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t good_ = 0;
    int sinceRefresh_ = 0;
    SloSnapshot snap_;
};

} // namespace ad::serve

#endif // AD_SERVE_SLO_HH
