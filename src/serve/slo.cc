#include "serve/slo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ad::serve {

StreamSlo::StreamSlo(const SloParams& params, double deadlineMs)
    : params_(params),
      budgetMs_(params.budgetMs > 0.0 ? params.budgetMs : deadlineMs),
      window_(static_cast<std::size_t>(
          std::max(1, params.windowFrames)))
{
    if (params_.targetMissRate <= 0.0)
        fatal("StreamSlo: targetMissRate must be positive");
    if (params_.refreshEvery < 1)
        params_.refreshEvery = 1;
}

void
StreamSlo::observe(double latencyMs, bool goodput)
{
    window_.record(latencyMs);
    ++total_;
    if (latencyMs > budgetMs_)
        ++misses_;
    if (goodput)
        ++good_;
    if (++sinceRefresh_ >= params_.refreshEvery) {
        sinceRefresh_ = 0;
        refresh();
    }
}

void
StreamSlo::refresh()
{
    snap_.window = window_.count();
    snap_.p50Ms = window_.resolvable(0.50)
                      ? window_.percentile(0.50)
                      : WindowedLatencyRecorder::kInsufficientSamples;
    snap_.p99Ms = window_.resolvable(0.99)
                      ? window_.percentile(0.99)
                      : WindowedLatencyRecorder::kInsufficientSamples;
    snap_.p999Ms = window_.resolvable(0.999)
                       ? window_.percentile(0.999)
                       : WindowedLatencyRecorder::kInsufficientSamples;
    snap_.total = total_;
    snap_.misses = misses_;
    snap_.missRate =
        total_ > 0 ? static_cast<double>(misses_) /
                         static_cast<double>(total_)
                   : 0.0;
    const std::size_t n = window_.count();
    const double windowMissRate =
        n > 0 ? static_cast<double>(window_.countAbove(budgetMs_)) /
                    static_cast<double>(n)
              : 0.0;
    snap_.burnRate = windowMissRate / params_.targetMissRate;
    snap_.goodputRatio =
        total_ > 0 ? static_cast<double>(good_) /
                         static_cast<double>(total_)
                   : 0.0;
}

} // namespace ad::serve
