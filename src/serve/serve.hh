/**
 * @file
 * Multi-stream serving layer, part 4: the server itself.
 *
 * MultiStreamServer multiplexes N vehicle streams over one shared
 * inference engine: arrivals flow through per-stream bounded
 * ingestion queues (freshest-frame drop), the deadline-aware
 * admission controller sheds or degrades what the machine cannot
 * serve in time, and the batch scheduler coalesces the admitted
 * requests of different streams into cross-stream NN batches.
 *
 * The server is a discrete-event loop over an explicit virtual
 * clock. What makes the clock tick is the engine: a pluggable
 * BatchEngine reports how long each batch took. Two engines ship:
 *
 *  - ModeledBatchEngine: seeded cost model (fixed + marginal per
 *    work unit, lognormal jitter, rare tail spikes), so scale
 *    sweeps over 32 streams x 100k frames run in milliseconds and
 *    are bit-reproducible; and
 *  - NnBatchEngine: the real thing -- Network::forwardBatch over
 *    the shared ThreadPool, timed with a Stopwatch, so the serving
 *    policies are exercised against genuine multithreaded kernels
 *    (this is the TSan target).
 *
 * Per-stream metrics are recorded into a server-local
 * MetricRegistry with labeled names ("serve.stream{id=3}.…") and
 * merged into the process-wide registry at the end of a run, so the
 * hot path never touches the global registry lock.
 */

#ifndef AD_SERVE_SERVE_HH
#define AD_SERVE_SERVE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "serve/admission.hh"
#include "serve/batch_scheduler.hh"
#include "serve/stream.hh"

namespace ad::nn {
class Network;
struct KernelContext;
class Tensor;
}

namespace ad::serve {

/**
 * Executes one cross-stream batch and reports its engine-occupancy
 * cost in (virtual) milliseconds. Implementations may do real work.
 */
class BatchEngine
{
  public:
    virtual ~BatchEngine() = default;

    /** Run the batch; return how long the engine was busy (ms). */
    virtual double runBatch(const Batch& batch) = 0;
};

/** Cost-model knobs of the modeled engine. */
struct ModeledEngineParams
{
    /** Per-invocation fixed cost: weight streaming, launch, packing. */
    double fixedMs = 8.0;
    /** Marginal cost per work unit (one full-scale request). */
    double marginalMs = 9.0;
    /** Lognormal jitter sigma applied per batch (mean-preserving). */
    double jitterSigma = 0.08;
    /** Probability of a contention spike on one batch. */
    double spikeP = 0.002;
    /**
     * Multiplicative cost factor of a spike (weight eviction,
     * co-runner contention: the batch runs at half speed). The
     * admission controller's riskFactor must cover this for the
     * tail guarantee to hold.
     */
    double spikeFactor = 2.0;
    std::uint64_t seed = 17;
};

/**
 * Seeded analytic engine: cost = fixed + marginal x total work
 * units, jittered. Deterministic for a given seed and call
 * sequence; never touches a real clock.
 */
class ModeledBatchEngine : public BatchEngine
{
  public:
    explicit ModeledBatchEngine(const ModeledEngineParams& params);

    double runBatch(const Batch& batch) override;

    /** Mean cost of a batch with the given total work units. */
    double meanCostMs(double totalCostScale) const;

  private:
    ModeledEngineParams params_;
    Rng rng_;
};

/**
 * Real-inference engine: stacks one prebuilt per-stream input
 * tensor per batch item and runs Network::forwardBatch under a
 * KernelContext (batch items shard across the ThreadPool), timing
 * the call with a wall-clock Stopwatch. Degraded cost scales are
 * honored by running the same network on the same input (the
 * measured path has no half-scale standby net); the point of this
 * engine is policy-under-real-kernels, not cost fidelity.
 */
class NnBatchEngine : public BatchEngine
{
  public:
    /**
     * @param net network shared by all streams (outlives the engine).
     * @param inputs one input tensor per stream id.
     * @param threads `nn.threads`-style request for the kernel pool.
     */
    NnBatchEngine(const nn::Network& net,
                  std::vector<nn::Tensor> inputs, int threads);
    ~NnBatchEngine() override;

    double runBatch(const Batch& batch) override;

    /**
     * Order-independent checksum over every output element produced
     * so far; two runs that served the same (stream, seq) set must
     * agree bit-for-bit regardless of how requests were batched.
     */
    double outputChecksum() const { return checksum_; }

  private:
    const nn::Network& net_;
    std::vector<nn::Tensor> inputs_;
    std::unique_ptr<nn::KernelContext> ctx_;
    double checksum_ = 0.0;
};

/** Server construction parameters. */
struct ServeParams
{
    int streams = 8;
    StreamParams stream;          ///< common per-stream knobs.
    BatchPolicy batch;
    AdmissionParams admission;
    pipeline::GovernorParams governor; ///< per-stream copy.
    /**
     * Stagger stream phases across one camera period (stream i
     * starts at i/N of the period) instead of arriving in lockstep.
     */
    bool stagger = true;
    /** Per-stream post-inference cost (fusion + planning glue), ms. */
    double postMeanMs = 1.5;
    double postJitterSigma = 0.2;
    /** Local serving cost of a coasted (tracking-only) frame, ms. */
    double coastMs = 2.0;
    std::uint64_t seed = 29;
    /** Prefix of metric names ("serve" unless a tool overrides). */
    std::string metricPrefix = "serve";
    /** Per-stream SLO accounting knobs. */
    SloParams slo;
};

/** Aggregate outcome of one serving run. */
struct ServeReport
{
    std::int64_t framesArrived = 0;
    std::int64_t framesAdmitted = 0;  ///< engine-served.
    std::int64_t framesDegraded = 0;  ///< admitted at degraded cost.
    std::int64_t framesCoasted = 0;   ///< served without the engine.
    std::int64_t framesShed = 0;      ///< admission + staleness drops.
    std::int64_t deadlineMisses = 0;  ///< engine-served, late.
    LatencySummary admittedLatency;   ///< arrival -> completion (ms).
    double durationMs = 0.0;          ///< virtual time span of the run.
    /** Engine-served frames completing inside the budget, per second. */
    double goodputFps = 0.0;
    /** All served frames (incl. coasted) inside budget, per second. */
    double totalGoodputFps = 0.0;
    double shedRate = 0.0;            ///< shed / arrived.
    std::int64_t batches = 0;
    double meanBatchSize = 0.0;
    double meanBatchWaitMs = 0.0;
    std::int64_t pressureEscalations = 0;
    /** Frames spent in each governor mode, summed over streams. */
    std::array<std::uint64_t, pipeline::kOperatingModeCount>
        framesInMode{};
    /** Final per-stream SLO snapshots, indexed by stream id. */
    std::vector<SloSnapshot> streamSlo;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * The multi-stream serving loop. Construction registers the
 * streams; run() plays `framesPerStream` camera frames per stream
 * through admission, batching and the engine on virtual time.
 */
class MultiStreamServer
{
  public:
    MultiStreamServer(const ServeParams& params, BatchEngine& engine);

    /** Serve every stream for the given number of camera frames. */
    ServeReport run(std::int64_t framesPerStream);

    const StreamRegistry& registry() const { return registry_; }
    const BatchScheduler& scheduler() const { return scheduler_; }
    const AdmissionController& admission() const { return admission_; }

    /**
     * Server-local metric registry (per-stream labeled counters and
     * latency histograms). run() merges it into the global registry
     * when metrics are enabled.
     */
    const obs::MetricRegistry& localMetrics() const { return local_; }

  private:
    struct Event;

    void publishMetrics();

    ServeParams params_;
    BatchEngine& engine_;
    StreamRegistry registry_;
    BatchScheduler scheduler_;
    AdmissionController admission_;
    Rng postRng_;
    obs::MetricRegistry local_;
};

} // namespace ad::serve

#endif // AD_SERVE_SERVE_HH
