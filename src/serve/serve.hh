/**
 * @file
 * Multi-stream serving layer, part 4: the server itself.
 *
 * MultiStreamServer multiplexes N vehicle streams over one shared
 * inference engine: arrivals flow through per-stream bounded
 * ingestion queues (freshest-frame drop), the deadline-aware
 * admission controller sheds or degrades what the machine cannot
 * serve in time, and the batch scheduler coalesces the admitted
 * requests of different streams into cross-stream NN batches.
 *
 * The server is a discrete-event loop over an explicit virtual
 * clock. What makes the clock tick is the engine: a pluggable
 * BatchEngine reports how long each batch took. Two engines ship:
 *
 *  - ModeledBatchEngine: seeded cost model (fixed + marginal per
 *    work unit, lognormal jitter, rare tail spikes), so scale
 *    sweeps over 32 streams x 100k frames run in milliseconds and
 *    are bit-reproducible; and
 *  - NnBatchEngine: the real thing -- Network::forwardBatch over
 *    the shared ThreadPool, timed with a Stopwatch, so the serving
 *    policies are exercised against genuine multithreaded kernels
 *    (this is the TSan target).
 *
 * Per-stream metrics are recorded into a server-local
 * MetricRegistry with labeled names ("serve.stream{id=3}.…") and
 * merged into the process-wide registry at the end of a run, so the
 * hot path never touches the global registry lock.
 */

#ifndef AD_SERVE_SERVE_HH
#define AD_SERVE_SERVE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "obs/metrics.hh"
#include "serve/admission.hh"
#include "serve/batch_scheduler.hh"
#include "serve/stream.hh"

namespace ad::nn {
class Network;
struct KernelContext;
class Tensor;
}

namespace ad::serve {

/**
 * Executes one cross-stream batch and reports its engine-occupancy
 * cost in (virtual) milliseconds. Implementations may do real work.
 */
class BatchEngine
{
  public:
    virtual ~BatchEngine() = default;

    /** Run the batch; return how long the engine was busy (ms). */
    virtual double runBatch(const Batch& batch) = 0;
};

/** Cost-model knobs of the modeled engine. */
struct ModeledEngineParams
{
    /** Per-invocation fixed cost: weight streaming, launch, packing. */
    double fixedMs = 8.0;
    /** Marginal cost per work unit (one full-scale request). */
    double marginalMs = 9.0;
    /** Lognormal jitter sigma applied per batch (mean-preserving). */
    double jitterSigma = 0.08;
    /** Probability of a contention spike on one batch. */
    double spikeP = 0.002;
    /**
     * Multiplicative cost factor of a spike (weight eviction,
     * co-runner contention: the batch runs at half speed). The
     * admission controller's riskFactor must cover this for the
     * tail guarantee to hold.
     */
    double spikeFactor = 2.0;
    std::uint64_t seed = 17;
};

/**
 * Seeded analytic engine: cost = fixed + marginal x total work
 * units, jittered. Deterministic for a given seed and call
 * sequence; never touches a real clock.
 */
class ModeledBatchEngine : public BatchEngine
{
  public:
    explicit ModeledBatchEngine(const ModeledEngineParams& params);

    double runBatch(const Batch& batch) override;

    /** Mean cost of a batch with the given total work units. */
    double meanCostMs(double totalCostScale) const;

  private:
    ModeledEngineParams params_;
    Rng rng_;
};

/**
 * Real-inference engine: stacks one prebuilt per-stream input
 * tensor per batch item and runs Network::forwardBatch under a
 * KernelContext (batch items shard across the ThreadPool), timing
 * the call with a wall-clock Stopwatch. Degraded cost scales are
 * honored by running the same network on the same input (the
 * measured path has no half-scale standby net); the point of this
 * engine is policy-under-real-kernels, not cost fidelity.
 */
class NnBatchEngine : public BatchEngine
{
  public:
    /**
     * @param net network shared by all streams (outlives the engine).
     * @param inputs one input tensor per stream id.
     * @param threads `nn.threads`-style request for the kernel pool.
     */
    NnBatchEngine(const nn::Network& net,
                  std::vector<nn::Tensor> inputs, int threads);
    ~NnBatchEngine() override;

    double runBatch(const Batch& batch) override;

    /**
     * Order-independent checksum over every output element produced
     * so far; two runs that served the same (stream, seq) set must
     * agree bit-for-bit regardless of how requests were batched.
     */
    double outputChecksum() const { return checksum_; }

  private:
    const nn::Network& net_;
    std::vector<nn::Tensor> inputs_;
    std::unique_ptr<nn::KernelContext> ctx_;
    double checksum_ = 0.0;
};

/** Server construction parameters. */
struct ServeParams
{
    int streams = 8;
    StreamParams stream;          ///< common per-stream knobs.
    BatchPolicy batch;
    AdmissionParams admission;
    pipeline::GovernorParams governor; ///< per-stream copy.
    /**
     * Stagger stream phases across one camera period (stream i
     * starts at i/N of the period) instead of arriving in lockstep.
     */
    bool stagger = true;
    /** Per-stream post-inference cost (fusion + planning glue), ms. */
    double postMeanMs = 1.5;
    double postJitterSigma = 0.2;
    /** Local serving cost of a coasted (tracking-only) frame, ms. */
    double coastMs = 2.0;
    std::uint64_t seed = 29;
    /** Prefix of metric names ("serve" unless a tool overrides). */
    std::string metricPrefix = "serve";
    /** Per-stream SLO accounting knobs. */
    SloParams slo;
};

/** Aggregate outcome of one serving run. */
struct ServeReport
{
    std::int64_t framesArrived = 0;
    std::int64_t framesAdmitted = 0;  ///< engine-served.
    std::int64_t framesDegraded = 0;  ///< admitted at degraded cost.
    std::int64_t framesCoasted = 0;   ///< served without the engine.
    std::int64_t framesShed = 0;      ///< admission + staleness drops.
    std::int64_t deadlineMisses = 0;  ///< engine-served, late.
    LatencySummary admittedLatency;   ///< arrival -> completion (ms).
    double durationMs = 0.0;          ///< virtual time span of the run.
    /** Engine-served frames completing inside the budget, per second. */
    double goodputFps = 0.0;
    /** All served frames (incl. coasted) inside budget, per second. */
    double totalGoodputFps = 0.0;
    double shedRate = 0.0;            ///< shed / arrived.
    std::int64_t batches = 0;
    double meanBatchSize = 0.0;
    double meanBatchWaitMs = 0.0;
    std::int64_t pressureEscalations = 0;
    /** Frames spent in each governor mode, summed over streams. */
    std::array<std::uint64_t, pipeline::kOperatingModeCount>
        framesInMode{};
    /** Final per-stream SLO snapshots, indexed by stream id. */
    std::vector<SloSnapshot> streamSlo;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * Callback surface for a supervising layer above one server. The
 * fleet tier registers one observer per shard to feed shard-level
 * SLO accounting (burn-rate rebalancing needs to see sheds, which
 * never reach a stream's completion-based SLO window) without the
 * server knowing anything about shards. All callbacks run on the
 * serving event loop at event time; a null observer costs one
 * branch per event.
 */
class ServeObserver
{
  public:
    virtual ~ServeObserver() = default;

    /** One frame finished (engine-served or coasted). */
    virtual void onCompletion(const StreamState& stream,
                              double latencyMs, bool engineServed) = 0;

    /**
     * One frame shed. `why` is "admission" (predicted late at
     * arrival), "stale" (evicted by the freshest-frame policy) or
     * "late" (dropped at dispatch).
     */
    virtual void onShed(const StreamState& stream, double nowMs,
                        const char* why) = 0;
};

/**
 * The multi-stream serving loop. Construction registers the
 * streams; run() plays `framesPerStream` camera frames per stream
 * through admission, batching and the engine on virtual time.
 *
 * The loop is also usable as a *steppable co-simulation*: the fleet
 * tier constructs per-shard servers with the ShardTag overload
 * (empty, streams arrive via importStream), feeds arrivals with
 * injectArrival and advances every shard's virtual clock in
 * lockstep epochs with stepUntil. run() is implemented on exactly
 * this machinery -- one event queue, one total event order -- so a
 * single-shard fleet run reproduces run() bit for bit.
 *
 * Ownership: the server holds one OwnershipToken per resident
 * stream and asserts it on every dispatch-side touch. exportStream
 * releases the token (migration handoff); a server that kept
 * dispatching a migrated-away stream dies on the stale token
 * instead of double-serving the vehicle.
 */
class MultiStreamServer
{
  public:
    /** Tag selecting the empty (fleet shard) construction path. */
    struct ShardTag
    {
    };

    MultiStreamServer(const ServeParams& params, BatchEngine& engine);

    /**
     * Fleet-shard server: starts with no streams (params.streams is
     * ignored); the fleet imports streams and injects arrivals.
     * @param shardId owner id stamped into ownership tokens.
     */
    MultiStreamServer(const ServeParams& params, BatchEngine& engine,
                      ShardTag, int shardId);

    /** Serve every stream for the given number of camera frames. */
    ServeReport run(std::int64_t framesPerStream);

    // ------------------------------------ fleet co-simulation API

    /** Feed one camera arrival of the stream at `slot`. */
    void injectArrival(int slot, std::int64_t seq, double timeMs);

    /** Process every pending event with time <= untilMs. */
    void stepUntil(double untilMs);

    /** Process every pending event (run to quiescence). */
    void drain();

    /** Time of the next pending event (+inf when idle). */
    double nextEventMs() const;

    /** Final accounting over resident streams; call once, at end. */
    ServeReport buildReport();

    /** Predicted engine-busy time ahead of a request arriving now. */
    double engineBacklogMs(double nowMs) const;

    /** Latest event time processed so far. */
    double lastEventMs() const { return lastEventMs_; }

    /** Register the supervising observer (nullptr to clear). */
    void setObserver(ServeObserver* observer) { observer_ = observer; }

    // ---------------------------------------- stream migration

    /**
     * True when the stream at `slot` is resident and quiescent (no
     * frame queued or in flight): only such streams may migrate, so
     * no pending event can ever reference a vacated slot.
     */
    bool migratable(int slot) const;

    /**
     * Hand the stream at `slot` off (releases this server's
     * ownership token and vacates the slot). Fatal unless
     * migratable(slot).
     */
    std::unique_ptr<StreamState> exportStream(int slot);

    /**
     * Adopt a stream handed off by another server; acquires a fresh
     * ownership token. @return the slot it landed in.
     */
    int importStream(std::unique_ptr<StreamState> stream);

    /**
     * Escalate the governor of the stream at `slot` one mode level
     * (fleet degradation arbitration; the per-server analogue is
     * AdmissionController::evaluatePressure). No-op above `cap`.
     * @return true when a level was actually taken.
     */
    bool escalateStream(int slot, std::int64_t frame,
                        pipeline::OperatingMode cap,
                        const char* reason);

    // ------------------------------------------------- accessors

    const StreamRegistry& registry() const { return registry_; }
    const BatchScheduler& scheduler() const { return scheduler_; }
    const AdmissionController& admission() const { return admission_; }

    /** Engine-served completion latencies recorded on this server. */
    const LatencyRecorder& admittedRecorder() const
    {
        return admittedRec_;
    }

    /** Engine-served frames that completed inside their budget. */
    std::int64_t onTimeServed() const { return onTimeServed_; }

    /** Coasted frames that completed inside their budget. */
    std::int64_t onTimeCoasted() const { return onTimeCoasted_; }

    /**
     * Server-local metric registry (per-stream labeled counters and
     * latency histograms). buildReport() merges it into the global
     * registry when metrics are enabled.
     */
    const obs::MetricRegistry& localMetrics() const { return local_; }

  private:
    /** One discrete event (ordered by time, kind, stream, seq). */
    struct Event
    {
        enum class Kind
        {
            Completion = 0,
            Arrival = 1,
            EngineCheck = 2
        };

        double timeMs = 0.0;
        Kind kind = Kind::Arrival;
        int stream = -1;
        std::int64_t seq = -1;
        double arrivalMs = 0.0;
        bool engineServed = false; ///< Completion: needed the engine.

        bool
        operator>(const Event& o) const
        {
            if (timeMs != o.timeMs)
                return timeMs > o.timeMs;
            if (kind != o.kind)
                return static_cast<int>(kind) >
                       static_cast<int>(o.kind);
            if (stream != o.stream)
                return stream > o.stream;
            return seq > o.seq;
        }
    };

    void processEvent(const Event& ev);
    double samplePost();
    void scheduleCheck(double at);
    void emitTransitions(double now);
    void promote(const FrameTicket& ticket, double now);
    void shedLate(const InferenceRequest& req, double now);
    void maybeDispatch(double now);
    /** Resident stream at `slot` with a current ownership token. */
    StreamState& ownedStream(int slot, const char* what);
    void publishMetrics();

    ServeParams params_;
    BatchEngine& engine_;
    StreamRegistry registry_;
    BatchScheduler scheduler_;
    AdmissionController admission_;
    Rng postRng_;
    obs::MetricRegistry local_;
    ServeObserver* observer_ = nullptr;
    int shardId_ = 0;

    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        events_;
    /** Self-schedule arrivals up to this many frames (run() mode);
        -1 in fleet mode, where arrivals are injected. */
    std::int64_t framesPerStream_ = -1;
    double engineFreeAtMs_ = 0.0;
    double pendingCheckMs_ = 0.0; ///< set to +inf in the ctor.
    std::int64_t globalArrivals_ = 0;
    LatencyRecorder admittedRec_;
    std::int64_t onTimeServed_ = 0;
    std::int64_t onTimeCoasted_ = 0;
    double lastEventMs_ = 0.0;
    std::vector<OwnershipToken> tokens_;  ///< by slot.
    std::vector<std::size_t> txSeen_;     ///< transitions emitted, by slot.
};

} // namespace ad::serve

#endif // AD_SERVE_SERVE_HH
