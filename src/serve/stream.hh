/**
 * @file
 * Multi-stream serving layer, part 1: stream identity and ingestion.
 *
 * The paper's constraints (Section 2.4) are stated for one vehicle:
 * <= 100 ms at the 99.99th percentile, >= 10 fps. The serving layer
 * grows that into "N vehicles share this machine": every vehicle is a
 * *stream* of camera frames arriving at the camera period, and the
 * machine must keep each admitted stream inside the same per-vehicle
 * constraint while serving as many streams as the hardware allows.
 *
 * This header holds the per-stream state: a bounded ingestion queue
 * with a freshest-frame drop policy (a stale camera frame is worse
 * than no frame -- the vehicle would react to old traffic), the
 * per-stream DeadlineMonitor feeding admission-control slack, and the
 * per-stream DegradationGovernor the admission controller actuates
 * when the machine is oversubscribed.
 *
 * Everything here runs on an explicit timestamp ("virtual clock"):
 * like the DegradationGovernor, the serving layer never reads the
 * wall clock itself, so a modeled run is bit-reproducible and the
 * tests need no sleeps.
 */

#ifndef AD_SERVE_STREAM_HH
#define AD_SERVE_STREAM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "obs/deadline.hh"
#include "pipeline/governor.hh"
#include "serve/slo.hh"

namespace ad::serve {

/** Per-stream knobs (paper defaults: 10 fps camera, 100 ms budget). */
struct StreamParams
{
    double framePeriodMs = 100.0; ///< camera period (>= 10 fps).
    double deadlineMs = 100.0;    ///< per-frame reaction budget.
    int queueDepth = 1;           ///< frames that may wait unadmitted.
    double phaseMs = 0.0;         ///< arrival phase offset.
};

/** One camera frame of one stream, identified by (stream, seq). */
struct FrameTicket
{
    int stream = -1;
    std::int64_t seq = -1;
    double arrivalMs = 0.0;

    /** Absolute completion deadline of this frame. */
    double
    deadlineMs(const StreamParams& params) const
    {
        return arrivalMs + params.deadlineMs;
    }
};

/**
 * Bounded ingestion queue with a freshest-frame drop policy: when a
 * frame arrives while the queue is full, the *oldest* queued frame is
 * evicted (returned to the caller for accounting) and the new frame
 * is kept. The vehicle always waits on the newest view of the road.
 */
class FrameQueue
{
  public:
    /** @param depth maximum frames waiting (>= 0; 0 never queues). */
    explicit FrameQueue(int depth);

    /**
     * Offer one frame. Returns the evicted (stale) frame when the
     * queue was full, or the offered frame itself when depth is 0.
     */
    std::optional<FrameTicket> push(const FrameTicket& ticket);

    /** Remove and return the oldest queued frame. */
    std::optional<FrameTicket> pop();

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    int depth() const { return depth_; }

  private:
    int depth_;
    std::deque<FrameTicket> queue_;
};

/** Lifetime counters of one stream (see DESIGN.md section 9). */
struct StreamStats
{
    std::int64_t arrived = 0;     ///< camera frames produced.
    std::int64_t admitted = 0;    ///< sent to the inference engine.
    std::int64_t degraded = 0;    ///< admitted at degraded cost.
    std::int64_t coasted = 0;     ///< served locally (no engine work).
    std::int64_t shedAdmission = 0; ///< rejected by admission control.
    std::int64_t shedStale = 0;   ///< evicted by freshest-frame policy.
    std::int64_t shedLate = 0;    ///< dropped at dispatch: now too late.
    std::int64_t completed = 0;   ///< engine-served frames finished.
    std::int64_t missedDeadline = 0; ///< completed past the budget.
};

/**
 * Everything the serving layer knows about one stream: parameters,
 * ingestion queue, whether a frame is currently in flight, the
 * deadline watchdog whose data drives admission slack, and the
 * degradation governor the admission controller escalates under
 * load pressure.
 */
struct StreamState
{
    StreamState(int id, const StreamParams& params,
                const pipeline::GovernorParams& governorParams,
                const SloParams& sloParams = {});

    int id;
    StreamParams params;
    FrameQueue queue;
    StreamStats stats;
    /** Sensing half of the per-stream control loop. */
    obs::DeadlineMonitor deadline;
    /** Actuation half; admission control escalates it under pressure. */
    pipeline::DegradationGovernor governor;

    /** True while a frame of this stream is queued for or in service. */
    bool inFlight = false;

    /**
     * Peak-decay tail estimate of recent served latencies (ms): jumps
     * to any new maximum, decays geometrically otherwise. Slack is
     * measured against this rather than the mean so one spike
     * immediately revokes a stream's "sheddable" status.
     */
    double tailEstimateMs = 0.0;

    /** Latency of engine-served (admitted) frames, arrival->done. */
    LatencyRecorder servedLatency;

    /** Rolling-window SLO accountant (percentiles, burn, goodput). */
    StreamSlo slo;

    /**
     * Record one completion into the tail estimate, watchdog and
     * governor. Coasted frames (engineServed = false) feed the
     * control loop -- the governor needs clean frames to recover --
     * but stay out of the engine-served latency record.
     */
    void observeCompletion(std::int64_t frame, double latencyMs,
                           double tailDecay, bool engineServed);

    /**
     * Budget minus the tail estimate, floored at zero. Once the SLO
     * window can resolve a p99 it tightens the estimate: slack is
     * measured against the larger of the peak-decay estimate and the
     * window tail, so a stream whose tail is quietly climbing loses
     * its "sheddable" slack before a single spike lands.
     */
    double slackMs() const;
};

/**
 * Owner of all registered streams. Streams are registered before the
 * serving loop starts and never removed (a disconnected vehicle is a
 * stream that stops producing arrivals), so lookups are index-based
 * and the serving hot path never allocates or locks here.
 */
class StreamRegistry
{
  public:
    /**
     * Register one stream.
     * @return its dense id (0-based).
     */
    int addStream(const StreamParams& params,
                  const pipeline::GovernorParams& governorParams,
                  const SloParams& sloParams = {});

    std::size_t size() const { return streams_.size(); }

    StreamState& stream(int id) { return *streams_[id]; }
    const StreamState& stream(int id) const { return *streams_[id]; }

    /** Sum of `arrived` over all streams. */
    std::int64_t totalArrived() const;

    /**
     * The stream with the largest admission slack among those whose
     * governor still has a level to give (mode < cap). Ties resolve
     * to the lowest id, keeping the policy deterministic. Returns -1
     * when every stream is already at or beyond the cap.
     */
    int mostSlackStream(pipeline::OperatingMode cap) const;

  private:
    std::vector<std::unique_ptr<StreamState>> streams_;
};

} // namespace ad::serve

#endif // AD_SERVE_STREAM_HH
