/**
 * @file
 * Multi-stream serving layer, part 1: stream identity and ingestion.
 *
 * The paper's constraints (Section 2.4) are stated for one vehicle:
 * <= 100 ms at the 99.99th percentile, >= 10 fps. The serving layer
 * grows that into "N vehicles share this machine": every vehicle is a
 * *stream* of camera frames arriving at the camera period, and the
 * machine must keep each admitted stream inside the same per-vehicle
 * constraint while serving as many streams as the hardware allows.
 *
 * This header holds the per-stream state: a bounded ingestion queue
 * with a freshest-frame drop policy (a stale camera frame is worse
 * than no frame -- the vehicle would react to old traffic), the
 * per-stream DeadlineMonitor feeding admission-control slack, and the
 * per-stream DegradationGovernor the admission controller actuates
 * when the machine is oversubscribed.
 *
 * Everything here runs on an explicit timestamp ("virtual clock"):
 * like the DegradationGovernor, the serving layer never reads the
 * wall clock itself, so a modeled run is bit-reproducible and the
 * tests need no sleeps.
 */

#ifndef AD_SERVE_STREAM_HH
#define AD_SERVE_STREAM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "obs/deadline.hh"
#include "pipeline/governor.hh"
#include "serve/slo.hh"

namespace ad::serve {

/** Per-stream knobs (paper defaults: 10 fps camera, 100 ms budget). */
struct StreamParams
{
    double framePeriodMs = 100.0; ///< camera period (>= 10 fps).
    double deadlineMs = 100.0;    ///< per-frame reaction budget.
    int queueDepth = 1;           ///< frames that may wait unadmitted.
    double phaseMs = 0.0;         ///< arrival phase offset.
};

/** One camera frame of one stream, identified by (stream, seq). */
struct FrameTicket
{
    int stream = -1;
    std::int64_t seq = -1;
    double arrivalMs = 0.0;

    /** Absolute completion deadline of this frame. */
    double
    deadlineMs(const StreamParams& params) const
    {
        return arrivalMs + params.deadlineMs;
    }
};

/**
 * Bounded ingestion queue with a freshest-frame drop policy: when a
 * frame arrives while the queue is full, the *oldest* queued frame is
 * evicted (returned to the caller for accounting) and the new frame
 * is kept. The vehicle always waits on the newest view of the road.
 */
class FrameQueue
{
  public:
    /** @param depth maximum frames waiting (>= 0; 0 never queues). */
    explicit FrameQueue(int depth);

    /**
     * Offer one frame. Returns the evicted (stale) frame when the
     * queue was full, or the offered frame itself when depth is 0.
     */
    std::optional<FrameTicket> push(const FrameTicket& ticket);

    /** Remove and return the oldest queued frame. */
    std::optional<FrameTicket> pop();

    std::size_t size() const { return queue_.size(); }
    bool empty() const { return queue_.empty(); }
    int depth() const { return depth_; }

  private:
    int depth_;
    std::deque<FrameTicket> queue_;
};

/**
 * Capability to dispatch frames of one stream. The serving layer
 * used to assume a single owner per stream for the stream's whole
 * lifetime; the fleet layer migrates streams between shards, and a
 * migration bug (two shards both believing they own a stream) would
 * double-dispatch frames. The token makes ownership explicit: it is
 * issued by StreamState::acquireOwnership, invalidated by
 * releaseOwnership (which bumps the stream's handoff epoch), and
 * every dispatch-side touch asserts the token is still current. A
 * stale token -- the race a missed handoff would produce -- is a
 * fatal error, not a silent double dispatch.
 */
struct OwnershipToken
{
    int stream = -1;         ///< stream id the token covers.
    std::uint64_t epoch = 0; ///< handoff generation it was issued at.

    bool valid() const { return stream >= 0; }
};

/** Lifetime counters of one stream (see DESIGN.md section 9). */
struct StreamStats
{
    std::int64_t arrived = 0;     ///< camera frames produced.
    std::int64_t admitted = 0;    ///< sent to the inference engine.
    std::int64_t degraded = 0;    ///< admitted at degraded cost.
    std::int64_t coasted = 0;     ///< served locally (no engine work).
    std::int64_t shedAdmission = 0; ///< rejected by admission control.
    std::int64_t shedStale = 0;   ///< evicted by freshest-frame policy.
    std::int64_t shedLate = 0;    ///< dropped at dispatch: now too late.
    std::int64_t completed = 0;   ///< engine-served frames finished.
    std::int64_t missedDeadline = 0; ///< completed past the budget.
};

/**
 * Everything the serving layer knows about one stream: parameters,
 * ingestion queue, whether a frame is currently in flight, the
 * deadline watchdog whose data drives admission slack, and the
 * degradation governor the admission controller escalates under
 * load pressure.
 */
struct StreamState
{
    StreamState(int id, const StreamParams& params,
                const pipeline::GovernorParams& governorParams,
                const SloParams& sloParams = {});

    int id;
    StreamParams params;
    FrameQueue queue;
    StreamStats stats;
    /** Sensing half of the per-stream control loop. */
    obs::DeadlineMonitor deadline;
    /** Actuation half; admission control escalates it under pressure. */
    pipeline::DegradationGovernor governor;

    /** True while a frame of this stream is queued for or in service. */
    bool inFlight = false;

    /**
     * Peak-decay tail estimate of recent served latencies (ms): jumps
     * to any new maximum, decays geometrically otherwise. Slack is
     * measured against this rather than the mean so one spike
     * immediately revokes a stream's "sheddable" status.
     */
    double tailEstimateMs = 0.0;

    /** Latency of engine-served (admitted) frames, arrival->done. */
    LatencyRecorder servedLatency;

    /** Rolling-window SLO accountant (percentiles, burn, goodput). */
    StreamSlo slo;

    /**
     * Record one completion into the tail estimate, watchdog and
     * governor. Coasted frames (engineServed = false) feed the
     * control loop -- the governor needs clean frames to recover --
     * but stay out of the engine-served latency record.
     */
    void observeCompletion(std::int64_t frame, double latencyMs,
                           double tailDecay, bool engineServed);

    /**
     * Budget minus the tail estimate, floored at zero. Once the SLO
     * window can resolve a p99 it tightens the estimate: slack is
     * measured against the larger of the peak-decay estimate and the
     * window tail, so a stream whose tail is quietly climbing loses
     * its "sheddable" slack before a single spike lands.
     */
    double slackMs() const;

    // ------------------------------------------------ ownership

    /**
     * Take exclusive dispatch ownership. Fatal if the stream is
     * already owned: a shard may only import a stream the previous
     * owner has explicitly released (the handoff protocol), never
     * steal one.
     */
    OwnershipToken acquireOwnership(int owner);

    /**
     * Release ownership with the token it was granted under. Bumps
     * the handoff epoch so every outstanding copy of the token goes
     * stale. Fatal on a stale or foreign token.
     */
    void releaseOwnership(const OwnershipToken& token);

    /** True when the token still confers dispatch rights. */
    bool ownershipCurrent(const OwnershipToken& token) const;

    /**
     * Assert the token is current before a dispatch-side touch;
     * fatal (with `what` in the message) otherwise. This is the
     * assert that turns a double-dispatch race into a crash.
     */
    void assertOwnership(const OwnershipToken& token,
                         const char* what) const;

    /** Current owner id, or -1 when unowned. */
    int owner() const { return owner_; }

    /** Handoff generation (bumped by every release). */
    std::uint64_t ownershipEpoch() const { return epoch_; }

  private:
    int owner_ = -1;
    std::uint64_t epoch_ = 0;
};

/**
 * Owner of all registered streams. Lookups are slot-indexed and the
 * serving hot path never allocates or locks here. In single-server
 * use the slot space is dense and slot == stream id. The fleet layer
 * migrates streams between per-shard registries: extract() leaves a
 * vacant slot behind and adopt() reuses the lowest vacant slot, so a
 * shard's slot indices stay stable for its resident streams while a
 * migrated-in stream keeps its fleet-global StreamState::id.
 */
class StreamRegistry
{
  public:
    /**
     * Register one stream.
     * @return its slot (0-based; equals the stream id in
     *         single-server use where slots are dense).
     */
    int addStream(const StreamParams& params,
                  const pipeline::GovernorParams& governorParams,
                  const SloParams& sloParams = {});

    /**
     * Adopt an existing stream (migration import). Reuses the lowest
     * vacant slot, appending when none is vacant.
     * @return the slot it landed in.
     */
    int adopt(std::unique_ptr<StreamState> stream);

    /**
     * Remove the stream at `slot` (migration export), leaving the
     * slot vacant. Fatal when the slot is already vacant.
     */
    std::unique_ptr<StreamState> extract(int slot);

    /** Slot count, including vacant slots. */
    std::size_t size() const { return streams_.size(); }

    /** Occupied slots. */
    std::size_t active() const;

    StreamState& stream(int slot) { return *streams_[slot]; }
    const StreamState& stream(int slot) const
    {
        return *streams_[slot];
    }

    /** Stream at `slot`, or nullptr when the slot is vacant. */
    StreamState* find(int slot);
    const StreamState* find(int slot) const;

    /** The lowest-slot occupied stream, or nullptr when empty. */
    const StreamState* firstActive() const;

    /** Sum of `arrived` over all streams. */
    std::int64_t totalArrived() const;

    /**
     * The slot with the largest admission slack among those whose
     * governor still has a level to give (mode < cap). Ties resolve
     * to the lowest slot, keeping the policy deterministic. Returns
     * -1 when every stream is already at or beyond the cap.
     */
    int mostSlackStream(pipeline::OperatingMode cap) const;

  private:
    std::vector<std::unique_ptr<StreamState>> streams_;
};

} // namespace ad::serve

#endif // AD_SERVE_STREAM_HH
