/**
 * @file
 * Multi-stream serving layer, part 3: deadline-aware admission
 * control and load shedding.
 *
 * When the offered load (streams x camera rate x inference cost)
 * exceeds what the engine can serve, *something* must give. Without
 * admission control it is the tail that gives: every frame queues,
 * every stream misses the 100 ms budget, and the machine produces
 * plenty of throughput but zero goodput (frames the vehicle can
 * still act on). The admission controller gives the machine a
 * better failure mode, in two tiers:
 *
 *  - **Per-frame shedding.** At arrival, the predicted completion
 *    (engine backlog + batching window + expected cost + headroom)
 *    is checked against the frame's absolute deadline. A frame that
 *    cannot make it is shed *now*, before it wastes engine time
 *    producing a result the vehicle will ignore.
 *
 *  - **Per-stream degradation.** When sustained backlog pressure
 *    crosses a threshold, the controller escalates the per-stream
 *    DegradationGovernor of the stream with the *most slack* first
 *    (largest margin between its observed tail latency and its
 *    budget): that stream runs the half-scale detector or coasts on
 *    tracking, cutting its engine demand the most while hurting the
 *    least. Streams already skirting their deadline are never the
 *    first to lose quality. Recovery rides the governor's own
 *    hysteresis and exponential backoff (no second mechanism).
 *
 * Slack comes from DeadlineMonitor-fed completion data: a
 * peak-decay tail estimate per stream (see StreamState). All
 * decisions are pure functions of explicit timestamps and observed
 * latencies -- no wall clock, fully deterministic.
 */

#ifndef AD_SERVE_ADMISSION_HH
#define AD_SERVE_ADMISSION_HH

#include <cstdint>

#include "serve/stream.hh"

namespace ad::serve {

/** Admission-control knobs. */
struct AdmissionParams
{
    bool enabled = true;       ///< master switch (off = admit all).
    /** Safety margin added to the predicted completion (ms). */
    double headroomMs = 5.0;
    /**
     * Worst-case multiplier on the expected engine cost in the
     * admission and dispatch-time deadline tests. The tail budget
     * is a guarantee, not an average: a frame is only served when
     * even a contention-spiked batch (see ModeledEngineParams::
     * spikeFactor) would finish inside its deadline. Trading shed
     * rate for tail predictability is the whole point of the layer.
     */
    double riskFactor = 2.2;
    /** Initial expected engine cost of one full request (ms). */
    double initialCostMs = 15.0;
    /** EWMA weight of new per-request cost observations. */
    double costEwmaAlpha = 0.2;
    /** Geometric decay of the per-stream peak latency estimate. */
    double tailDecay = 0.97;
    /**
     * Backlog pressure (predicted engine busy time / budget) above
     * which one most-slack stream is escalated per evaluation.
     */
    double degradePressure = 0.8;
    /**
     * Run the per-server pressure-escalation policy. The fleet layer
     * turns this off on multi-shard servers: which stream loses
     * quality first is then a fleet-wide decision (lowest criticality
     * across every shard), made by the FleetCoordinator instead of by
     * whichever shard happens to saturate.
     */
    bool pressureEnabled = true;
    /** Arrivals between pressure evaluations. */
    int evalPeriodFrames = 8;
    /**
     * Highest mode admission pressure may escalate a stream to.
     * SAFE_STOP stays reserved for the stream's own fault handling:
     * an oversubscribed server sheds work, it does not brake cars.
     */
    pipeline::OperatingMode maxPressureMode =
        pipeline::OperatingMode::TrackingOnly;
    /** Engine cost scale of a degraded (half-scale) inference. */
    double degradedCostScale = 0.25;
};

/** What to do with one arriving frame. */
enum class AdmitAction
{
    Admit, ///< enqueue for (possibly degraded) engine inference.
    Coast, ///< serve locally from tracking; no engine work.
    Shed,  ///< drop: it cannot make its deadline anyway.
};

/** Admission decision for one frame. */
struct AdmitDecision
{
    AdmitAction action = AdmitAction::Admit;
    double costScale = 1.0; ///< engine cost scale when admitted.
    bool degraded = false;  ///< admitted at degraded scale.
};

/**
 * The admission controller. Owns no streams -- it reads and
 * actuates StreamRegistry state -- and holds only the online cost
 * estimate plus the pressure-evaluation cadence.
 */
class AdmissionController
{
  public:
    AdmissionController(const AdmissionParams& params,
                        StreamRegistry& registry);

    /**
     * Decide one arriving frame.
     *
     * @param ticket the frame (stream, seq, arrival).
     * @param nowMs current virtual time.
     * @param engineBacklogMs predicted engine-busy time ahead of
     *        this request (in-flight remainder + queued work).
     * @param batchWindowMs worst-case batching hold (policy window).
     */
    AdmitDecision decide(const FrameTicket& ticket, double nowMs,
                         double engineBacklogMs, double batchWindowMs);

    /**
     * Feed back one completion: updates the stream's tail estimate,
     * watchdog and governor. Coasted frames pass engineServed =
     * false so the governor still sees its clean-frame stream (it
     * could never recover from TRACKING_ONLY otherwise) without
     * polluting the engine-served latency record.
     */
    void onCompletion(const FrameTicket& ticket, double latencyMs,
                      bool engineServed = true);

    /**
     * Feed back one executed batch to the online cost estimate:
     * `costMs` spread over `totalCostScale` work units.
     */
    void onBatchExecuted(double costMs, double totalCostScale);

    /**
     * Periodic pressure policy, called once per arrival: every
     * `evalPeriodFrames` arrivals, if backlog pressure exceeds the
     * threshold, escalate the most-slack stream one level (capped at
     * maxPressureMode).
     */
    void evaluatePressure(std::int64_t globalFrame,
                          double engineBacklogMs);

    /** Online estimate of one full request's engine cost (ms). */
    double expectedCostMs() const { return expectedCostMs_; }

    /** Streams escalated by pressure since construction. */
    std::int64_t pressureEscalations() const
    {
        return pressureEscalations_;
    }

    const AdmissionParams& params() const { return params_; }

  private:
    AdmissionParams params_;
    StreamRegistry& registry_;
    double expectedCostMs_;
    int arrivalsSinceEval_ = 0;
    std::int64_t pressureEscalations_ = 0;
};

} // namespace ad::serve

#endif // AD_SERVE_ADMISSION_HH
