#include "serve/admission.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ad::serve {

namespace {

pipeline::OperatingMode
escalatedMode(pipeline::OperatingMode m)
{
    return m == pipeline::OperatingMode::SafeStop
               ? m
               : static_cast<pipeline::OperatingMode>(
                     static_cast<int>(m) + 1);
}

} // namespace

AdmissionController::AdmissionController(const AdmissionParams& params,
                                         StreamRegistry& registry)
    : params_(params), registry_(registry),
      expectedCostMs_(params.initialCostMs)
{
    if (params.initialCostMs <= 0 || params.costEwmaAlpha <= 0 ||
        params.costEwmaAlpha > 1 || params.tailDecay <= 0 ||
        params.tailDecay > 1 || params.evalPeriodFrames < 1 ||
        params.riskFactor < 1)
        fatal("AdmissionController: invalid parameters");
}

AdmitDecision
AdmissionController::decide(const FrameTicket& ticket, double nowMs,
                            double engineBacklogMs,
                            double batchWindowMs)
{
    StreamState& s = registry_.stream(ticket.stream);
    const pipeline::FramePlan plan = s.governor.plan(ticket.seq);

    AdmitDecision d;
    if (!plan.runDet) {
        // The governor's detection interval skips the engine this
        // frame entirely: trackers coast locally.
        d.action = AdmitAction::Coast;
        d.degraded = true;
        return d;
    }
    d.degraded = plan.degradedDet;
    d.costScale = plan.degradedDet ? params_.degradedCostScale : 1.0;
    if (!params_.enabled)
        return d;

    // Deadline-aware per-frame test: would this frame complete in
    // time, given everything already ahead of it? Its own inference
    // is costed at the risk-inflated worst case -- admitting on the
    // mean is how tails die.
    const double predictedDoneMs =
        nowMs + engineBacklogMs + batchWindowMs +
        expectedCostMs_ * d.costScale * params_.riskFactor +
        params_.headroomMs;
    if (predictedDoneMs > ticket.deadlineMs(s.params)) {
        d.action = AdmitAction::Shed;
        return d;
    }
    return d;
}

void
AdmissionController::onCompletion(const FrameTicket& ticket,
                                  double latencyMs, bool engineServed)
{
    registry_.stream(ticket.stream)
        .observeCompletion(ticket.seq, latencyMs, params_.tailDecay,
                           engineServed);
}

void
AdmissionController::onBatchExecuted(double costMs,
                                     double totalCostScale)
{
    if (totalCostScale <= 0)
        return;
    const double perUnit = costMs / totalCostScale;
    expectedCostMs_ += params_.costEwmaAlpha *
                       (perUnit - expectedCostMs_);
}

void
AdmissionController::evaluatePressure(std::int64_t globalFrame,
                                      double engineBacklogMs)
{
    if (!params_.enabled || !params_.pressureEnabled)
        return;
    if (++arrivalsSinceEval_ < params_.evalPeriodFrames)
        return;
    arrivalsSinceEval_ = 0;

    // Pressure is backlog in units of the (common) budget; use the
    // first resident stream's budget as the reference -- streams
    // share the paper's 100 ms constraint.
    const StreamState* first = registry_.firstActive();
    if (!first)
        return;
    const double budget = first->params.deadlineMs;
    const double pressure = engineBacklogMs / budget;
    if (pressure <= params_.degradePressure)
        return;

    const int victim =
        registry_.mostSlackStream(params_.maxPressureMode);
    if (victim < 0)
        return; // everyone already gave what admission may take.
    StreamState& s = registry_.stream(victim);
    s.governor.requestEscalation(globalFrame,
                                 escalatedMode(s.governor.mode()),
                                 "admission:pressure");
    ++pressureEscalations_;
}

} // namespace ad::serve
