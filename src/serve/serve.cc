#include "serve/serve.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <sstream>

#include "common/logging.hh"
#include "common/time.hh"
#include "nn/kernel_context.hh"
#include "nn/network.hh"
#include "obs/flight.hh"

namespace ad::serve {

// ---------------------------------------------------------------- engines

ModeledBatchEngine::ModeledBatchEngine(const ModeledEngineParams& params)
    : params_(params), rng_(params.seed)
{
    if (params.fixedMs < 0 || params.marginalMs <= 0)
        fatal("ModeledBatchEngine: invalid cost model");
}

double
ModeledBatchEngine::meanCostMs(double totalCostScale) const
{
    return params_.fixedMs + params_.marginalMs * totalCostScale;
}

double
ModeledBatchEngine::runBatch(const Batch& batch)
{
    // Fixed draw count per call (jitter, spike) keeps the cost
    // stream a pure function of (seed, call index).
    const double jitter = rng_.lognormal(
        -0.5 * params_.jitterSigma * params_.jitterSigma,
        params_.jitterSigma);
    const bool spike = rng_.bernoulli(params_.spikeP);
    double cost = meanCostMs(batch.totalCostScale()) * jitter;
    if (spike)
        cost *= params_.spikeFactor;
    return cost;
}

NnBatchEngine::NnBatchEngine(const nn::Network& net,
                             std::vector<nn::Tensor> inputs,
                             int threads)
    : net_(net), inputs_(std::move(inputs)),
      ctx_(std::make_unique<nn::KernelContext>(
          nn::kernelContext(threads)))
{
    if (inputs_.empty())
        fatal("NnBatchEngine: no per-stream inputs");
}

NnBatchEngine::~NnBatchEngine() = default;

double
NnBatchEngine::runBatch(const Batch& batch)
{
    std::vector<nn::Tensor> ins;
    ins.reserve(batch.size());
    for (const auto& item : batch.items)
        ins.push_back(
            inputs_[static_cast<std::size_t>(item.ticket.stream) %
                    inputs_.size()]);
    Stopwatch watch;
    const std::vector<nn::Tensor> outs =
        net_.forwardBatch(ins, *ctx_);
    const double ms = watch.elapsedMs();
    // Order-independent output digest: XOR of each item's summed
    // output bit pattern -- identical whatever the batching was.
    std::uint64_t digest = 0;
    std::memcpy(&digest, &checksum_, sizeof(double));
    for (const auto& out : outs) {
        double sum = 0.0;
        for (std::size_t i = 0; i < out.size(); ++i)
            sum += out.data()[i];
        std::uint64_t bits = 0;
        std::memcpy(&bits, &sum, sizeof(double));
        digest ^= bits;
    }
    std::memcpy(&checksum_, &digest, sizeof(double));
    return ms;
}

// ----------------------------------------------------------------- report

std::string
ServeReport::toString() const
{
    std::ostringstream oss;
    oss << "serve: " << framesArrived << " frames arrived, "
        << framesAdmitted << " engine-served (" << framesDegraded
        << " degraded), " << framesCoasted << " coasted, "
        << framesShed << " shed (" << 100.0 * shedRate << "%)\n";
    oss << "  admitted latency: " << admittedLatency.toString()
        << "\n";
    oss << "  deadline misses (engine-served): " << deadlineMisses
        << ", goodput " << goodputFps << " fps (total "
        << totalGoodputFps << " fps)\n";
    oss << "  batches: " << batches << ", mean size " << meanBatchSize
        << ", mean wait " << meanBatchWaitMs << " ms, "
        << pressureEscalations << " pressure escalations\n";
    oss << "  mode residency:";
    for (std::size_t m = 0; m < pipeline::kOperatingModeCount; ++m)
        oss << ' '
            << pipeline::modeName(
                   static_cast<pipeline::OperatingMode>(m))
            << '=' << framesInMode[m];
    oss << '\n';
    if (!streamSlo.empty()) {
        double worstP99 = -1.0, maxBurn = 0.0, meanGoodput = 0.0;
        for (const auto& s : streamSlo) {
            worstP99 = std::max(worstP99, s.p99Ms);
            maxBurn = std::max(maxBurn, s.burnRate);
            meanGoodput += s.goodputRatio;
        }
        meanGoodput /= static_cast<double>(streamSlo.size());
        oss << "  slo: worst window p99 " << worstP99
            << " ms, max burn rate " << maxBurn
            << ", mean goodput ratio " << meanGoodput << '\n';
    }
    return oss.str();
}

// ----------------------------------------------------------------- server

MultiStreamServer::MultiStreamServer(const ServeParams& params,
                                     BatchEngine& engine)
    : params_(params), engine_(engine), scheduler_(params.batch),
      admission_(params.admission, registry_),
      postRng_(params.seed ^ 0xa5a5a5a5a5a5a5a5ull),
      pendingCheckMs_(std::numeric_limits<double>::infinity())
{
    if (params.streams < 1)
        fatal("MultiStreamServer: need at least one stream");
    for (int i = 0; i < params.streams; ++i) {
        StreamParams sp = params.stream;
        if (params.stagger)
            sp.phaseMs = sp.framePeriodMs * i / params.streams;
        const int slot =
            registry_.addStream(sp, params.governor, params.slo);
        tokens_.push_back(
            registry_.stream(slot).acquireOwnership(shardId_));
        txSeen_.push_back(0);
    }
    // One flight ring per stream so a post-mortem isolates the
    // misbehaving vehicle's recent history.
    obs::flight().ensureStreams(params.streams);
}

MultiStreamServer::MultiStreamServer(const ServeParams& params,
                                     BatchEngine& engine, ShardTag,
                                     int shardId)
    : params_(params), engine_(engine), scheduler_(params.batch),
      admission_(params.admission, registry_),
      postRng_(params.seed ^ 0xa5a5a5a5a5a5a5a5ull),
      shardId_(shardId),
      pendingCheckMs_(std::numeric_limits<double>::infinity())
{
    // Empty shard: the fleet imports streams and ensures flight
    // rings for the whole fleet-global stream space itself.
}

double
MultiStreamServer::samplePost()
{
    return params_.postMeanMs *
           postRng_.lognormal(-0.5 * params_.postJitterSigma *
                                  params_.postJitterSigma,
                              params_.postJitterSigma);
}

double
MultiStreamServer::engineBacklogMs(double nowMs) const
{
    return std::max(0.0, engineFreeAtMs_ - nowMs) +
           scheduler_.pendingCostScale() *
               admission_.expectedCostMs();
}

void
MultiStreamServer::scheduleCheck(double at)
{
    if (at >= pendingCheckMs_)
        return;
    pendingCheckMs_ = at;
    events_.push(
        Event{at, Event::Kind::EngineCheck, -1, -1, 0.0, false});
}

StreamState&
MultiStreamServer::ownedStream(int slot, const char* what)
{
    StreamState* s = registry_.find(slot);
    if (!s)
        fatal(std::string("MultiStreamServer: ") + what +
              " touched vacant slot " + std::to_string(slot) +
              " (stream migrated away with events pending?)");
    s->assertOwnership(tokens_[static_cast<std::size_t>(slot)], what);
    return *s;
}

// Governor transitions can land on any stream (pressure escalation
// picks the most-slack one), so the flight diff scans every stream;
// the no-transition case is one size compare each.
void
MultiStreamServer::emitTransitions(double now)
{
    auto& fl = obs::flight();
    if (!fl.enabled())
        return;
    for (std::size_t i = 0; i < registry_.size(); ++i) {
        const StreamState* s = registry_.find(static_cast<int>(i));
        if (!s)
            continue;
        const auto& tx = s->governor.transitions();
        auto& seen = txSeen_[i];
        for (; seen < tx.size(); ++seen) {
            const auto& t = tx[seen];
            fl.recordTransition(s->id, t.reason.c_str(), t.frame, now,
                                static_cast<int>(t.from),
                                static_cast<int>(t.to),
                                pipeline::modeName(t.from),
                                pipeline::modeName(t.to));
            if (t.to == pipeline::OperatingMode::SafeStop)
                fl.noteSafeStop(s->id, t.frame, now);
        }
    }
}

void
MultiStreamServer::promote(const FrameTicket& ticket, double now)
{
    StreamState& s = ownedStream(ticket.stream, "promote");
    const AdmitDecision d = admission_.decide(
        ticket, now, engineBacklogMs(now), params_.batch.maxWaitMs);
    auto& fl = obs::flight();
    if (fl.enabled()) {
        const char* action = d.action == AdmitAction::Shed
                                 ? "shed"
                                 : d.action == AdmitAction::Coast
                                       ? "coast"
                                       : "admit";
        fl.recordAdmission(s.id, action, ticket.seq, now, d.costScale,
                           d.degraded);
    }
    switch (d.action) {
    case AdmitAction::Shed:
        ++s.stats.shedAdmission;
        if (observer_)
            observer_->onShed(s, now, "admission");
        break;
    case AdmitAction::Coast: {
        ++s.stats.coasted;
        s.inFlight = true;
        events_.push(Event{now + params_.coastMs,
                           Event::Kind::Completion, ticket.stream,
                           ticket.seq, ticket.arrivalMs, false});
        break;
    }
    case AdmitAction::Admit: {
        ++s.stats.admitted;
        if (d.degraded)
            ++s.stats.degraded;
        InferenceRequest req;
        req.ticket = ticket;
        req.enqueueMs = now;
        req.deadlineMs = ticket.deadlineMs(s.params);
        req.costScale = d.costScale;
        req.degraded = d.degraded;
        scheduler_.enqueue(req);
        s.inFlight = true;
        break;
    }
    }
}

// A frame shed after admission (it queued too long): undo its admit
// accounting and free the stream for its next waiter.
void
MultiStreamServer::shedLate(const InferenceRequest& req, double now)
{
    StreamState& s = ownedStream(req.ticket.stream, "shedLate");
    --s.stats.admitted;
    if (req.degraded)
        --s.stats.degraded;
    ++s.stats.shedLate;
    obs::flight().recordAdmission(s.id, "shed_late", req.ticket.seq,
                                  now, req.costScale, req.degraded);
    if (observer_)
        observer_->onShed(s, now, "late");
    s.inFlight = false;
    while (!s.inFlight) {
        const auto next = s.queue.pop();
        if (!next)
            break;
        promote(*next, now);
    }
}

// Dispatch a batch if one is due; otherwise arrange a wake-up.
void
MultiStreamServer::maybeDispatch(double now)
{
    while (true) {
        if (engineFreeAtMs_ > now) {
            scheduleCheck(engineFreeAtMs_);
            return;
        }
        const auto at = scheduler_.nextDispatchMs(now);
        if (!at)
            return;
        if (*at > now) {
            scheduleCheck(*at);
            return;
        }
        auto batch = scheduler_.tryDispatch(now);
        if (!batch)
            return;
        // Late shed: the tail guarantee is enforced here, at the
        // last decision point before engine time is spent. A frame
        // stays in the batch only if even a risk-inflated
        // (contention-spiked) batch cost meets its deadline;
        // anything else would either miss anyway or drag the whole
        // batch's completion past its co-batched peers'.
        const double risk = params_.admission.riskFactor;
        const double perUnit = admission_.expectedCostMs();
        for (bool changed = params_.admission.enabled; changed;) {
            changed = false;
            const double worstDoneMs =
                now + risk * perUnit * batch->totalCostScale() +
                params_.postMeanMs + params_.admission.headroomMs;
            for (std::size_t i = 0; i < batch->items.size(); ++i) {
                if (worstDoneMs <= batch->items[i].deadlineMs)
                    continue;
                shedLate(batch->items[i], now);
                batch->items.erase(batch->items.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                changed = true;
                break;
            }
        }
        if (batch->items.empty())
            continue; // everything was too late; try the rest.
        const double cost = engine_.runBatch(*batch);
        admission_.onBatchExecuted(cost, batch->totalCostScale());
        // Keep the batcher's dispatch-by bound in step with the
        // measured cost: reserve worst-case inference + post +
        // headroom.
        scheduler_.setLatestStartSlackMs(
            risk * admission_.expectedCostMs() + params_.postMeanMs +
            params_.admission.headroomMs);
        engineFreeAtMs_ = now + cost;
        for (const auto& item : batch->items) {
            const double post = samplePost();
            events_.push(Event{now + cost + post,
                               Event::Kind::Completion,
                               item.ticket.stream, item.ticket.seq,
                               item.ticket.arrivalMs, true});
        }
        scheduleCheck(engineFreeAtMs_);
        return;
    }
}

void
MultiStreamServer::processEvent(const Event& ev)
{
    const double now = ev.timeMs;
    lastEventMs_ = std::max(lastEventMs_, now);

    switch (ev.kind) {
    case Event::Kind::Arrival: {
        StreamState& s = ownedStream(ev.stream, "arrival");
        ++s.stats.arrived;
        if (framesPerStream_ > 0 && ev.seq + 1 < framesPerStream_) {
            const double next = now + s.params.framePeriodMs;
            events_.push(Event{next, Event::Kind::Arrival, ev.stream,
                               ev.seq + 1, next, false});
        }
        admission_.evaluatePressure(globalArrivals_++,
                                    engineBacklogMs(now));
        const FrameTicket ticket{ev.stream, ev.seq, now};
        if (s.inFlight) {
            if (const auto evicted = s.queue.push(ticket)) {
                ++s.stats.shedStale;
                if (observer_)
                    observer_->onShed(s, now, "stale");
            }
        } else {
            promote(ticket, now);
        }
        break;
    }
    case Event::Kind::Completion: {
        StreamState& s = ownedStream(ev.stream, "completion");
        const double latency = now - ev.arrivalMs;
        admission_.onCompletion(
            FrameTicket{ev.stream, ev.seq, ev.arrivalMs}, latency,
            ev.engineServed);
        auto& fl = obs::flight();
        if (fl.enabled())
            fl.recordSpan(s.id, ev.engineServed ? "serve" : "coast",
                          ev.seq, ev.arrivalMs, latency);
        if (ev.engineServed) {
            ++s.stats.completed;
            admittedRec_.record(latency);
            if (latency > s.params.deadlineMs) {
                ++s.stats.missedDeadline;
                fl.noteDeadlineMiss(s.id, ev.seq, now, latency,
                                    latency - s.params.deadlineMs);
            } else {
                ++onTimeServed_;
            }
        } else if (latency <= s.params.deadlineMs) {
            ++onTimeCoasted_;
        }
        if (observer_)
            observer_->onCompletion(s, latency, ev.engineServed);
        s.inFlight = false;
        // Drain: a promoted frame may itself be shed, freeing the
        // stream for the next waiter.
        while (!s.inFlight) {
            const auto next = s.queue.pop();
            if (!next)
                break;
            promote(*next, now);
        }
        break;
    }
    case Event::Kind::EngineCheck:
        pendingCheckMs_ = std::numeric_limits<double>::infinity();
        break;
    }
    maybeDispatch(now);
    emitTransitions(now);
}

void
MultiStreamServer::injectArrival(int slot, std::int64_t seq,
                                 double timeMs)
{
    if (!registry_.find(slot))
        fatal("MultiStreamServer: injectArrival into vacant slot " +
              std::to_string(slot));
    events_.push(
        Event{timeMs, Event::Kind::Arrival, slot, seq, timeMs, false});
}

void
MultiStreamServer::stepUntil(double untilMs)
{
    while (!events_.empty() && events_.top().timeMs <= untilMs) {
        const Event ev = events_.top();
        events_.pop();
        processEvent(ev);
    }
}

void
MultiStreamServer::drain()
{
    stepUntil(std::numeric_limits<double>::infinity());
}

double
MultiStreamServer::nextEventMs() const
{
    return events_.empty() ? std::numeric_limits<double>::infinity()
                           : events_.top().timeMs;
}

bool
MultiStreamServer::migratable(int slot) const
{
    const StreamState* s = registry_.find(slot);
    return s && !s->inFlight && s->queue.empty();
}

std::unique_ptr<StreamState>
MultiStreamServer::exportStream(int slot)
{
    if (!migratable(slot))
        fatal("MultiStreamServer: exportStream(" +
              std::to_string(slot) +
              "): stream is absent or not quiescent");
    StreamState& s = registry_.stream(slot);
    s.releaseOwnership(tokens_[static_cast<std::size_t>(slot)]);
    tokens_[static_cast<std::size_t>(slot)] = OwnershipToken{};
    txSeen_[static_cast<std::size_t>(slot)] = 0;
    return registry_.extract(slot);
}

int
MultiStreamServer::importStream(std::unique_ptr<StreamState> stream)
{
    if (!stream)
        fatal("MultiStreamServer: importStream of null stream");
    StreamState& ref = *stream;
    const int slot = registry_.adopt(std::move(stream));
    const auto idx = static_cast<std::size_t>(slot);
    if (idx >= tokens_.size()) {
        tokens_.resize(idx + 1);
        txSeen_.resize(idx + 1, 0);
    }
    tokens_[idx] = ref.acquireOwnership(shardId_);
    // The stream's governor history was already emitted to flight by
    // the previous owner; only new transitions are ours to emit.
    txSeen_[idx] = ref.governor.transitions().size();
    return slot;
}

bool
MultiStreamServer::escalateStream(int slot, std::int64_t frame,
                                  pipeline::OperatingMode cap,
                                  const char* reason)
{
    StreamState& s = ownedStream(slot, "escalate");
    const pipeline::OperatingMode mode = s.governor.mode();
    if (mode >= cap)
        return false;
    s.governor.requestEscalation(
        frame,
        static_cast<pipeline::OperatingMode>(static_cast<int>(mode) +
                                             1),
        reason);
    return true;
}

ServeReport
MultiStreamServer::run(std::int64_t framesPerStream)
{
    framesPerStream_ = framesPerStream;
    for (int i = 0; i < params_.streams; ++i) {
        const StreamState& s = registry_.stream(i);
        events_.push(Event{s.params.phaseMs, Event::Kind::Arrival, i,
                           0, s.params.phaseMs, false});
    }
    drain();
    return buildReport();
}

ServeReport
MultiStreamServer::buildReport()
{
    ServeReport report;
    report.streamSlo.reserve(registry_.size());
    for (std::size_t i = 0; i < registry_.size(); ++i) {
        StreamState* stream = registry_.find(static_cast<int>(i));
        if (!stream)
            continue;
        stream->slo.refresh();
        report.streamSlo.push_back(stream->slo.snapshot());
        const StreamStats& st = stream->stats;
        report.framesArrived += st.arrived;
        report.framesAdmitted += st.admitted;
        report.framesDegraded += st.degraded;
        report.framesCoasted += st.coasted;
        report.framesShed +=
            st.shedAdmission + st.shedStale + st.shedLate;
        report.deadlineMisses += st.missedDeadline;
        const auto& inMode = stream->governor.framesInMode();
        for (std::size_t m = 0; m < pipeline::kOperatingModeCount;
             ++m)
            report.framesInMode[m] += inMode[m];
    }
    report.admittedLatency = admittedRec_.summary();
    report.durationMs = lastEventMs_;
    if (lastEventMs_ > 0) {
        report.goodputFps = 1000.0 * onTimeServed_ / lastEventMs_;
        report.totalGoodputFps =
            1000.0 * (onTimeServed_ + onTimeCoasted_) / lastEventMs_;
    }
    if (report.framesArrived > 0)
        report.shedRate = static_cast<double>(report.framesShed) /
                          report.framesArrived;
    report.batches = scheduler_.batchesFormed();
    report.meanBatchSize = scheduler_.meanBatchSize();
    report.meanBatchWaitMs = scheduler_.meanWaitMs();
    report.pressureEscalations = admission_.pressureEscalations();

    publishMetrics();
    return report;
}

void
MultiStreamServer::publishMetrics()
{
    // Per-stream labeled metrics land in the server-local registry;
    // one merge at the end of the run touches the global lock once
    // instead of once per frame. Labels use the fleet-global stream
    // id, so a migrated stream keeps one metric series across shards
    // (the per-shard series are distinguished by metricPrefix).
    const std::string& prefix = params_.metricPrefix;
    for (std::size_t i = 0; i < registry_.size(); ++i) {
        const StreamState* sp = registry_.find(static_cast<int>(i));
        if (!sp)
            continue;
        const StreamState& s = *sp;
        const std::string id = std::to_string(s.id);
        local_
            .counter(obs::labeled(prefix + ".frames_arrived",
                                  "stream", id))
            .add(static_cast<std::uint64_t>(s.stats.arrived));
        local_
            .counter(obs::labeled(prefix + ".frames_admitted",
                                  "stream", id))
            .add(static_cast<std::uint64_t>(s.stats.admitted));
        local_
            .counter(
                obs::labeled(prefix + ".frames_shed", "stream", id))
            .add(static_cast<std::uint64_t>(s.stats.shedAdmission +
                                            s.stats.shedStale +
                                            s.stats.shedLate));
        local_
            .counter(obs::labeled(prefix + ".deadline_misses",
                                  "stream", id))
            .add(static_cast<std::uint64_t>(s.stats.missedDeadline));
        local_
            .histogram(
                obs::labeled(prefix + ".latency_ms", "stream", id))
            .mergeFrom(s.servedLatency);
        local_
            .gauge(obs::labeled(prefix + ".slack_ms", "stream", id))
            .set(s.slackMs());
        const SloSnapshot& slo = s.slo.snapshot();
        local_
            .gauge(obs::labeled(prefix + ".slo.p50_ms", "stream", id))
            .set(slo.p50Ms);
        local_
            .gauge(obs::labeled(prefix + ".slo.p99_ms", "stream", id))
            .set(slo.p99Ms);
        local_
            .gauge(
                obs::labeled(prefix + ".slo.p999_ms", "stream", id))
            .set(slo.p999Ms);
        local_
            .gauge(
                obs::labeled(prefix + ".slo.burn_rate", "stream", id))
            .set(slo.burnRate);
        local_
            .gauge(obs::labeled(prefix + ".slo.goodput_ratio",
                                "stream", id))
            .set(slo.goodputRatio);
        local_
            .gauge(
                obs::labeled(prefix + ".slo.miss_rate", "stream", id))
            .set(slo.missRate);
    }
    if (obs::metricsEnabled())
        obs::metrics().merge(local_);
}

} // namespace ad::serve
