#include "serve/batch_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ad::serve {

double
Batch::totalCostScale() const
{
    double sum = 0.0;
    for (const auto& r : items)
        sum += r.costScale;
    return sum;
}

BatchScheduler::BatchScheduler(const BatchPolicy& policy)
    : policy_(policy)
{
    if (policy.maxBatch < 1 || policy.maxWaitMs < 0 ||
        policy.latestStartSlackMs < 0)
        fatal("BatchScheduler: invalid policy");
}

void
BatchScheduler::enqueue(const InferenceRequest& request)
{
    queue_.push_back(request);
}

double
BatchScheduler::mustStartByMs() const
{
    // Window bound on the oldest request, slack bound on the tightest.
    double bound =
        queue_.front().enqueueMs + policy_.maxWaitMs;
    for (const auto& r : queue_)
        bound = std::min(bound,
                         r.deadlineMs - policy_.latestStartSlackMs);
    return bound;
}

std::optional<double>
BatchScheduler::nextDispatchMs(double nowMs) const
{
    if (queue_.empty())
        return std::nullopt;
    if (static_cast<int>(queue_.size()) >= policy_.maxBatch)
        return nowMs;
    return std::max(nowMs, mustStartByMs());
}

std::optional<Batch>
BatchScheduler::tryDispatch(double nowMs)
{
    if (queue_.empty())
        return std::nullopt;
    const bool full =
        static_cast<int>(queue_.size()) >= policy_.maxBatch;
    if (!full && nowMs < mustStartByMs())
        return std::nullopt;

    Batch batch;
    batch.formedAtMs = nowMs;
    const std::size_t n = std::min<std::size_t>(
        queue_.size(), static_cast<std::size_t>(policy_.maxBatch));
    batch.items.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        totalWaitMs_ += nowMs - queue_.front().enqueueMs;
        batch.items.push_back(queue_.front());
        queue_.pop_front();
    }
    ++batches_;
    dispatched_ += static_cast<std::int64_t>(n);
    return batch;
}

double
BatchScheduler::pendingCostScale() const
{
    double sum = 0.0;
    for (const auto& r : queue_)
        sum += r.costScale;
    return sum;
}

double
BatchScheduler::meanBatchSize() const
{
    return batches_ ? static_cast<double>(dispatched_) / batches_ : 0.0;
}

double
BatchScheduler::meanWaitMs() const
{
    return dispatched_ ? totalWaitMs_ / dispatched_ : 0.0;
}

} // namespace ad::serve
