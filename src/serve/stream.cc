#include "serve/stream.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace ad::serve {

FrameQueue::FrameQueue(int depth) : depth_(depth)
{
    if (depth < 0)
        fatal("FrameQueue: negative depth");
}

std::optional<FrameTicket>
FrameQueue::push(const FrameTicket& ticket)
{
    if (depth_ == 0)
        return ticket; // nothing may wait: the offer itself is stale.
    if (static_cast<int>(queue_.size()) < depth_) {
        queue_.push_back(ticket);
        return std::nullopt;
    }
    // Freshest-frame policy: evict the oldest waiter, keep the new
    // frame -- the vehicle reacts to the newest view of the road.
    FrameTicket evicted = queue_.front();
    queue_.pop_front();
    queue_.push_back(ticket);
    return evicted;
}

std::optional<FrameTicket>
FrameQueue::pop()
{
    if (queue_.empty())
        return std::nullopt;
    FrameTicket t = queue_.front();
    queue_.pop_front();
    return t;
}

StreamState::StreamState(int id_, const StreamParams& params_,
                         const pipeline::GovernorParams& governorParams,
                         const SloParams& sloParams)
    : id(id_), params(params_), queue(params_.queueDepth),
      deadline(obs::DeadlineParams{params_.deadlineMs, false, 0}),
      governor(governorParams), slo(sloParams, params_.deadlineMs)
{
}

void
StreamState::observeCompletion(std::int64_t frame, double latencyMs,
                               double tailDecay, bool engineServed)
{
    tailEstimateMs = std::max(latencyMs, tailEstimateMs * tailDecay);
    if (engineServed)
        servedLatency.record(latencyMs);
    slo.observe(latencyMs,
                engineServed && latencyMs <= params.deadlineMs);
    // The watchdog sees the whole serving latency on the DET axis:
    // queueing + batching + inference is the detection branch of the
    // stream's frame, and endToEndMs() then equals latencyMs.
    obs::FrameLatencySample sample;
    sample.detMs = latencyMs;
    deadline.observe(frame, sample);
    governor.observe(frame, sample);
}

double
StreamState::slackMs() const
{
    double tail = tailEstimateMs;
    // The window p99 only participates once resolvable (>= 100
    // samples); before that it reports the -1 sentinel and slack
    // rests on the peak-decay estimate alone.
    const double sloTail = slo.tailMs();
    if (sloTail >= 0.0)
        tail = std::max(tail, sloTail);
    return std::max(0.0, params.deadlineMs - tail);
}

OwnershipToken
StreamState::acquireOwnership(int newOwner)
{
    if (owner_ >= 0)
        fatal("StreamState: stream " + std::to_string(id) +
              " already owned by " + std::to_string(owner_) +
              "; handoff requires an explicit release first");
    if (newOwner < 0)
        fatal("StreamState: invalid owner id");
    owner_ = newOwner;
    return OwnershipToken{id, epoch_};
}

void
StreamState::releaseOwnership(const OwnershipToken& token)
{
    assertOwnership(token, "release");
    owner_ = -1;
    ++epoch_; // every outstanding copy of the token is now stale.
}

bool
StreamState::ownershipCurrent(const OwnershipToken& token) const
{
    return owner_ >= 0 && token.stream == id && token.epoch == epoch_;
}

void
StreamState::assertOwnership(const OwnershipToken& token,
                             const char* what) const
{
    if (ownershipCurrent(token))
        return;
    fatal(std::string("StreamState: stale ownership token on ") +
          what + " of stream " + std::to_string(id) + " (token epoch " +
          std::to_string(token.epoch) + ", stream epoch " +
          std::to_string(epoch_) + ", owner " +
          std::to_string(owner_) +
          "): a migrated stream may only be dispatched by its "
          "current owner");
}

int
StreamRegistry::addStream(const StreamParams& params,
                          const pipeline::GovernorParams& governorParams,
                          const SloParams& sloParams)
{
    const int id = static_cast<int>(streams_.size());
    streams_.push_back(std::make_unique<StreamState>(
        id, params, governorParams, sloParams));
    return id;
}

int
StreamRegistry::adopt(std::unique_ptr<StreamState> stream)
{
    if (!stream)
        fatal("StreamRegistry: adopt of null stream");
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i])
            continue;
        streams_[i] = std::move(stream);
        return static_cast<int>(i);
    }
    streams_.push_back(std::move(stream));
    return static_cast<int>(streams_.size() - 1);
}

std::unique_ptr<StreamState>
StreamRegistry::extract(int slot)
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= streams_.size() ||
        !streams_[static_cast<std::size_t>(slot)])
        fatal("StreamRegistry: extract of vacant slot " +
              std::to_string(slot));
    return std::move(streams_[static_cast<std::size_t>(slot)]);
}

StreamState*
StreamRegistry::find(int slot)
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= streams_.size())
        return nullptr;
    return streams_[static_cast<std::size_t>(slot)].get();
}

const StreamState*
StreamRegistry::find(int slot) const
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= streams_.size())
        return nullptr;
    return streams_[static_cast<std::size_t>(slot)].get();
}

const StreamState*
StreamRegistry::firstActive() const
{
    for (const auto& s : streams_)
        if (s)
            return s.get();
    return nullptr;
}

std::size_t
StreamRegistry::active() const
{
    std::size_t n = 0;
    for (const auto& s : streams_)
        if (s)
            ++n;
    return n;
}

std::int64_t
StreamRegistry::totalArrived() const
{
    std::int64_t sum = 0;
    for (const auto& s : streams_)
        if (s)
            sum += s->stats.arrived;
    return sum;
}

int
StreamRegistry::mostSlackStream(pipeline::OperatingMode cap) const
{
    int best = -1;
    double bestSlack = -1.0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        const auto& s = streams_[i];
        if (!s || s->governor.mode() >= cap)
            continue;
        const double slack = s->slackMs();
        if (slack > bestSlack) {
            bestSlack = slack;
            best = static_cast<int>(i);
        }
    }
    return best;
}

} // namespace ad::serve
