#include "serve/stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ad::serve {

FrameQueue::FrameQueue(int depth) : depth_(depth)
{
    if (depth < 0)
        fatal("FrameQueue: negative depth");
}

std::optional<FrameTicket>
FrameQueue::push(const FrameTicket& ticket)
{
    if (depth_ == 0)
        return ticket; // nothing may wait: the offer itself is stale.
    if (static_cast<int>(queue_.size()) < depth_) {
        queue_.push_back(ticket);
        return std::nullopt;
    }
    // Freshest-frame policy: evict the oldest waiter, keep the new
    // frame -- the vehicle reacts to the newest view of the road.
    FrameTicket evicted = queue_.front();
    queue_.pop_front();
    queue_.push_back(ticket);
    return evicted;
}

std::optional<FrameTicket>
FrameQueue::pop()
{
    if (queue_.empty())
        return std::nullopt;
    FrameTicket t = queue_.front();
    queue_.pop_front();
    return t;
}

StreamState::StreamState(int id_, const StreamParams& params_,
                         const pipeline::GovernorParams& governorParams,
                         const SloParams& sloParams)
    : id(id_), params(params_), queue(params_.queueDepth),
      deadline(obs::DeadlineParams{params_.deadlineMs, false, 0}),
      governor(governorParams), slo(sloParams, params_.deadlineMs)
{
}

void
StreamState::observeCompletion(std::int64_t frame, double latencyMs,
                               double tailDecay, bool engineServed)
{
    tailEstimateMs = std::max(latencyMs, tailEstimateMs * tailDecay);
    if (engineServed)
        servedLatency.record(latencyMs);
    slo.observe(latencyMs,
                engineServed && latencyMs <= params.deadlineMs);
    // The watchdog sees the whole serving latency on the DET axis:
    // queueing + batching + inference is the detection branch of the
    // stream's frame, and endToEndMs() then equals latencyMs.
    obs::FrameLatencySample sample;
    sample.detMs = latencyMs;
    deadline.observe(frame, sample);
    governor.observe(frame, sample);
}

double
StreamState::slackMs() const
{
    double tail = tailEstimateMs;
    // The window p99 only participates once resolvable (>= 100
    // samples); before that it reports the -1 sentinel and slack
    // rests on the peak-decay estimate alone.
    const double sloTail = slo.tailMs();
    if (sloTail >= 0.0)
        tail = std::max(tail, sloTail);
    return std::max(0.0, params.deadlineMs - tail);
}

int
StreamRegistry::addStream(const StreamParams& params,
                          const pipeline::GovernorParams& governorParams,
                          const SloParams& sloParams)
{
    const int id = static_cast<int>(streams_.size());
    streams_.push_back(std::make_unique<StreamState>(
        id, params, governorParams, sloParams));
    return id;
}

std::int64_t
StreamRegistry::totalArrived() const
{
    std::int64_t sum = 0;
    for (const auto& s : streams_)
        sum += s->stats.arrived;
    return sum;
}

int
StreamRegistry::mostSlackStream(pipeline::OperatingMode cap) const
{
    int best = -1;
    double bestSlack = -1.0;
    for (const auto& s : streams_) {
        if (s->governor.mode() >= cap)
            continue;
        const double slack = s->slackMs();
        if (slack > bestSlack) {
            bestSlack = slack;
            best = s->id;
        }
    }
    return best;
}

} // namespace ad::serve
