/**
 * @file
 * Multi-stream serving layer, part 2: cross-stream batching.
 *
 * DET/TRA inference requests from different vehicle streams are
 * coalesced into one NN batch so the engine amortizes its fixed
 * per-invocation cost (weight streaming, kernel launch, im2col
 * packing) over several frames. Batching buys throughput at the
 * price of latency -- a request may wait for companions -- so the
 * batching window is bounded twice over:
 *
 *  1. `maxWaitMs`: no request waits longer than the window, and
 *  2. a slack bound: a batch is dispatched early whenever *any*
 *     queued request would otherwise get within `latestStartSlackMs`
 *     of its absolute deadline (queueing for throughput must never
 *     cause the deadline miss it exists to prevent).
 *
 * The scheduler is pure policy over explicit timestamps: it never
 * reads a clock and never blocks, which keeps it deterministic and
 * testable without sleeps. The serving loop asks "when should the
 * engine next act?" (nextDispatchMs) and "give me the batch due now"
 * (tryDispatch).
 */

#ifndef AD_SERVE_BATCH_SCHEDULER_HH
#define AD_SERVE_BATCH_SCHEDULER_HH

#include <deque>
#include <optional>
#include <vector>

#include "serve/stream.hh"

namespace ad::serve {

/** Batching knobs. */
struct BatchPolicy
{
    int maxBatch = 8;        ///< close the batch at this size.
    double maxWaitMs = 6.0;  ///< longest any request may wait.
    /**
     * Dispatch no later than (deadline - latestStartSlackMs) of the
     * tightest queued request: the reserve covers the expected
     * engine cost plus per-stream post-processing, so batching never
     * converts an admissible frame into a deadline miss. The serving
     * loop refreshes it from the admission controller's online cost
     * estimate.
     */
    double latestStartSlackMs = 25.0;
};

/** One queued inference request (a frame needing DET/TRA compute). */
struct InferenceRequest
{
    FrameTicket ticket;
    double enqueueMs = 0.0;   ///< when the request entered the queue.
    double deadlineMs = 0.0;  ///< absolute completion deadline.
    /**
     * Relative engine cost of this request: 1 for a full-scale
     * inference, e.g.\ 0.25 when the stream's governor runs the
     * half-scale degraded detector (quarter the pixels).
     */
    double costScale = 1.0;
    bool degraded = false; ///< admitted at the degraded scale.
};

/** One dispatched cross-stream batch. */
struct Batch
{
    std::vector<InferenceRequest> items;
    double formedAtMs = 0.0;

    std::size_t size() const { return items.size(); }
    /** Sum of the members' cost scales (engine work units). */
    double totalCostScale() const;
};

/**
 * FIFO request queue with batched release. Requests are released in
 * arrival order (no reordering across streams -- fairness is the
 * admission controller's job, not the batcher's).
 */
class BatchScheduler
{
  public:
    explicit BatchScheduler(const BatchPolicy& policy);

    void enqueue(const InferenceRequest& request);

    /**
     * Earliest time the engine should form a batch, assuming it is
     * free: now if the batch is already full or a bound has expired,
     * later if waiting for companions is still safe, nullopt when
     * nothing is queued.
     *
     * @param nowMs current virtual time.
     */
    std::optional<double> nextDispatchMs(double nowMs) const;

    /**
     * Form and return a batch if one is due at `nowMs` (full, window
     * expired, or slack bound reached); nullopt when the engine
     * should keep waiting. Takes the oldest `maxBatch` requests.
     */
    std::optional<Batch> tryDispatch(double nowMs);

    std::size_t pending() const { return queue_.size(); }

    /** Sum of queued cost scales (admission backlog estimation). */
    double pendingCostScale() const;

    /** Refresh the slack reserve from the online cost estimate. */
    void setLatestStartSlackMs(double ms)
    {
        policy_.latestStartSlackMs = ms;
    }

    const BatchPolicy& policy() const { return policy_; }

    /** Batches dispatched since construction. */
    std::int64_t batchesFormed() const { return batches_; }
    /** Requests dispatched since construction. */
    std::int64_t requestsDispatched() const { return dispatched_; }
    /** Mean batch size over all dispatches (0 when none). */
    double meanBatchSize() const;
    /** Mean request wait between enqueue and dispatch (ms). */
    double meanWaitMs() const;

  private:
    /** Absolute time by which a batch must start, given the queue. */
    double mustStartByMs() const;

    BatchPolicy policy_;
    std::deque<InferenceRequest> queue_;
    std::int64_t batches_ = 0;
    std::int64_t dispatched_ = 0;
    double totalWaitMs_ = 0.0;
};

} // namespace ad::serve

#endif // AD_SERVE_BATCH_SCHEDULER_HH
