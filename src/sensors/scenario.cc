#include "sensors/scenario.hh"

namespace ad::sensors {

namespace {

/** Roadside landmark boards on both sides along the whole road. */
void
addLandmarks(World& world, Rng& rng, double spacing)
{
    const Road& road = world.road();
    for (double x = 5.0; x < road.length; x += spacing) {
        for (const double side : {-2.5, road.width() + 2.5}) {
            Landmark lm;
            lm.pos = {x + rng.uniform(-1.5, 1.5),
                      side + rng.uniform(-0.5, 0.5)};
            lm.width = rng.uniform(0.8, 1.6);
            lm.height = rng.uniform(1.5, 2.6);
            lm.baseHeight = rng.uniform(0.5, 1.0);
            world.addLandmark(lm);
        }
    }
}

void
addSigns(World& world, Rng& rng, int count)
{
    const Road& road = world.road();
    for (int i = 0; i < count; ++i) {
        Actor sign;
        sign.cls = ObjectClass::TrafficSign;
        sign.motion = MotionKind::Stationary;
        sign.pose = Pose2(rng.uniform(20.0, road.length - 20.0),
                          road.width() + 1.2, 0.0);
        sign.length = 0.8;
        sign.width = 0.8;
        sign.height = 2.2;
        world.addActor(sign);
    }
}

} // namespace

Scenario
makeHighwayScenario(Rng& rng, const ScenarioParams& params)
{
    Scenario sc;
    sc.name = "highway";
    sc.world.road().lanes = params.lanes;
    sc.world.road().length = params.roadLength;
    addLandmarks(sc.world, rng, params.landmarkSpacing);
    addSigns(sc.world, rng, params.signs);

    for (int i = 0; i < params.vehicles; ++i) {
        Actor car;
        car.cls = ObjectClass::Vehicle;
        car.motion = MotionKind::LaneKeep;
        const int lane = rng.uniformInt(0, params.lanes - 1);
        car.pose = Pose2(rng.uniform(15.0, params.roadLength - 15.0),
                         sc.world.road().laneCenter(lane), 0.0);
        car.speed = rng.uniform(20.0, 30.0);
        car.length = rng.uniform(4.0, 5.5);
        car.width = rng.uniform(1.7, 2.0);
        car.height = rng.uniform(1.4, 1.8);
        sc.world.addActor(car);
    }

    sc.ego.lane = 1;
    sc.ego.pose = Pose2(5.0, sc.world.road().laneCenter(1), 0.0);
    sc.ego.speed = 25.0;
    return sc;
}

Scenario
makeUrbanScenario(Rng& rng, const ScenarioParams& params)
{
    Scenario sc;
    sc.name = "urban";
    sc.world.road().lanes = params.lanes;
    sc.world.road().length = params.roadLength;
    // Urban: denser landmarks (storefronts), more signs.
    addLandmarks(sc.world, rng, params.landmarkSpacing * 0.6);
    addSigns(sc.world, rng, params.signs * 2);

    for (int i = 0; i < params.vehicles; ++i) {
        Actor car;
        car.cls = ObjectClass::Vehicle;
        car.motion = MotionKind::LaneKeep;
        const int lane = rng.uniformInt(0, params.lanes - 1);
        car.pose = Pose2(rng.uniform(15.0, params.roadLength - 15.0),
                         sc.world.road().laneCenter(lane), 0.0);
        car.speed = rng.uniform(6.0, 14.0);
        sc.world.addActor(car);
    }

    for (int i = 0; i < params.bicycles; ++i) {
        Actor bike;
        bike.cls = ObjectClass::Bicycle;
        bike.motion = MotionKind::LaneKeep;
        bike.pose = Pose2(rng.uniform(15.0, params.roadLength - 15.0),
                          sc.world.road().laneCenter(0) - 1.0, 0.0);
        bike.speed = rng.uniform(3.0, 7.0);
        bike.length = 1.8;
        bike.width = 0.6;
        bike.height = 1.7;
        sc.world.addActor(bike);
    }

    for (int i = 0; i < params.pedestrians; ++i) {
        Actor ped;
        ped.cls = ObjectClass::Pedestrian;
        ped.motion = MotionKind::Crossing;
        ped.pose = Pose2(rng.uniform(25.0, params.roadLength - 25.0),
                         -0.5, M_PI / 2); // crossing left across the road
        ped.speed = rng.uniform(1.0, 2.0);
        ped.length = 0.5;
        ped.width = 0.6;
        ped.height = 1.75;
        ped.crossingSpan = sc.world.road().width() + 1.0;
        sc.world.addActor(ped);
    }

    sc.ego.lane = 1;
    sc.ego.pose = Pose2(5.0, sc.world.road().laneCenter(1), 0.0);
    sc.ego.speed = 10.0;
    return sc;
}

} // namespace ad::sensors
