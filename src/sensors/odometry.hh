/**
 * @file
 * Wheel odometry + yaw-rate gyro: the proprioceptive sensors every
 * production vehicle already carries. The localization engine's pose
 * prediction (Figure 5's "Pose Prediction (Motion Model)") can use
 * these instead of a constant-velocity assumption, which matters
 * through turns and speed changes. Measurements carry realistic
 * imperfections: wheel-radius scale bias, encoder noise, gyro bias
 * drift and white noise.
 */

#ifndef AD_SENSORS_ODOMETRY_HH
#define AD_SENSORS_ODOMETRY_HH

#include "common/geometry.hh"
#include "common/random.hh"

namespace ad::sensors {

/** One odometry sample over a frame interval. */
struct OdometryReading
{
    double speed = 0.0;   ///< measured body speed (m/s).
    double yawRate = 0.0; ///< measured yaw rate (rad/s).
    double dt = 0.0;      ///< integration interval (s).
};

/** Sensor imperfection knobs. */
struct OdometryParams
{
    double wheelScaleBias = 0.01;  ///< stddev of the per-unit scale
                                   ///  error (tire wear/pressure).
    double speedNoise = 0.05;      ///< encoder white noise (m/s).
    double gyroBias = 0.002;       ///< constant bias stddev (rad/s).
    double gyroNoise = 0.004;      ///< white noise (rad/s).
};

/**
 * Simulated wheel-odometry unit. Biases are drawn once at
 * construction (they are physical properties of one vehicle) and
 * white noise per sample.
 */
class WheelOdometry
{
  public:
    /** @param seed determines this unit's fixed biases. */
    explicit WheelOdometry(std::uint64_t seed,
                           const OdometryParams& params = {});

    /**
     * Measure the interval between two ground-truth poses.
     *
     * @param previous true pose at the interval start.
     * @param current true pose at the interval end.
     * @param dt interval length (s).
     */
    OdometryReading measure(const Pose2& previous, const Pose2& current,
                            double dt);

    /** The unit's fixed scale bias (for tests). */
    double scaleBias() const { return scaleBias_; }

  private:
    OdometryParams params_;
    Rng rng_;
    double scaleBias_;  ///< multiplicative speed error.
    double gyroBias_;   ///< additive yaw-rate error.
};

/** Integrate an odometry reading from a pose (unicycle model). */
Pose2 integrateOdometry(const Pose2& from, const OdometryReading& odom);

} // namespace ad::sensors

#endif // AD_SENSORS_ODOMETRY_HH
