/**
 * @file
 * Deterministic sensor-corruption primitives for fault injection:
 * additive pixel noise (a degraded or rain-specked sensor) and full or
 * partial blackout (an occluded, failed or over/under-exposed camera).
 * Every operation consumes an explicit Rng so a corrupted run is
 * bit-reproducible from the fault seed, matching the library-wide
 * no-global-randomness rule (common/random.hh).
 *
 * These primitives mutate only the Image handed to them -- never the
 * renderer or the world -- so the downstream engines (DET, LOC, TRA)
 * see the corruption exactly as a real pipeline would: through the
 * pixels.
 */

#ifndef AD_SENSORS_CORRUPTION_HH
#define AD_SENSORS_CORRUPTION_HH

#include "common/image.hh"
#include "common/random.hh"

namespace ad::sensors {

/**
 * Add zero-mean Gaussian noise with the given standard deviation (in
 * intensity levels) to every pixel, clamping to [0, 255]. One normal
 * draw per pixel, row-major, so the consumed rng stream depends only
 * on the image dimensions.
 */
void addPixelNoise(Image& image, Rng& rng, double sigma);

/**
 * Blackout: fill the whole frame with the given level (default 0, a
 * dead sensor; 255 models saturation/glare). Draws nothing from any
 * rng.
 */
void blackout(Image& image, std::uint8_t level = 0);

/**
 * Blackout a horizontal band covering `fraction` of the frame height
 * starting at `startFraction` from the top (both clamped to [0, 1]) --
 * partial occlusion such as a wiper or splash. Draws nothing.
 */
void blackoutBand(Image& image, double startFraction, double fraction,
                  std::uint8_t level = 0);

} // namespace ad::sensors

#endif // AD_SENSORS_CORRUPTION_HH
