#include "sensors/world.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad::sensors {

const char*
objectClassName(ObjectClass cls)
{
    switch (cls) {
      case ObjectClass::Vehicle: return "vehicle";
      case ObjectClass::Bicycle: return "bicycle";
      case ObjectClass::TrafficSign: return "traffic-sign";
      case ObjectClass::Pedestrian: return "pedestrian";
    }
    return "?";
}

std::uint8_t
objectClassIntensity(ObjectClass cls)
{
    // Distinct bright bands on the dark road (~80): see world.hh.
    switch (cls) {
      case ObjectClass::Vehicle: return 230;
      case ObjectClass::Bicycle: return 170;
      case ObjectClass::TrafficSign: return 250;
      case ObjectClass::Pedestrian: return 200;
    }
    return 0;
}

ObjectClass
classFromIntensity(double intensity)
{
    ObjectClass best = ObjectClass::Vehicle;
    double bestDiff = 1e9;
    for (int i = 0; i < kNumObjectClasses; ++i) {
        const auto cls = static_cast<ObjectClass>(i);
        const double diff =
            std::fabs(intensity - objectClassIntensity(cls));
        if (diff < bestDiff) {
            bestDiff = diff;
            best = cls;
        }
    }
    return best;
}

int
World::addActor(Actor actor)
{
    actor.id = nextActorId_++;
    if (actor.motion == MotionKind::Crossing) {
        actor.crossingOrigin = actor.pose.pos;
        actor.crossingHeading = actor.pose.theta;
        if (actor.crossingSpan <= 0.0)
            actor.crossingSpan = road_.width();
    }
    actors_.push_back(actor);
    return actor.id;
}

int
World::addLandmark(Landmark lm)
{
    lm.id = nextLandmarkId_++;
    if (lm.textureSeed == 0)
        lm.textureSeed = static_cast<std::uint32_t>(lm.id * 2654435761u);
    landmarks_.push_back(lm);
    return lm.id;
}

void
World::step(double dt)
{
    if (dt < 0)
        panic("World::step: negative dt ", dt);
    time_ += dt;
    for (auto& a : actors_) {
        switch (a.motion) {
          case MotionKind::Stationary:
            break;
          case MotionKind::Constant:
          case MotionKind::LaneKeep: {
            const Vec2 dir{std::cos(a.pose.theta), std::sin(a.pose.theta)};
            a.pose.pos += dir * (a.speed * dt);
            if (a.motion == MotionKind::LaneKeep &&
                a.pose.pos.x > road_.length)
                a.pose.pos.x -= road_.length;
            if (a.motion == MotionKind::LaneKeep && a.pose.pos.x < 0)
                a.pose.pos.x += road_.length;
            break;
          }
          case MotionKind::Crossing: {
            const Vec2 dir{std::cos(a.pose.theta), std::sin(a.pose.theta)};
            a.pose.pos += dir * (a.speed * dt);
            // Bounce between origin and origin + span along the
            // outbound crossing axis.
            const Vec2 axis{std::cos(a.crossingHeading),
                            std::sin(a.crossingHeading)};
            const double p = (a.pose.pos - a.crossingOrigin).dot(axis);
            if (p > a.crossingSpan) {
                a.pose.theta = wrapAngle(a.crossingHeading + M_PI);
                a.pose.pos = a.crossingOrigin + axis * a.crossingSpan;
            } else if (p < 0.0) {
                a.pose.theta = a.crossingHeading;
                a.pose.pos = a.crossingOrigin;
            }
            break;
          }
        }
    }
}

std::uint32_t
worldHash(std::uint32_t a, std::int32_t b, std::int32_t c)
{
    std::uint32_t h = a;
    h ^= static_cast<std::uint32_t>(b) * 0x9e3779b9u;
    h = (h ^ (h >> 16)) * 0x85ebca6bu;
    h ^= static_cast<std::uint32_t>(c) * 0xc2b2ae35u;
    h = (h ^ (h >> 13)) * 0x27d4eb2fu;
    return h ^ (h >> 16);
}

} // namespace ad::sensors
