#include "sensors/corruption.hh"

#include <algorithm>
#include <cmath>

namespace ad::sensors {

void
addPixelNoise(Image& image, Rng& rng, double sigma)
{
    if (sigma <= 0)
        return;
    const int w = image.width();
    const int h = image.height();
    for (int y = 0; y < h; ++y) {
        std::uint8_t* row = image.row(y);
        for (int x = 0; x < w; ++x) {
            const double v = row[x] + rng.normal(0.0, sigma);
            row[x] = static_cast<std::uint8_t>(
                std::clamp(v, 0.0, 255.0));
        }
    }
}

void
blackout(Image& image, std::uint8_t level)
{
    image.fill(level);
}

void
blackoutBand(Image& image, double startFraction, double fraction,
             std::uint8_t level)
{
    if (image.empty() || fraction <= 0)
        return;
    startFraction = std::clamp(startFraction, 0.0, 1.0);
    fraction = std::clamp(fraction, 0.0, 1.0);
    const int h = image.height();
    const int y0 = static_cast<int>(std::floor(startFraction * h));
    const int y1 = std::min(
        h, y0 + static_cast<int>(std::ceil(fraction * h)));
    for (int y = y0; y < y1; ++y) {
        std::uint8_t* row = image.row(y);
        std::fill(row, row + image.width(), level);
    }
}

} // namespace ad::sensors
