#include "sensors/camera.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ad::sensors {

ResolutionSpec
resolutionSpec(Resolution r)
{
    switch (r) {
      case Resolution::HHD: return {"HHD", 640, 360};
      case Resolution::HD: return {"HD (720p)", 1280, 720};
      case Resolution::HDPlus: return {"HD+", 1600, 900};
      case Resolution::FHD: return {"FHD (1080p)", 1920, 1080};
      case Resolution::QHD: return {"QHD (1440p)", 2560, 1440};
      case Resolution::Kitti: return {"KITTI", 1242, 375};
    }
    panic("resolutionSpec: bad resolution");
}

const std::vector<Resolution>&
allResolutions()
{
    static const std::vector<Resolution> all = {
        Resolution::HHD, Resolution::Kitti, Resolution::HD,
        Resolution::HDPlus, Resolution::FHD, Resolution::QHD,
    };
    return all;
}

Camera::Camera(Resolution res)
    : Camera(resolutionSpec(res).width, resolutionSpec(res).height)
{
}

Camera::Camera(int width, int height) : width_(width), height_(height)
{
    if (width <= 0 || height <= 0)
        fatal("Camera: invalid resolution ", width, "x", height);
    focal_ = width / 2.0;     // 90-degree horizontal FOV.
    horizon_ = height / 2.0;  // zero pitch.
}

bool
Camera::project(const Pose2& ego, const Vec2& world, double z, double& u,
                double& v, double& depth) const
{
    const Vec2 local = ego.inverseTransform(world);
    depth = local.x;
    if (depth < nearPlane_)
        return false;
    u = width_ / 2.0 - focal_ * local.y / depth;
    v = horizon_ + focal_ * (cameraHeight_ - z) / depth;
    return true;
}

bool
Camera::unprojectGround(const Pose2& ego, double u, double v,
                        Vec2& world) const
{
    if (v <= horizon_ + 0.5)
        return false;
    const double depth = focal_ * cameraHeight_ / (v - horizon_);
    const double lateral = (width_ / 2.0 - u) * depth / focal_;
    world = ego.transform({depth, lateral});
    return true;
}

namespace {

/** Painter's-algorithm display-list entry. */
struct DrawItem
{
    bool isActor = false;
    std::size_t index = 0;
    double depth = 0;
};

/** World-anchored asphalt/grass noise in [-amp, amp]. */
int
groundNoise(const Vec2& world, int amp)
{
    const auto gx = static_cast<std::int32_t>(std::floor(world.x * 6.0));
    const auto gy = static_cast<std::int32_t>(std::floor(world.y * 6.0));
    const std::uint32_t h = worldHash(0xa5fa17u, gx, gy);
    return static_cast<int>(h % (2 * amp + 1)) - amp;
}

/** Is the world ground point on a lane-marking stripe? */
bool
onLaneMarking(const Road& road, const Vec2& world)
{
    if (world.y < -0.2 || world.y > road.width() + 0.2)
        return false;
    constexpr double halfStripe = 0.12;
    for (int k = 0; k <= road.lanes; ++k) {
        const double boundary = k * road.laneWidth;
        if (std::fabs(world.y - boundary) > halfStripe)
            continue;
        // Edge lines are solid; interior boundaries are 3m-on/3m-off
        // dashes anchored to world x.
        if (k == 0 || k == road.lanes)
            return true;
        return std::fmod(std::fmod(world.x, 6.0) + 6.0, 6.0) < 3.0;
    }
    return false;
}

} // namespace

bool
Camera::landmarkRect(const Pose2& ego, const Landmark& lm, BBox& box,
                     double& depth) const
{
    double u0, v0, u1, v1, d0, d1;
    const Vec2 lateral{0.0, lm.width / 2.0};
    if (!project(ego, lm.pos + lateral, lm.baseHeight, u0, v0, d0) ||
        !project(ego, lm.pos - lateral, lm.baseHeight + lm.height, u1, v1,
                 d1))
        return false;
    depth = (d0 + d1) / 2.0;
    if (depth < nearPlane_ || depth > farPlane_)
        return false;
    const double x0 = std::min(u0, u1);
    const double x1 = std::max(u0, u1);
    const double y0 = std::min(v0, v1);
    const double y1 = std::max(v0, v1);
    box = BBox(x0, y0, x1 - x0, y1 - y0);
    return true;
}

Frame
Camera::render(const World& world, const Pose2& ego,
               const RenderConditions& conditions) const
{
    Frame frame;
    frame.egoTruth = ego;
    frame.timestamp = world.time();
    frame.image = Image(width_, height_);
    Image& img = frame.image;

    const Road& road = world.road();

    // Background: sky above the horizon, ground below.
    for (int y = 0; y < height_; ++y) {
        std::uint8_t* row = img.row(y);
        if (y <= horizon_) {
            // Sky: mild vertical gradient, feature-poor by design.
            const int sky = 115 + static_cast<int>(10.0 * y / horizon_);
            std::fill(row, row + width_, static_cast<std::uint8_t>(sky));
            continue;
        }
        for (int x = 0; x < width_; ++x) {
            Vec2 ground;
            if (!unprojectGround(ego, x + 0.5, y + 0.5, ground)) {
                row[x] = 120;
                continue;
            }
            const bool onRoad =
                ground.y >= -0.2 && ground.y <= road.width() + 0.2;
            // Lane markings sit below every object-class intensity band
            // so the brightness-driven detector does not fire on them.
            int base = onRoad ? 80 : 58;
            if (onRoad && onLaneMarking(road, ground))
                base = 150;
            base += groundNoise(ground, onRoad ? 7 : 10);
            row[x] = static_cast<std::uint8_t>(std::clamp(base, 0, 255));
        }
    }

    // Build the far-to-near display list of landmarks and actors.
    std::vector<DrawItem> items;
    const auto& landmarks = world.landmarks();
    const auto& actors = world.actors();
    for (std::size_t i = 0; i < landmarks.size(); ++i) {
        const Vec2 local = ego.inverseTransform(landmarks[i].pos);
        if (local.x > nearPlane_ && local.x < farPlane_)
            items.push_back({false, i, local.x});
    }
    for (std::size_t i = 0; i < actors.size(); ++i) {
        const Vec2 local = ego.inverseTransform(actors[i].pose.pos);
        if (local.x > nearPlane_ && local.x < farPlane_)
            items.push_back({true, i, local.x});
    }
    std::sort(items.begin(), items.end(),
              [](const DrawItem& a, const DrawItem& b) {
                  return a.depth > b.depth;
              });

    for (const auto& item : items) {
        if (!item.isActor) {
            const Landmark& lm = landmarks[item.index];
            // Boards face the camera (fronto-parallel approximation),
            // so the image footprint is an axis-aligned rectangle.
            BBox rect;
            double depth;
            if (!landmarkRect(ego, lm, rect, depth))
                continue;
            const int x0 = static_cast<int>(std::floor(rect.x));
            const int x1 = static_cast<int>(std::ceil(rect.xmax()));
            const int y0 = static_cast<int>(std::floor(rect.y));
            const int y1 = static_cast<int>(std::ceil(rect.ymax()));
            if (x1 <= 0 || x0 >= width_ || y1 <= 0 || y0 >= height_)
                continue;
            constexpr double cell = 0.18; // checker cell size (m).
            for (int y = std::max(0, y0); y < std::min(height_, y1); ++y) {
                for (int x = std::max(0, x0); x < std::min(width_, x1);
                     ++x) {
                    const double s = (x - x0) /
                        std::max(1.0, static_cast<double>(x1 - x0));
                    const double t = (y - y0) /
                        std::max(1.0, static_cast<double>(y1 - y0));
                    const auto ci = static_cast<std::int32_t>(
                        s * lm.width / cell);
                    const auto cj = static_cast<std::int32_t>(
                        t * lm.height / cell);
                    const std::uint32_t h =
                        worldHash(lm.textureSeed, ci, cj);
                    img.at(x, y) =
                        static_cast<std::uint8_t>(40 + h % 120);
                }
            }
            continue;
        }

        const Actor& actor = actors[item.index];
        double u, v, depth;
        if (!project(ego, actor.pose.pos, 0.0, u, v, depth))
            continue;
        // Footprint spans the larger of width and foreshortened length.
        const double relAngle = actor.pose.theta - ego.theta;
        const double span = std::max(
            actor.width, actor.length * std::fabs(std::sin(relAngle)) +
                             actor.width * std::fabs(std::cos(relAngle)));
        const double wPx = focal_ * span / depth;
        const double hPx = focal_ * actor.height / depth;
        const BBox box(u - wPx / 2, v - hPx, wPx, hPx);
        const BBox clipped = box.clipped(width_, height_);
        if (clipped.w < 2 || clipped.h < 2)
            continue;

        const std::uint8_t intensity = objectClassIntensity(actor.cls);
        const int x0 = static_cast<int>(clipped.x);
        const int x1 = static_cast<int>(clipped.xmax());
        const int y0 = static_cast<int>(clipped.y);
        const int y1 = static_cast<int>(clipped.ymax());
        for (int y = y0; y < y1; ++y) {
            for (int x = x0; x < x1; ++x) {
                const std::uint32_t h =
                    worldHash(0xac7031u + actor.id, x - x0, y - y0);
                const int noise = static_cast<int>(h % 17) - 8;
                int value = intensity + noise;
                // Dark 2px border gives the tracker/FAST texture while
                // staying below every class intensity band (so it
                // cannot skew the detector's class-band mean).
                if (x - x0 < 2 || x1 - 1 - x < 2 || y - y0 < 2 ||
                    y1 - 1 - y < 2)
                    value = value * 2 / 5;
                img.at(x, y) = static_cast<std::uint8_t>(
                    std::clamp(value, 0, 255));
            }
        }

        GroundTruthObject gt;
        gt.actorId = actor.id;
        gt.cls = actor.cls;
        gt.box = clipped;
        gt.worldPos = actor.pose.pos;
        gt.depth = depth;
        frame.truth.push_back(gt);
    }

    // Environmental post-processing: global illumination gain and
    // additional sensor noise (deterministic per pixel/time so frames
    // stay reproducible).
    if (conditions.illumination != 1.0 || conditions.extraNoise > 0) {
        const auto timeSalt = static_cast<std::uint32_t>(
            world.time() * 1000.0);
        for (int y = 0; y < height_; ++y) {
            std::uint8_t* row = img.row(y);
            for (int x = 0; x < width_; ++x) {
                double v = row[x] * conditions.illumination;
                if (conditions.extraNoise > 0) {
                    const std::uint32_t h = worldHash(
                        0x5eed1u + timeSalt, x, y);
                    v += static_cast<int>(
                             h % (2 * conditions.extraNoise + 1)) -
                         conditions.extraNoise;
                }
                row[x] = static_cast<std::uint8_t>(
                    std::clamp(v, 0.0, 255.0));
            }
        }
    }

    return frame;
}

} // namespace ad::sensors
