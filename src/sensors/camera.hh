/**
 * @file
 * Pinhole camera model and grayscale renderer over the synthetic world.
 * The camera substitutes for the paper's KITTI video streams: it renders
 * frames at any of the paper's resolution presets (Figure 13 sweeps
 * HHD through QHD) with per-frame ground truth, exercising the same
 * detector/tracker/localizer code paths the real data would.
 *
 * Rendering is world-anchored: road asphalt noise, lane-marking dashes
 * and landmark checker textures are functions of *world* coordinates,
 * so the same physical surface produces consistent (ORB-matchable)
 * appearance from different ego poses.
 */

#ifndef AD_SENSORS_CAMERA_HH
#define AD_SENSORS_CAMERA_HH

#include <string>
#include <vector>

#include "common/geometry.hh"
#include "common/image.hh"
#include "sensors/world.hh"

namespace ad::sensors {

/** Camera resolution presets used across the paper's evaluation. */
enum class Resolution { HHD, HD, HDPlus, FHD, QHD, Kitti };

/** Pixel dimensions of a preset. */
struct ResolutionSpec
{
    const char* name;
    int width;
    int height;

    double
    megapixels() const
    {
        return width * static_cast<double>(height) / 1e6;
    }
};

/** Lookup of the preset table (Figure 13's x-axis + KITTI baseline). */
ResolutionSpec resolutionSpec(Resolution r);

/** All presets in ascending pixel count (for sweeps). */
const std::vector<Resolution>& allResolutions();

/** Ground-truth record for one rendered actor. */
struct GroundTruthObject
{
    int actorId = 0;
    ObjectClass cls = ObjectClass::Vehicle;
    BBox box;          ///< image-space bounding box.
    Vec2 worldPos;     ///< actor ground position.
    double depth = 0;  ///< camera-frame forward distance (m).
};

/**
 * Environmental rendering conditions. The paper's localization engine
 * carries a map-update step precisely because "the current
 * surroundings [may be] different from the prior map (e.g., the map
 * is built under different weather conditions)"; these knobs create
 * that appearance change.
 */
struct RenderConditions
{
    double illumination = 1.0; ///< global gain (dusk ~0.6-0.8).
    int extraNoise = 0;        ///< added sensor noise amplitude.
};

/** One rendered camera frame. */
struct Frame
{
    Image image;
    std::vector<GroundTruthObject> truth;
    Pose2 egoTruth;    ///< ground-truth ego pose at capture time.
    double timestamp = 0;
    int sequence = 0;
};

/**
 * Forward-facing pinhole camera mounted on the ego vehicle.
 *
 * Geometry: camera sits cameraHeight above the ego ground point looking
 * along the ego heading with zero pitch; horizontal FOV is 90 degrees
 * (focal length = width / 2).
 */
class Camera
{
  public:
    explicit Camera(Resolution res = Resolution::Kitti);
    Camera(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    double focal() const { return focal_; }
    double cameraHeight() const { return cameraHeight_; }

    /**
     * Project a world point (ground position + height z) into the
     * image.
     *
     * @param ego ego pose (camera frame derives from it).
     * @param world ground-plane world position.
     * @param z height above ground.
     * @param[out] u,v pixel coordinates.
     * @param[out] depth camera-frame forward distance.
     * @return false if the point is behind the near plane.
     */
    bool project(const Pose2& ego, const Vec2& world, double z, double& u,
                 double& v, double& depth) const;

    /**
     * Inverse ground projection: the world ground point seen at pixel
     * (u, v); false for pixels above the horizon.
     */
    bool unprojectGround(const Pose2& ego, double u, double v,
                         Vec2& world) const;

    /**
     * Image-space rectangle of a landmark board seen from the ego pose
     * (fronto-parallel approximation, unclipped).
     *
     * @return false if the board is outside the near/far range.
     */
    bool landmarkRect(const Pose2& ego, const Landmark& lm, BBox& box,
                      double& depth) const;

    /** Render one frame of the world from the ego pose. */
    Frame render(const World& world, const Pose2& ego,
                 const RenderConditions& conditions = {}) const;

    double nearPlane() const { return nearPlane_; }
    double farPlane() const { return farPlane_; }
    double horizon() const { return horizon_; }

  private:
    int width_;
    int height_;
    double focal_;
    double horizon_;               ///< image row of the horizon.
    double cameraHeight_ = 1.5;    ///< meters above ground.
    double nearPlane_ = 2.0;       ///< minimum render depth (m).
    double farPlane_ = 150.0;      ///< maximum render depth (m).
};

} // namespace ad::sensors

#endif // AD_SENSORS_CAMERA_HH
