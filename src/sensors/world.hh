/**
 * @file
 * Synthetic driving world -- the data substrate substituting for the
 * paper's KITTI camera streams (see DESIGN.md, "Substitutions"). The
 * world is a straight multi-lane road along +x with roadside landmarks
 * (the feature sources for localization) and dynamic actors of the four
 * object classes the paper's detector watches: vehicles, bicycles,
 * traffic signs and pedestrians.
 */

#ifndef AD_SENSORS_WORLD_HH
#define AD_SENSORS_WORLD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.hh"
#include "common/random.hh"

namespace ad::sensors {

/** Detection classes (Section 3.1.1 of the paper). */
enum class ObjectClass { Vehicle = 0, Bicycle, TrafficSign, Pedestrian };

constexpr int kNumObjectClasses = 4;

/** Short lowercase class name. */
const char* objectClassName(ObjectClass cls);

/**
 * Mean rendered intensity per class. Classes occupy distinct intensity
 * bands so the constructed-weight detector pipeline can both detect
 * (bright-on-dark) and classify (band lookup) without trained weights.
 */
std::uint8_t objectClassIntensity(ObjectClass cls);

/** Map a rendered intensity back to the nearest class band. */
ObjectClass classFromIntensity(double intensity);

/** How an actor moves each step. */
enum class MotionKind
{
    Constant,  ///< constant velocity along its heading.
    LaneKeep,  ///< follows its lane at a target speed.
    Crossing,  ///< crosses the road laterally (pedestrians).
    Stationary ///< parked vehicles / traffic signs.
};

/** A dynamic (or static) object in the world. */
struct Actor
{
    int id = 0;
    ObjectClass cls = ObjectClass::Vehicle;
    Pose2 pose;            ///< ground position + heading.
    double speed = 0.0;    ///< m/s along heading.
    double length = 4.5;   ///< extent along heading (m).
    double width = 1.8;    ///< lateral extent (m).
    double height = 1.5;   ///< vertical extent (m).
    MotionKind motion = MotionKind::Constant;
    double crossingSpan = 0.0;    ///< lateral travel bound for Crossing.
    Vec2 crossingOrigin;          ///< crossing start point.
    double crossingHeading = 0.0; ///< outbound crossing direction.
};

/**
 * A roadside landmark: a textured vertical board (sign backs, facades,
 * poles) that supplies repeatable ORB features for the localization
 * engine's prior map.
 */
struct Landmark
{
    int id = 0;
    Vec2 pos;              ///< ground position.
    double width = 1.2;    ///< board width (m).
    double height = 2.0;   ///< board height (m).
    double baseHeight = 0.8; ///< bottom edge above ground (m).
    std::uint32_t textureSeed = 0; ///< world-anchored texture identity.
};

/** Road geometry: straight lanes along +x. */
struct Road
{
    int lanes = 3;
    double laneWidth = 3.5;
    double length = 1000.0; ///< drivable extent in x (m).

    /** y-coordinate of a lane center (lane 0 is the rightmost). */
    double
    laneCenter(int lane) const
    {
        return (lane + 0.5) * laneWidth;
    }
    /** Total road width. */
    double width() const { return lanes * laneWidth; }
};

/**
 * The simulated world: road, landmarks and actors, advanced by step().
 */
class World
{
  public:
    World() = default;

    Road& road() { return road_; }
    const Road& road() const { return road_; }

    std::vector<Actor>& actors() { return actors_; }
    const std::vector<Actor>& actors() const { return actors_; }

    std::vector<Landmark>& landmarks() { return landmarks_; }
    const std::vector<Landmark>& landmarks() const { return landmarks_; }

    /** Add an actor, assigning it a fresh id. Returns the id. */
    int addActor(Actor actor);

    /** Add a landmark, assigning it a fresh id. Returns the id. */
    int addLandmark(Landmark lm);

    /** Simulation time in seconds. */
    double time() const { return time_; }

    /**
     * Advance all actors by dt seconds. Lane-keeping actors wrap around
     * the road length so long runs never exhaust traffic.
     */
    void step(double dt);

  private:
    Road road_;
    std::vector<Actor> actors_;
    std::vector<Landmark> landmarks_;
    double time_ = 0.0;
    int nextActorId_ = 1;
    int nextLandmarkId_ = 1;
};

/** Deterministic 32-bit hash used for world-anchored textures. */
std::uint32_t worldHash(std::uint32_t a, std::int32_t b, std::int32_t c);

} // namespace ad::sensors

#endif // AD_SENSORS_WORLD_HH
