#include "sensors/odometry.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad::sensors {

WheelOdometry::WheelOdometry(std::uint64_t seed,
                             const OdometryParams& params)
    : params_(params), rng_(seed)
{
    scaleBias_ = 1.0 + rng_.normal(0.0, params.wheelScaleBias);
    gyroBias_ = rng_.normal(0.0, params.gyroBias);
}

OdometryReading
WheelOdometry::measure(const Pose2& previous, const Pose2& current,
                       double dt)
{
    if (dt <= 0)
        fatal("WheelOdometry::measure: dt must be positive");
    OdometryReading r;
    r.dt = dt;
    const double trueSpeed = (current.pos - previous.pos).norm() / dt;
    const double trueYawRate =
        wrapAngle(current.theta - previous.theta) / dt;
    r.speed = trueSpeed * scaleBias_ +
              rng_.normal(0.0, params_.speedNoise);
    if (r.speed < 0)
        r.speed = 0;
    r.yawRate = trueYawRate + gyroBias_ +
                rng_.normal(0.0, params_.gyroNoise);
    return r;
}

Pose2
integrateOdometry(const Pose2& from, const OdometryReading& odom)
{
    // Midpoint unicycle integration: rotate by half the yaw change,
    // translate, rotate the rest.
    const double dTheta = odom.yawRate * odom.dt;
    const double midHeading = from.theta + dTheta / 2;
    Pose2 out = from;
    out.pos += Vec2{std::cos(midHeading), std::sin(midHeading)} *
               (odom.speed * odom.dt);
    out.theta = wrapAngle(from.theta + dTheta);
    return out;
}

} // namespace ad::sensors
