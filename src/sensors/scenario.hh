/**
 * @file
 * Scenario builders: the canned worlds the examples and benches drive
 * through. The highway scenario matches the paper's cruising workload
 * (dense same-direction traffic, sparse landmarks); the urban scenario
 * stresses the pipeline the way the paper's motivation describes --
 * pedestrians crossing, traffic signs, dense landmarks and frequent
 * relocalization triggers.
 */

#ifndef AD_SENSORS_SCENARIO_HH
#define AD_SENSORS_SCENARIO_HH

#include "common/random.hh"
#include "sensors/world.hh"

namespace ad::sensors {

/** Scenario construction knobs. */
struct ScenarioParams
{
    double roadLength = 600.0;
    int lanes = 3;
    int vehicles = 8;
    int bicycles = 2;
    int pedestrians = 3;
    int signs = 6;
    double landmarkSpacing = 9.0; ///< roadside board spacing (m).
};

/** Initial ego state for a scenario. */
struct EgoStart
{
    Pose2 pose;
    double speed = 0.0; ///< m/s.
    int lane = 1;
};

/** A built scenario: world + ego start. */
struct Scenario
{
    World world;
    EgoStart ego;
    std::string name;
};

/**
 * Highway cruising: multi-lane traffic moving in the ego direction at
 * 20-30 m/s, roadside landmark boards, a few signs, no pedestrians.
 */
Scenario makeHighwayScenario(Rng& rng,
                             const ScenarioParams& params = {});

/**
 * Urban street: slower traffic, crossing pedestrians, bicycles, dense
 * signs and landmarks.
 */
Scenario makeUrbanScenario(Rng& rng, const ScenarioParams& params = {});

} // namespace ad::sensors

#endif // AD_SENSORS_SCENARIO_HH
