/**
 * @file
 * Tracker pool and tracked-object table (Section 3.1.2 of the paper):
 * a pool of GOTURN-style trackers is launched at startup so incoming
 * tracking requests never pay initialization cost; a tracked-object
 * table records live objects, and an object is evicted after it fails
 * to appear in ten consecutive frames, returning its tracker to the
 * idle pool.
 *
 * Detections are associated to existing tracks by IoU; unmatched
 * detections claim idle trackers; unmatched tracks coast on their
 * tracker's prediction.
 */

#ifndef AD_TRACK_POOL_HH
#define AD_TRACK_POOL_HH

#include <memory>
#include <vector>

#include "detect/yolo.hh"
#include "track/goturn.hh"

namespace ad::track {

/** A row of the tracked-object table. */
struct TrackedObject
{
    int id = 0;                  ///< stable track id.
    sensors::ObjectClass cls = sensors::ObjectClass::Vehicle;
    BBox box;                    ///< current image-space box.
    Vec2 velocityPx;             ///< per-frame pixel velocity.
    int consecutiveMisses = 0;   ///< frames since last detection match.
    int age = 0;                 ///< frames since birth.
    int trackerIndex = -1;       ///< pool slot driving this object.
    double confidence = 0.0;     ///< last matched detection confidence.
};

/** Pool tuning. */
struct PoolParams
{
    int poolSize = 16;           ///< warm tracker instances.
    int evictAfterMisses = 10;   ///< the paper's ten-frame rule.
    double associationIou = 0.3; ///< detection-track match gate.
    /**
     * Run the GOTURN network for every live track each frame (the
     * paper's workload: one tracker invocation per tracked object per
     * frame) rather than only when a track misses its detection.
     * Matched tracks still adopt the detection box afterward.
     */
    bool alwaysRunTracker = false;
    TrackerParams tracker;
};

/** Per-frame TRA statistics. */
struct PoolTimings
{
    TrackTimings tracker;   ///< summed over all tracker runs.
    double associateMs = 0; ///< detection-track association.
    double totalMs = 0;
    int trackerRuns = 0;    ///< DNN invocations this frame.
};

/**
 * The object-tracking engine (TRA): tracker pool + tracked-object
 * table.
 */
class TrackerPool
{
  public:
    explicit TrackerPool(const PoolParams& params = {});

    /**
     * Advance all tracks by one frame.
     *
     * @param frame current camera frame.
     * @param detections this frame's DET output.
     * @param timings optional per-frame statistics.
     */
    void update(const Image& frame,
                const std::vector<detect::Detection>& detections,
                PoolTimings* timings = nullptr);

    /**
     * Advance every live track one frame on its GOTURN prediction
     * alone -- no detections, no association, and, unlike update()
     * with an empty detection list, no detection-miss counting, so
     * deliberately skipped detection frames (the governor's
     * DEGRADED/TRACKING_ONLY detection-interval stretching) never push
     * tracks toward the ten-miss eviction.
     *
     * @param frame current camera frame.
     * @param timings optional per-frame statistics.
     */
    void coast(const Image& frame, PoolTimings* timings = nullptr);

    /**
     * Advance every live track by its last pixel velocity without
     * touching the image -- the fallback for frames the camera never
     * delivered (frame drop) or where TRA itself failed transiently.
     * Tracker-internal state is left untouched; the next real
     * update()/coast() searches from the pre-coast location, which is
     * bounded drift over the staleness window the governor allows.
     */
    void coastBlind(PoolTimings* timings = nullptr);

    /** The live tracked-object table. */
    const std::vector<TrackedObject>& tracks() const { return tracks_; }

    /** Idle trackers remaining in the pool. */
    int idleTrackers() const;

    const PoolParams& params() const { return params_; }

  private:
    /** Pool slot of an idle tracker, or -1 when exhausted. */
    int claimTracker();

    PoolParams params_;
    std::vector<std::unique_ptr<GoturnTracker>> pool_;
    std::vector<TrackedObject> tracks_;
    int nextTrackId_ = 1;
};

} // namespace ad::track

#endif // AD_TRACK_POOL_HH
