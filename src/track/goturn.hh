/**
 * @file
 * Single-object tracker in the style of GOTURN (Figure 4 of the paper):
 * the previous frame is cropped to the target, the current frame to a
 * search region around the previous location, both crops run through a
 * shared convolutional branch, and a fully connected stack regresses
 * the new bounding box.
 *
 * We run the full two-branch DNN (the representative TRA workload; 99%
 * of TRA cycles per Figure 7) and refine the regression with normalized
 * cross-correlation inside the search region -- the functional
 * stand-in for trained regression weights (see DESIGN.md,
 * "Substitutions"); NCC cost lands in the "Others" slice.
 */

#ifndef AD_TRACK_GOTURN_HH
#define AD_TRACK_GOTURN_HH

#include "common/image.hh"
#include "nn/models.hh"

namespace ad::track {

/** Wall-clock attribution of one track() call. */
struct TrackTimings
{
    double dnnMs = 0;   ///< conv branches + FC stack.
    double otherMs = 0; ///< crops + NCC refinement.
    double totalMs = 0;
};

/** Tracker tuning. */
struct TrackerParams
{
    /**
     * Square crop input. 227 reproduces the paper-scale GOTURN
     * workload; tests default to a small crop for CPU-feasible runs.
     */
    int cropSize = 63;
    double width = 0.25;       ///< channel-width multiplier.
    double searchScale = 2.0;  ///< search region / target size ratio.
    std::uint64_t seed = 1;

    /**
     * NN kernel threads for the forward passes (the `nn.threads`
     * knob). 1 = exact pre-parallel serial behavior; <= 0 = hardware
     * concurrency. Results are bitwise-identical for any value.
     */
    int threads = 1;

    /**
     * Numeric mode of the DNN branches (the `nn.precision` knob).
     * Int8 calibrates both networks over seeded crops at construction
     * and swaps conv/FC layers for their quantized twins
     * (nn/quant.hh); the NCC refinement is unchanged.
     */
    nn::Precision precision = nn::Precision::Fp32;

    /**
     * Run the graph-lowering pass on both networks at build (the
     * `nn.fuse` knob): conv/FC + activation pairs fuse and unfold-free
     * convolutions run direct (nn/fusion.hh). Bitwise-identical to
     * the unfused reference path.
     */
    bool fuse = true;

    /**
     * Plan both networks into static arenas at build (the `nn.arena`
     * knob): the per-frame DNN forward performs zero tensor
     * allocations in steady state (nn/planner.hh). Bitwise-identical
     * to the allocating path.
     */
    bool arena = true;
};

/**
 * GOTURN-style tracker. One instance tracks one object at a time but
 * is reusable via init() -- the tracker pool keeps warm instances and
 * re-initializes them per target (Section 3.1.2).
 */
class GoturnTracker
{
  public:
    explicit GoturnTracker(const TrackerParams& params = {});

    /** Begin tracking the object inside box on the given frame. */
    void init(const Image& frame, const BBox& box);

    /** True if init() has been called since construction/release. */
    bool active() const { return active_; }

    /** Stop tracking (returns the instance to the idle pool). */
    void release() { active_ = false; }

    /**
     * Track into the next frame; returns the new box estimate and
     * updates internal state.
     */
    BBox track(const Image& frame, TrackTimings* timings = nullptr);

    /** Latest box estimate. */
    const BBox& box() const { return box_; }

    const TrackerParams& params() const { return params_; }

    /**
     * The paper-scale TRA workload (227 crops, full width, two conv
     * branches + FC head) for the accelerator models.
     */
    static nn::NetworkProfile fullScaleProfile();

  private:
    TrackerParams params_;
    nn::Network convBranch_;
    nn::Network fcHead_;
    bool active_ = false;
    BBox box_;
    Image targetCrop_;  ///< previous-frame target appearance.
    nn::Tensor input_;  ///< reused branch input (planned path).
    nn::Tensor tfeat_;  ///< target features copied out of the arena.
    nn::Tensor both_;   ///< reused FC-head input concat.
};

/**
 * Normalized cross-correlation of a template against a search image at
 * integer offsets; returns the best top-left offset. Exposed for unit
 * tests.
 */
void nccBestOffset(const Image& search, const Image& tmpl, int& bestX,
                   int& bestY, double& bestScore);

} // namespace ad::track

#endif // AD_TRACK_GOTURN_HH
