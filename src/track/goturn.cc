#include "track/goturn.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/time.hh"
#include "nn/fusion.hh"
#include "nn/quant.hh"

namespace ad::track {

namespace {

nn::Network
makeConvBranch(const TrackerParams& p, Rng& rng)
{
    nn::Network net =
        nn::buildNetwork(nn::trackerConvSpec(p.cropSize, p.width));
    nn::initTrackerWeights(net, rng);
    return net;
}

nn::Network
makeFcHead(const TrackerParams& p, Rng& rng)
{
    const nn::ModelSpec conv = nn::trackerConvSpec(p.cropSize, p.width);
    nn::Shape out = conv.input;
    nn::Network branch = nn::buildNetwork(conv);
    out = branch.outputShape(conv.input);
    nn::Network net = nn::buildNetwork(
        nn::trackerFcSpec(static_cast<int>(out.elements()), p.width));
    nn::initTrackerWeights(net, rng);
    return net;
}

} // namespace

GoturnTracker::GoturnTracker(const TrackerParams& params)
    : params_(params),
      convBranch_([&] {
          Rng rng(params.seed);
          return makeConvBranch(params, rng);
      }()),
      fcHead_([&] {
          Rng rng(params.seed + 1);
          return makeFcHead(params, rng);
      }())
{
    if (params.precision == nn::Precision::Int8) {
        // Calibrate over seeded uniform [0, 1] crops (the normalized
        // range of real crops). The conv branch quantizes first so the
        // FC head calibrates on the feature maps it will actually see:
        // the channel-concat of two quantized branch outputs.
        Rng calRng(params.seed ^ 0xAD0C0DE5ULL);
        std::vector<nn::Tensor> crops;
        for (int s = 0; s < 2; ++s) {
            nn::Tensor t(1, params.cropSize, params.cropSize);
            float* data = t.data();
            for (std::size_t i = 0; i < t.size(); ++i)
                data[i] = static_cast<float>(calRng.uniform());
            crops.push_back(std::move(t));
        }
        nn::quantizeNetwork(convBranch_, crops);
        const nn::Tensor feat0 = convBranch_.forward(crops[0]);
        const nn::Tensor feat1 = convBranch_.forward(crops[1]);
        std::vector<nn::Tensor> fcInputs;
        fcInputs.push_back(nn::Tensor::concatChannels(feat0, feat1));
        fcInputs.push_back(nn::Tensor::concatChannels(feat1, feat0));
        nn::quantizeNetwork(fcHead_, fcInputs);
    }
    // Lowering order contract (nn/fusion.hh): quantize first, then
    // fuse/direct-mark, then plan arenas over the lowered graphs.
    const nn::Shape cropShape{1, params.cropSize, params.cropSize};
    const nn::Shape featShape = convBranch_.outputShape(cropShape);
    const nn::Shape fcShape{2 * featShape.c, featShape.h, featShape.w};
    if (params.fuse) {
        nn::lowerNetwork(convBranch_, cropShape);
        nn::lowerNetwork(fcHead_, fcShape);
    }
    if (params.arena) {
        convBranch_.plan(cropShape);
        fcHead_.plan(fcShape);
    }
}

void
GoturnTracker::init(const Image& frame, const BBox& box)
{
    box_ = box.clipped(frame.width(), frame.height());
    if (box_.empty())
        box_ = box;
    targetCrop_ = frame.cropResized(box_, params_.cropSize,
                                    params_.cropSize);
    active_ = true;
}

BBox
GoturnTracker::track(const Image& frame, TrackTimings* timings)
{
    if (!active_)
        panic("GoturnTracker::track called while inactive");

    Stopwatch total;
    double dnnMs = 0;
    double otherMs = 0;

    // --- Crop target and search region. ---
    BBox searchRegion;
    Image searchCrop;
    {
        ScopedTimer timer(otherMs);
        searchRegion = BBox::fromCenter(
            box_.cx(), box_.cy(), box_.w * params_.searchScale,
            box_.h * params_.searchScale);
        searchCrop = frame.cropResized(searchRegion, params_.cropSize,
                                       params_.cropSize);
    }

    // --- The representative DNN workload: both conv branches plus the
    // FC regression stack. ---
    {
        ScopedTimer timer(dnnMs);
        const nn::KernelContext ctx = nn::kernelContext(params_.threads);
        if (convBranch_.planned() && fcHead_.planned()) {
            // Arena path. The branch arena is reused by the second
            // forward, so the target features are copied into a member
            // first (capacity reuse keeps steady-state frames
            // allocation-free).
            input_.assignFromImage(targetCrop_);
            tfeat_ = convBranch_.forwardArena(input_, ctx);
            input_.assignFromImage(searchCrop);
            const nn::Tensor& searchFeat =
                convBranch_.forwardArena(input_, ctx);
            both_.assignConcat(tfeat_, searchFeat);
            (void)fcHead_.forwardArena(both_, ctx);
        } else {
            const nn::Tensor targetFeat = convBranch_.forward(
                nn::Tensor::fromImage(targetCrop_), ctx);
            const nn::Tensor searchFeat = convBranch_.forward(
                nn::Tensor::fromImage(searchCrop), ctx);
            const nn::Tensor both =
                nn::Tensor::concatChannels(targetFeat, searchFeat);
            (void)fcHead_.forward(both, ctx);
        }
    }

    // --- NCC refinement: locate the target appearance inside the
    // search crop. ---
    BBox newBox = box_;
    {
        ScopedTimer timer(otherMs);
        const int tmplSize = std::max(
            8, static_cast<int>(params_.cropSize / params_.searchScale));
        const Image tmpl =
            targetCrop_.resized(tmplSize, tmplSize);
        int bestX, bestY;
        double score;
        nccBestOffset(searchCrop, tmpl, bestX, bestY, score);
        // Map the template center back to image coordinates.
        const double cx = searchRegion.x +
            (bestX + tmplSize / 2.0) / params_.cropSize * searchRegion.w;
        const double cy = searchRegion.y +
            (bestY + tmplSize / 2.0) / params_.cropSize * searchRegion.h;
        newBox = BBox::fromCenter(cx, cy, box_.w, box_.h);
    }

    // Update state for the next frame.
    box_ = newBox;
    targetCrop_ = frame.cropResized(box_, params_.cropSize,
                                    params_.cropSize);

    if (timings) {
        timings->dnnMs += dnnMs;
        timings->otherMs += otherMs;
        timings->totalMs += total.elapsedMs();
    }
    return box_;
}

nn::NetworkProfile
GoturnTracker::fullScaleProfile()
{
    return nn::trackerProfile(227, 1.0);
}

namespace {

/** NCC score of the template at one offset. */
double
nccAt(const Image& search, const Image& tmpl, double tMean, double tVar,
      int ox, int oy)
{
    const int tw = tmpl.width();
    const int th = tmpl.height();
    double sSum = 0;
    for (int y = 0; y < th; ++y)
        for (int x = 0; x < tw; ++x)
            sSum += search.at(ox + x, oy + y);
    const double sMean = sSum / (tw * th);
    double cross = 0;
    double sVar = 0;
    for (int y = 0; y < th; ++y) {
        for (int x = 0; x < tw; ++x) {
            const double sd = search.at(ox + x, oy + y) - sMean;
            const double td = tmpl.at(x, y) - tMean;
            cross += sd * td;
            sVar += sd * sd;
        }
    }
    if (sVar < 1e-9)
        sVar = 1e-9;
    return cross / std::sqrt(sVar * tVar);
}

} // namespace

void
nccBestOffset(const Image& search, const Image& tmpl, int& bestX,
              int& bestY, double& bestScore)
{
    bestX = 0;
    bestY = 0;
    bestScore = -2.0;
    const int tw = tmpl.width();
    const int th = tmpl.height();

    // Template statistics.
    double tMean = tmpl.meanIntensity();
    double tVar = 0;
    for (int y = 0; y < th; ++y)
        for (int x = 0; x < tw; ++x) {
            const double d = tmpl.at(x, y) - tMean;
            tVar += d * d;
        }
    if (tVar < 1e-9)
        tVar = 1e-9;

    // Exhaustive stride-1 scan. NCC peaks on textured targets can be
    // a single pixel wide, so grid/pyramid shortcuts trade robustness
    // for little: at tracker crop sizes the full scan is ~1M MACs,
    // a thin "Others" slice of TRA next to the DNN (Figure 7).
    for (int oy = 0; oy + th <= search.height(); ++oy) {
        for (int ox = 0; ox + tw <= search.width(); ++ox) {
            const double ncc = nccAt(search, tmpl, tMean, tVar, ox, oy);
            if (ncc > bestScore) {
                bestScore = ncc;
                bestX = ox;
                bestY = oy;
            }
        }
    }
}

} // namespace ad::track
