#include "track/pool.hh"

#include <algorithm>

#include "common/time.hh"
#include "obs/trace.hh"

namespace ad::track {

TrackerPool::TrackerPool(const PoolParams& params) : params_(params)
{
    // Launch the pool up front: construction builds each tracker's
    // networks so no tracking request ever pays initialization cost
    // (Section 3.1.2).
    pool_.reserve(params_.poolSize);
    for (int i = 0; i < params_.poolSize; ++i) {
        TrackerParams tp = params_.tracker;
        tp.seed = params_.tracker.seed + i;
        pool_.push_back(std::make_unique<GoturnTracker>(tp));
    }
}

int
TrackerPool::claimTracker()
{
    for (std::size_t i = 0; i < pool_.size(); ++i)
        if (!pool_[i]->active())
            return static_cast<int>(i);
    return -1;
}

int
TrackerPool::idleTrackers() const
{
    int idle = 0;
    for (const auto& t : pool_)
        idle += !t->active();
    return idle;
}

void
TrackerPool::update(const Image& frame,
                    const std::vector<detect::Detection>& detections,
                    PoolTimings* timings)
{
    Stopwatch total;
    double associateMs = 0;
    TrackTimings trackerTimings;
    int trackerRuns = 0;

    // --- Greedy IoU association: best pairs first. ---
    std::vector<int> trackOfDet(detections.size(), -1);
    std::vector<bool> trackMatched(tracks_.size(), false);
    {
        obs::TraceSpan span(obs::tracer(), "tra.associate", "tra");
        ScopedTimer timer(associateMs);
        struct Pair
        {
            double iou;
            std::size_t det;
            std::size_t track;
        };
        std::vector<Pair> pairs;
        for (std::size_t d = 0; d < detections.size(); ++d)
            for (std::size_t t = 0; t < tracks_.size(); ++t) {
                const double iou =
                    detections[d].box.iou(tracks_[t].box);
                if (iou >= params_.associationIou)
                    pairs.push_back({iou, d, t});
            }
        std::sort(pairs.begin(), pairs.end(),
                  [](const Pair& a, const Pair& b) {
                      return a.iou > b.iou;
                  });
        std::vector<bool> detMatched(detections.size(), false);
        for (const auto& p : pairs) {
            if (detMatched[p.det] || trackMatched[p.track])
                continue;
            detMatched[p.det] = true;
            trackMatched[p.track] = true;
            trackOfDet[p.det] = static_cast<int>(p.track);
        }
    }

    // --- Paper-faithful workload: one tracker run per live object.
    // Matched tracks will adopt their detection box right after. ---
    if (params_.alwaysRunTracker) {
        obs::TraceSpan span(obs::tracer(), "tra.track_all", "tra");
        for (auto& track : tracks_) {
            const BBox old = track.box;
            track.box = pool_[track.trackerIndex]->track(frame,
                                                         &trackerTimings);
            track.velocityPx = {track.box.cx() - old.cx(),
                                track.box.cy() - old.cy()};
            ++trackerRuns;
        }
    }

    // --- Matched tracks: adopt the detection box, refresh tracker. ---
    for (std::size_t d = 0; d < detections.size(); ++d) {
        const int t = trackOfDet[d];
        if (t < 0)
            continue;
        TrackedObject& track = tracks_[t];
        const BBox old = track.box;
        track.velocityPx = {detections[d].box.cx() - old.cx(),
                            detections[d].box.cy() - old.cy()};
        track.box = detections[d].box;
        track.cls = detections[d].cls;
        track.confidence = detections[d].confidence;
        track.consecutiveMisses = 0;
        pool_[track.trackerIndex]->init(frame, track.box);
    }

    // --- Unmatched tracks: coast on the GOTURN prediction. ---
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
        TrackedObject& track = tracks_[t];
        ++track.age;
        if (trackMatched[t])
            continue;
        ++track.consecutiveMisses;
        if (params_.alwaysRunTracker)
            continue; // box already advanced above
        const BBox old = track.box;
        track.box = pool_[track.trackerIndex]->track(frame,
                                                     &trackerTimings);
        ++trackerRuns;
        track.velocityPx = {track.box.cx() - old.cx(),
                            track.box.cy() - old.cy()};
    }

    // --- Evict stale tracks (ten consecutive misses). ---
    for (auto it = tracks_.begin(); it != tracks_.end();) {
        if (it->consecutiveMisses >= params_.evictAfterMisses) {
            pool_[it->trackerIndex]->release();
            it = tracks_.erase(it);
        } else {
            ++it;
        }
    }

    // --- Unmatched detections: new tracks from the idle pool. ---
    for (std::size_t d = 0; d < detections.size(); ++d) {
        if (trackOfDet[d] >= 0)
            continue;
        const int slot = claimTracker();
        if (slot < 0)
            break; // pool exhausted; detection goes untracked
        TrackedObject track;
        track.id = nextTrackId_++;
        track.cls = detections[d].cls;
        track.box = detections[d].box;
        track.confidence = detections[d].confidence;
        track.trackerIndex = slot;
        pool_[slot]->init(frame, track.box);
        tracks_.push_back(track);
    }

    if (timings) {
        timings->tracker.dnnMs += trackerTimings.dnnMs;
        timings->tracker.otherMs += trackerTimings.otherMs;
        timings->tracker.totalMs += trackerTimings.totalMs;
        timings->associateMs += associateMs;
        timings->totalMs += total.elapsedMs();
        timings->trackerRuns += trackerRuns;
    }
}

void
TrackerPool::coast(const Image& frame, PoolTimings* timings)
{
    Stopwatch total;
    TrackTimings trackerTimings;
    int trackerRuns = 0;
    {
        obs::TraceSpan span(obs::tracer(), "tra.coast", "tra");
        for (auto& track : tracks_) {
            const BBox old = track.box;
            track.box =
                pool_[track.trackerIndex]->track(frame,
                                                 &trackerTimings);
            track.velocityPx = {track.box.cx() - old.cx(),
                                track.box.cy() - old.cy()};
            ++track.age;
            ++trackerRuns;
        }
    }
    if (timings) {
        timings->tracker.dnnMs += trackerTimings.dnnMs;
        timings->tracker.otherMs += trackerTimings.otherMs;
        timings->tracker.totalMs += trackerTimings.totalMs;
        timings->totalMs += total.elapsedMs();
        timings->trackerRuns += trackerRuns;
    }
}

void
TrackerPool::coastBlind(PoolTimings* timings)
{
    Stopwatch total;
    {
        obs::TraceSpan span(obs::tracer(), "tra.coast_blind", "tra");
        for (auto& track : tracks_) {
            track.box.x += track.velocityPx.x;
            track.box.y += track.velocityPx.y;
            ++track.age;
        }
    }
    if (timings)
        timings->totalMs += total.elapsedMs();
}

} // namespace ad::track
