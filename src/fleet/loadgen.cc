#include "fleet/loadgen.hh"

#include <algorithm>
#include <cmath>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace ad::fleet {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Per-stream RNG seed: streams draw independently of each other
    and of the shard partition, so the tape is partition-invariant. */
std::uint64_t
streamSeed(std::uint64_t seed, int stream)
{
    return seed + 0x9e3779b97f4a7c15ull *
                      (static_cast<std::uint64_t>(stream) + 1);
}

} // namespace

LoadGenParams
LoadGenParams::fromConfig(const Config& cfg)
{
    LoadGenParams p;
    p.streams = cfg.getInt("fleet.loadgen.streams", p.streams);
    p.periodMs = cfg.getDouble("fleet.loadgen.period-ms", p.periodMs);
    p.horizonMs =
        cfg.getDouble("fleet.loadgen.horizon-ms", p.horizonMs);
    p.framesPerStream = cfg.getInt("fleet.loadgen.frames",
                                   static_cast<int>(p.framesPerStream));
    p.stagger = cfg.getBool("fleet.loadgen.stagger", p.stagger);
    p.burstP = cfg.getDouble("fleet.loadgen.burst-p", p.burstP);
    p.burstLen = cfg.getInt("fleet.loadgen.burst-len", p.burstLen);
    p.burstPeriodMs = cfg.getDouble("fleet.loadgen.burst-period-ms",
                                    p.burstPeriodMs);
    p.rampAmplitude = cfg.getDouble("fleet.loadgen.ramp-amplitude",
                                    p.rampAmplitude);
    p.rampPeriodMs =
        cfg.getDouble("fleet.loadgen.ramp-period-ms", p.rampPeriodMs);
    p.stragglerFraction = cfg.getDouble(
        "fleet.loadgen.straggler-fraction", p.stragglerFraction);
    p.stallP = cfg.getDouble("fleet.loadgen.stall-p", p.stallP);
    p.stallMs = cfg.getDouble("fleet.loadgen.stall-ms", p.stallMs);
    p.hotModulus =
        cfg.getInt("fleet.loadgen.hot-modulus", p.hotModulus);
    p.hotResidue =
        cfg.getInt("fleet.loadgen.hot-residue", p.hotResidue);
    p.hotFactor =
        cfg.getDouble("fleet.loadgen.hot-factor", p.hotFactor);
    p.hotStartMs =
        cfg.getDouble("fleet.loadgen.hot-start-ms", p.hotStartMs);
    p.hotEndMs = cfg.getDouble("fleet.loadgen.hot-end-ms", p.hotEndMs);
    p.criticalityClasses = cfg.getInt(
        "fleet.loadgen.criticality-classes", p.criticalityClasses);
    p.speedMinMps = cfg.getDouble("fleet.loadgen.speed-min-mps",
                                  p.speedMinMps);
    p.speedMaxMps = cfg.getDouble("fleet.loadgen.speed-max-mps",
                                  p.speedMaxMps);
    p.seed = static_cast<std::uint64_t>(
        cfg.getInt("fleet.loadgen.seed", static_cast<int>(p.seed)));
    return p;
}

std::vector<std::string>
LoadGenParams::knownConfigKeys()
{
    return {"fleet.loadgen.streams",
            "fleet.loadgen.period-ms",
            "fleet.loadgen.horizon-ms",
            "fleet.loadgen.frames",
            "fleet.loadgen.stagger",
            "fleet.loadgen.burst-p",
            "fleet.loadgen.burst-len",
            "fleet.loadgen.burst-period-ms",
            "fleet.loadgen.ramp-amplitude",
            "fleet.loadgen.ramp-period-ms",
            "fleet.loadgen.straggler-fraction",
            "fleet.loadgen.stall-p",
            "fleet.loadgen.stall-ms",
            "fleet.loadgen.hot-modulus",
            "fleet.loadgen.hot-residue",
            "fleet.loadgen.hot-factor",
            "fleet.loadgen.hot-start-ms",
            "fleet.loadgen.hot-end-ms",
            "fleet.loadgen.criticality-classes",
            "fleet.loadgen.speed-min-mps",
            "fleet.loadgen.speed-max-mps",
            "fleet.loadgen.seed"};
}

ScenarioLoadGen::ScenarioLoadGen(const LoadGenParams& params)
    : params_(params)
{
    if (params.streams < 1)
        fatal("ScenarioLoadGen: need at least one stream");
    if (params.periodMs <= 0.0 || params.burstPeriodMs <= 0.0)
        fatal("ScenarioLoadGen: period must be positive");
    if (params.framesPerStream <= 0 && params.horizonMs <= 0.0)
        fatal("ScenarioLoadGen: need frames or a positive horizon");
    if (params.rampAmplitude < 0.0 || params.rampAmplitude >= 1.0)
        fatal("ScenarioLoadGen: ramp amplitude must be in [0, 1)");
    if (params.burstLen < 0 || params.criticalityClasses < 1)
        fatal("ScenarioLoadGen: invalid burst/criticality knobs");
    if (params.hotModulus != 0 &&
        (params.hotModulus < 1 || params.hotFactor < 1.0 ||
         params.hotResidue < 0 ||
         params.hotResidue >= params.hotModulus))
        fatal("ScenarioLoadGen: invalid hot-block knobs");
    if (params.speedMinMps <= 0.0 || params.speedMaxMps <= 0.0)
        fatal("ScenarioLoadGen: speeds must be positive");

    const bool bounded = params.framesPerStream > 0;
    criticality_.resize(static_cast<std::size_t>(params.streams));
    frames_.resize(static_cast<std::size_t>(params.streams));

    for (int i = 0; i < params.streams; ++i) {
        // Criticality comes from its own RNG so adding a scenario
        // ingredient never reshuffles which vehicles are critical.
        Rng critRng(streamSeed(params.seed ^ 0xc1a55e5c1a55e5ull, i));
        criticality_[static_cast<std::size_t>(i)] =
            critRng.uniformInt(0, params.criticalityClasses - 1);

        Rng rng(streamSeed(params.seed, i));
        const bool straggler =
            params.stragglerFraction > 0.0 &&
            rng.uniform() < params.stragglerFraction;
        const bool hot =
            params.hotModulus > 0 &&
            i % params.hotModulus == params.hotResidue;

        double t = phaseMs(i);
        std::int64_t seq = 0;
        const auto emit = [&](double at) {
            schedule_.push_back(ArrivalEvent{at, i, seq++});
        };
        while (bounded ? seq < params.framesPerStream
                       : t < params.horizonMs) {
            emit(t);
            if (params.burstP > 0.0 && rng.bernoulli(params.burstP)) {
                double bt = t;
                for (int b = 0; b < params.burstLen; ++b) {
                    bt += params.burstPeriodMs;
                    if (bounded ? seq >= params.framesPerStream
                                : bt >= params.horizonMs)
                        break;
                    emit(bt);
                }
            }
            // Rate modulation scales the gap to the next base frame;
            // with everything off this is the serving layer's exact
            // repeated-addition arithmetic (t += periodMs).
            double period = params.periodMs;
            if (params.rampAmplitude > 0.0)
                period /= 1.0 + params.rampAmplitude *
                                    std::sin(kTwoPi * t /
                                             params.rampPeriodMs);
            if (hot && t >= params.hotStartMs && t < params.hotEndMs)
                period /= params.hotFactor;
            t += period;
            if (straggler && params.stallP > 0.0 &&
                rng.bernoulli(params.stallP))
                t += params.stallMs;
        }
        frames_[static_cast<std::size_t>(i)] = seq;
    }

    std::sort(schedule_.begin(), schedule_.end(),
              [](const ArrivalEvent& a, const ArrivalEvent& b) {
                  if (a.tMs != b.tMs)
                      return a.tMs < b.tMs;
                  if (a.stream != b.stream)
                      return a.stream < b.stream;
                  return a.seq < b.seq;
              });
}

double
ScenarioLoadGen::phaseMs(int stream) const
{
    return params_.stagger
               ? params_.periodMs * stream / params_.streams
               : 0.0;
}

double
ScenarioLoadGen::speedMps(int stream) const
{
    // Its own RNG stream (like criticality) so speed assignments
    // survive any change to the arrival-tape ingredients.
    Rng rng(streamSeed(params_.seed ^ 0x5feedfeed5ull, stream));
    return rng.uniform(std::min(params_.speedMinMps,
                                params_.speedMaxMps),
                       std::max(params_.speedMinMps,
                                params_.speedMaxMps));
}

} // namespace ad::fleet
