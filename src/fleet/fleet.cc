#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/config.hh"
#include "common/logging.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"

namespace ad::fleet {

// ----------------------------------------------------------------- params

RebalanceParams
RebalanceParams::fromConfig(const Config& cfg)
{
    RebalanceParams p;
    p.enabled = cfg.getBool("fleet.rebalance.enabled", p.enabled);
    p.periodMs =
        cfg.getDouble("fleet.rebalance.period-ms", p.periodMs);
    p.divergence =
        cfg.getDouble("fleet.rebalance.divergence", p.divergence);
    p.minBurn = cfg.getDouble("fleet.rebalance.min-burn", p.minBurn);
    p.maxMovesPerEpoch =
        cfg.getInt("fleet.rebalance.max-moves", p.maxMovesPerEpoch);
    p.shedPressure = cfg.getDouble("fleet.rebalance.shed-pressure",
                                   p.shedPressure);
    p.maxEscalationsPerEpoch = cfg.getInt(
        "fleet.rebalance.max-escalations", p.maxEscalationsPerEpoch);
    return p;
}

std::vector<std::string>
RebalanceParams::knownConfigKeys()
{
    return {"fleet.rebalance.enabled",
            "fleet.rebalance.period-ms",
            "fleet.rebalance.divergence",
            "fleet.rebalance.min-burn",
            "fleet.rebalance.max-moves",
            "fleet.rebalance.shed-pressure",
            "fleet.rebalance.max-escalations"};
}

FleetParams
FleetParams::fromConfig(const Config& cfg)
{
    FleetParams p;
    p.shards = cfg.getInt("serve.shards", p.shards);
    p.maxStreamsPerShard =
        cfg.getInt("fleet.admit.max-streams-per-shard",
                   p.maxStreamsPerShard);
    p.parallel = cfg.getBool("fleet.parallel", p.parallel);
    p.rebalance = RebalanceParams::fromConfig(cfg);
    return p;
}

std::vector<std::string>
FleetParams::knownConfigKeys()
{
    return {"serve.shards", "fleet.admit.max-streams-per-shard",
            "fleet.parallel"};
}

// --------------------------------------------------------------- registry

FleetRegistry::FleetRegistry(int streams, int shards)
    : shards_(shards)
{
    if (streams < 1 || shards < 1)
        fatal("FleetRegistry: need >= 1 stream and >= 1 shard");
    locs_.resize(static_cast<std::size_t>(streams));
}

void
FleetRegistry::place(int stream, int shard, int slot)
{
    if (stream < 0 ||
        static_cast<std::size_t>(stream) >= locs_.size() ||
        shard < 0 || shard >= shards_ || slot < 0)
        fatal("FleetRegistry: invalid placement");
    locs_[static_cast<std::size_t>(stream)] = Loc{shard, slot};
}

std::vector<int>
FleetRegistry::streamsOf(int shard) const
{
    std::vector<int> out;
    for (std::size_t g = 0; g < locs_.size(); ++g)
        if (locs_[g].shard == shard)
            out.push_back(static_cast<int>(g));
    return out;
}

// ------------------------------------------------------------ coordinator

FleetCoordinator::FleetCoordinator(const FleetParams& params,
                                   const ScenarioLoadGen& load)
    : rebalance_(params.rebalance)
{
    const int n = load.params().streams;
    admitted_.assign(static_cast<std::size_t>(n), true);
    streamsAdmitted_ = n;
    if (params.maxStreamsPerShard <= 0)
        return;
    const int cap = params.maxStreamsPerShard * params.shards;
    if (cap >= n)
        return;
    // Global admission rejects fleet-wide lowest-criticality streams
    // first (ties: the highest id loses), independent of which shard
    // they would have landed on.
    std::vector<int> ids(static_cast<std::size_t>(n));
    std::iota(ids.begin(), ids.end(), 0);
    std::sort(ids.begin(), ids.end(), [&load](int a, int b) {
        const int ca = load.criticality(a);
        const int cb = load.criticality(b);
        if (ca != cb)
            return ca < cb;
        return a > b;
    });
    for (int i = 0; i < n - cap; ++i)
        admitted_[static_cast<std::size_t>(ids[static_cast<
            std::size_t>(i)])] = false;
    streamsAdmitted_ = cap;
}

std::vector<FleetCoordinator::Candidate>
FleetCoordinator::pickVictims(std::vector<Candidate> candidates) const
{
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.criticality != b.criticality)
                      return a.criticality < b.criticality;
                  if (a.slackMs != b.slackMs)
                      return a.slackMs > b.slackMs;
                  return a.stream < b.stream;
              });
    const auto cap = static_cast<std::size_t>(
        std::max(0, rebalance_.maxEscalationsPerEpoch));
    if (candidates.size() > cap)
        candidates.resize(cap);
    return candidates;
}

// ----------------------------------------------------------------- report

std::string
FleetReport::migrationLogString() const
{
    std::ostringstream os;
    os << std::setprecision(17);
    for (const auto& m : migrationLog)
        os << "epoch=" << m.epoch << " t=" << m.tMs
           << " stream=" << m.stream << " " << m.fromShard << "->"
           << m.toShard << " burn=" << m.burnFrom << "/" << m.burnTo
           << "\n";
    return os.str();
}

std::string
FleetReport::summaryString() const
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << "shards=" << shards << " streams=" << streamsAdmitted << "/"
       << streamsRequested << " arrived=" << framesArrived
       << " admitted=" << framesAdmitted << " degraded="
       << framesDegraded << " coasted=" << framesCoasted
       << " shed=" << framesShed << " misses=" << deadlineMisses
       << " p50=" << admittedLatency.p50
       << " p99=" << admittedLatency.p99
       << " p9999=" << admittedLatency.p9999
       << " goodput=" << goodputFps << " total=" << totalGoodputFps
       << " duration=" << durationMs << " epochs=" << epochs
       << " migrations=" << migrations
       << " escalations=" << fleetEscalations << "\n";
    for (const auto& r : shardRows)
        os << "shard=" << r.shard << " final=" << r.streamsFinal
           << " injected=" << r.arrivalsInjected
           << " completions=" << r.completions << " sheds=" << r.sheds
           << " batches=" << r.batches
           << " p9999=" << r.admittedLatency.p9999
           << " goodput=" << r.goodputFps << " burn=" << r.burnRate
           << " in=" << r.migrationsIn << " out=" << r.migrationsOut
           << "\n";
    return os.str();
}

std::string
FleetReport::toString() const
{
    std::ostringstream os;
    os << "fleet: " << shards << " shards, " << streamsAdmitted << "/"
       << streamsRequested << " streams admitted, " << framesArrived
       << " frames arrived\n";
    os << "  " << framesAdmitted << " engine-served ("
       << framesDegraded << " degraded), " << framesCoasted
       << " coasted, " << framesShed << " shed ("
       << 100.0 * shedRate << "%), " << deadlineMisses
       << " deadline misses\n";
    os << "  admitted latency: " << admittedLatency.toString()
       << "\n";
    os << "  goodput " << goodputFps << " fps (total "
       << totalGoodputFps << " fps) over " << durationMs << " ms, "
       << epochs << " epochs\n";
    os << "  " << migrations << " migrations, " << fleetEscalations
       << " fleet escalations\n";
    for (const auto& r : shardRows)
        os << "  shard " << r.shard << ": " << r.streamsFinal
           << " streams (" << r.migrationsIn << " in, "
           << r.migrationsOut << " out), " << r.arrivalsInjected
           << " arrivals, p99.99 " << r.admittedLatency.p9999
           << " ms, goodput " << r.goodputFps << " fps, burn "
           << r.burnRate << "\n";
    return os.str();
}

// ------------------------------------------------------------------ shard

/**
 * One engine replica: its server, its (possibly owned) engine, the
 * shard-level SLO accountant fed by the server's observer hooks,
 * and event-time counters for per-shard conservation checks.
 */
struct ShardedServer::Shard final : serve::ServeObserver
{
    Shard(const serve::SloParams& sloParams, double budgetMs)
        : slo(sloParams, budgetMs), budgetMs(budgetMs)
    {
    }

    void
    onCompletion(const serve::StreamState& s, double latencyMs,
                 bool engineServed) override
    {
        ++completions;
        slo.observe(latencyMs,
                    engineServed && latencyMs <= s.params.deadlineMs);
    }

    void
    onShed(const serve::StreamState&, double, const char*) override
    {
        ++sheds;
        // A shed frame burns the shard's SLO budget exactly like a
        // miss: the vehicle got nothing inside its deadline. The
        // shard SLO's percentiles are not latencies of anything
        // real; only its burn rate is read (by the rebalancer).
        slo.observe(2.0 * budgetMs, false);
    }

    std::unique_ptr<serve::ModeledBatchEngine> ownedEngine;
    serve::BatchEngine* engine = nullptr;
    std::unique_ptr<serve::MultiStreamServer> server;
    serve::StreamSlo slo;
    double budgetMs;
    std::int64_t completions = 0;
    std::int64_t sheds = 0;
    std::int64_t injected = 0;
    std::int64_t migrationsIn = 0;
    std::int64_t migrationsOut = 0;
};

// ----------------------------------------------------------------- server

ShardedServer::ShardedServer(const FleetParams& params,
                             const ScenarioLoadGen& load)
    : ShardedServer(params, load, {})
{
}

ShardedServer::ShardedServer(const FleetParams& params,
                             const ScenarioLoadGen& load,
                             std::vector<serve::BatchEngine*> engines)
    : params_(params), load_(load),
      registry_(load.params().streams, params.shards),
      coordinator_(params, load)
{
    if (params.shards < 1)
        fatal("ShardedServer: need at least one shard");
    if (!engines.empty() &&
        engines.size() != static_cast<std::size_t>(params.shards))
        fatal("ShardedServer: need one engine per shard");

    for (int k = 0; k < params.shards; ++k) {
        auto shard = std::make_unique<Shard>(
            params.serve.slo, params.serve.stream.deadlineMs);
        if (engines.empty()) {
            serve::ModeledEngineParams ep = params.engine;
            ep.seed = params.engine.seed +
                      static_cast<std::uint64_t>(k);
            shard->ownedEngine =
                std::make_unique<serve::ModeledBatchEngine>(ep);
            shard->engine = shard->ownedEngine.get();
        } else {
            shard->engine = engines[static_cast<std::size_t>(k)];
        }
        serve::ServeParams sp = params.serve;
        sp.seed = params.serve.seed + static_cast<std::uint64_t>(k);
        sp.metricPrefix =
            params.serve.metricPrefix + ".shard" + std::to_string(k);
        // Which stream loses quality first is a fleet decision on a
        // multi-shard fleet (see arbitrate()); a single shard *is*
        // the fleet, so the per-server pressure policy stands and a
        // 1-shard run reproduces MultiStreamServer exactly.
        sp.admission.pressureEnabled = params.shards == 1;
        shard->server = std::make_unique<serve::MultiStreamServer>(
            sp, *shard->engine,
            serve::MultiStreamServer::ShardTag{}, k);
        shard->server->setObserver(shard.get());
        shards_.push_back(std::move(shard));
    }
    registerStreams();
}

ShardedServer::~ShardedServer() = default;

void
ShardedServer::registerStreams()
{
    const LoadGenParams& lp = load_.params();
    // One flight ring per fleet-global stream id: a vehicle's ring
    // follows it across shards (migrations land in it too).
    obs::flight().ensureStreams(lp.streams);
    const std::vector<bool>& admitted = coordinator_.admitted();
    int placed = 0;
    for (int g = 0; g < lp.streams; ++g) {
        if (!admitted[static_cast<std::size_t>(g)])
            continue;
        const int k = placed % params_.shards; // round-robin.
        serve::StreamParams sp = params_.serve.stream;
        sp.framePeriodMs = lp.periodMs;
        sp.phaseMs = load_.phaseMs(g);
        auto stream = std::make_unique<serve::StreamState>(
            g, sp, params_.serve.governor, params_.serve.slo);
        const int slot = shards_[static_cast<std::size_t>(k)]
                             ->server->importStream(std::move(stream));
        registry_.place(g, k, slot);
        ++placed;
    }
}

void
ShardedServer::stepShardsTo(double untilMs)
{
    if (params_.parallel && shards_.size() > 1) {
        // Shards share no mutable state between epoch boundaries
        // (separate registries, schedulers, RNGs; flight rings are
        // internally synchronized), so stepping them on one thread
        // each is bit-identical to stepping them in sequence for
        // modeled engines — and the contention target for measured
        // ones.
        std::vector<std::thread> threads;
        threads.reserve(shards_.size());
        for (auto& shard : shards_)
            threads.emplace_back([&server = *shard->server,
                                  untilMs] {
                server.stepUntil(untilMs);
            });
        for (auto& t : threads)
            t.join();
    } else {
        for (auto& shard : shards_)
            shard->server->stepUntil(untilMs);
    }
}

void
ShardedServer::coordinate(std::int64_t epoch, double nowMs)
{
    std::vector<double> burns;
    burns.reserve(shards_.size());
    for (auto& shard : shards_) {
        shard->slo.refresh();
        burns.push_back(shard->slo.snapshot().burnRate);
    }
    if (params_.shards > 1)
        arbitrate(epoch, nowMs);
    if (params_.rebalance.enabled && params_.shards > 1)
        rebalance(epoch, nowMs, burns);
}

void
ShardedServer::arbitrate(std::int64_t epoch, double nowMs)
{
    const double budget = params_.serve.stream.deadlineMs;
    const pipeline::OperatingMode cap =
        params_.serve.admission.maxPressureMode;
    std::vector<FleetCoordinator::Candidate> candidates;
    for (int k = 0; k < params_.shards; ++k) {
        Shard& shard = *shards_[static_cast<std::size_t>(k)];
        const double pressure =
            shard.server->engineBacklogMs(nowMs) / budget;
        if (pressure <= params_.rebalance.shedPressure)
            continue;
        for (const int g : registry_.streamsOf(k)) {
            const int slot = registry_.slotOf(g);
            const serve::StreamState* s =
                shard.server->registry().find(slot);
            if (!s || s->governor.mode() >= cap)
                continue;
            candidates.push_back(FleetCoordinator::Candidate{
                g, k, slot, load_.criticality(g), s->slackMs()});
        }
    }
    for (const auto& v :
         coordinator_.pickVictims(std::move(candidates))) {
        if (shards_[static_cast<std::size_t>(v.shard)]
                ->server->escalateStream(v.slot, epoch, cap,
                                         "fleet:arbitrate"))
            ++fleetEscalations_;
    }
}

void
ShardedServer::rebalance(std::int64_t epoch, double nowMs,
                         const std::vector<double>& burns)
{
    std::vector<double> sorted = burns;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double hotThreshold =
        params_.rebalance.divergence *
        std::max(median, params_.rebalance.minBurn);

    int cold = 0;
    for (int k = 1; k < params_.shards; ++k)
        if (burns[static_cast<std::size_t>(k)] <
            burns[static_cast<std::size_t>(cold)])
            cold = k;

    int movesLeft = params_.rebalance.maxMovesPerEpoch;
    for (int h = 0; h < params_.shards && movesLeft > 0; ++h) {
        const double burn = burns[static_cast<std::size_t>(h)];
        if (h == cold || burn <= hotThreshold ||
            burn <= burns[static_cast<std::size_t>(cold)])
            continue;

        // Work-stealing steals the *most slack* streams: they are
        // quiescent most often, their demand relocates cleanly, and
        // the vehicles closest to their deadline keep their warm
        // shard. Ties resolve by id — deterministic.
        struct Cand
        {
            double slackMs;
            int stream;
        };
        std::vector<Cand> cands;
        Shard& hot = *shards_[static_cast<std::size_t>(h)];
        for (const int g : registry_.streamsOf(h)) {
            const int slot = registry_.slotOf(g);
            if (!hot.server->migratable(slot))
                continue;
            cands.push_back(Cand{
                hot.server->registry().find(slot)->slackMs(), g});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& a, const Cand& b) {
                      if (a.slackMs != b.slackMs)
                          return a.slackMs > b.slackMs;
                      return a.stream < b.stream;
                  });
        for (const Cand& c : cands) {
            if (movesLeft == 0)
                break;
            const int slot = registry_.slotOf(c.stream);
            auto stream = hot.server->exportStream(slot);
            const int newSlot =
                shards_[static_cast<std::size_t>(cold)]
                    ->server->importStream(std::move(stream));
            registry_.place(c.stream, cold, newSlot);
            ++hot.migrationsOut;
            ++shards_[static_cast<std::size_t>(cold)]->migrationsIn;
            migrationLog_.push_back(Migration{
                epoch, nowMs, c.stream, h, cold, burn,
                burns[static_cast<std::size_t>(cold)]});
            obs::flight().recordMigration(c.stream, epoch, nowMs, h,
                                          cold);
            --movesLeft;
        }
    }
}

FleetReport
ShardedServer::run()
{
    if (ran_)
        fatal("ShardedServer: run() may only be called once");
    ran_ = true;

    const std::vector<ArrivalEvent>& tape = load_.schedule();
    const double epochMs = params_.rebalance.periodMs;
    if (epochMs <= 0.0)
        fatal("ShardedServer: rebalance period must be positive");

    std::size_t next = 0;
    std::int64_t epoch = 0;
    const auto pendingWork = [&]() {
        if (next < tape.size())
            return true;
        for (const auto& shard : shards_)
            if (shard->server->nextEventMs() !=
                std::numeric_limits<double>::infinity())
                return true;
        return false;
    };

    while (pendingWork()) {
        const double boundary =
            epochMs * static_cast<double>(epoch + 1);
        while (next < tape.size() && tape[next].tMs <= boundary) {
            const ArrivalEvent& a = tape[next++];
            if (!registry_.placed(a.stream))
                continue; // rejected by global admission.
            const int k = registry_.shardOf(a.stream);
            shards_[static_cast<std::size_t>(k)]
                ->server->injectArrival(registry_.slotOf(a.stream),
                                        a.seq, a.tMs);
            ++shards_[static_cast<std::size_t>(k)]->injected;
        }
        stepShardsTo(boundary);
        if (pendingWork())
            coordinate(epoch, boundary);
        ++epoch;
    }

    // ------------------------------------------------- assemble
    FleetReport report;
    report.shards = params_.shards;
    report.streamsRequested = load_.params().streams;
    report.streamsAdmitted = coordinator_.streamsAdmitted();
    report.epochs = epoch;
    report.migrations =
        static_cast<std::int64_t>(migrationLog_.size());
    report.fleetEscalations = fleetEscalations_;
    report.migrationLog = migrationLog_;

    LatencyRecorder merged;
    std::int64_t onTimeServed = 0;
    std::int64_t onTimeCoasted = 0;
    for (auto& shard : shards_) {
        serve::ServeReport sr = shard->server->buildReport();
        report.framesArrived += sr.framesArrived;
        report.framesAdmitted += sr.framesAdmitted;
        report.framesDegraded += sr.framesDegraded;
        report.framesCoasted += sr.framesCoasted;
        report.framesShed += sr.framesShed;
        report.deadlineMisses += sr.deadlineMisses;
        merged.merge(shard->server->admittedRecorder());
        report.durationMs = std::max(report.durationMs,
                                     shard->server->lastEventMs());
        onTimeServed += shard->server->onTimeServed();
        onTimeCoasted += shard->server->onTimeCoasted();
        report.shardReports.push_back(std::move(sr));
    }
    report.admittedLatency = merged.summary();
    if (report.durationMs > 0) {
        report.goodputFps =
            1000.0 * onTimeServed / report.durationMs;
        report.totalGoodputFps = 1000.0 *
                                 (onTimeServed + onTimeCoasted) /
                                 report.durationMs;
    }
    if (report.framesArrived > 0)
        report.shedRate = static_cast<double>(report.framesShed) /
                          report.framesArrived;

    for (int k = 0; k < params_.shards; ++k) {
        Shard& shard = *shards_[static_cast<std::size_t>(k)];
        shard.slo.refresh();
        ShardSummary row;
        row.shard = k;
        row.streamsFinal =
            static_cast<int>(shard.server->registry().active());
        row.arrivalsInjected = shard.injected;
        row.completions = shard.completions;
        row.sheds = shard.sheds;
        row.batches =
            report.shardReports[static_cast<std::size_t>(k)].batches;
        row.admittedLatency =
            shard.server->admittedRecorder().summary();
        if (report.durationMs > 0)
            row.goodputFps = 1000.0 * shard.server->onTimeServed() /
                             report.durationMs;
        row.burnRate = shard.slo.snapshot().burnRate;
        row.migrationsIn = shard.migrationsIn;
        row.migrationsOut = shard.migrationsOut;
        report.shardRows.push_back(row);
    }

    report.streamSlo.resize(
        static_cast<std::size_t>(report.streamsRequested));
    for (int g = 0; g < report.streamsRequested; ++g) {
        if (!registry_.placed(g))
            continue;
        const serve::StreamState* s =
            shards_[static_cast<std::size_t>(registry_.shardOf(g))]
                ->server->registry()
                .find(registry_.slotOf(g));
        if (s) // buildReport() already refreshed every stream SLO.
            report.streamSlo[static_cast<std::size_t>(g)] =
                s->slo.snapshot();
    }

    publishMetrics(report);
    return report;
}

void
ShardedServer::publishMetrics(const FleetReport& report)
{
    if (!obs::metricsEnabled())
        return;
    obs::MetricRegistry local;
    for (const auto& row : report.shardRows) {
        const std::string id = std::to_string(row.shard);
        local.gauge(obs::labeled("fleet.shard.burn_rate", "shard", id))
            .set(row.burnRate);
        local.gauge(obs::labeled("fleet.shard.p9999_ms", "shard", id))
            .set(row.admittedLatency.p9999);
        local
            .gauge(
                obs::labeled("fleet.shard.goodput_fps", "shard", id))
            .set(row.goodputFps);
        local
            .counter(obs::labeled("fleet.shard.arrivals", "shard", id))
            .add(static_cast<std::uint64_t>(row.arrivalsInjected));
        local.counter(obs::labeled("fleet.shard.sheds", "shard", id))
            .add(static_cast<std::uint64_t>(row.sheds));
        local
            .counter(obs::labeled("fleet.shard.migrations_in",
                                  "shard", id))
            .add(static_cast<std::uint64_t>(row.migrationsIn));
        local
            .counter(obs::labeled("fleet.shard.migrations_out",
                                  "shard", id))
            .add(static_cast<std::uint64_t>(row.migrationsOut));
    }
    local.counter("fleet.migrations")
        .add(static_cast<std::uint64_t>(report.migrations));
    local.counter("fleet.escalations")
        .add(static_cast<std::uint64_t>(report.fleetEscalations));
    local.counter("fleet.streams_rejected")
        .add(static_cast<std::uint64_t>(report.streamsRequested -
                                        report.streamsAdmitted));
    local.gauge("fleet.goodput_fps").set(report.goodputFps);
    local.gauge("fleet.p9999_ms").set(report.admittedLatency.p9999);
    obs::metrics().merge(local);
}

} // namespace ad::fleet
