/**
 * @file
 * Fleet layer, part 1: the scenario-replay load generator.
 *
 * The serving layer's own arrival model is one periodic camera per
 * stream. A fleet does not look like that: demand breathes over the
 * day, sensors re-send bursts after hiccups, some vehicles straggle
 * through tunnels, and a stadium emptying puts a hot block of
 * vehicles on whichever shard owns them. ScenarioLoadGen replays
 * such a scenario deterministically: every stream's arrival
 * sequence is generated from its own seeded RNG, *independently* of
 * every other stream and of how streams are partitioned over
 * shards, so the same seed produces the same fleet-wide arrival
 * tape whether it drives 1 shard or 16 — which is what makes the
 * shard-scaling comparisons in BENCH_fleet.json apples-to-apples
 * and the rebalancer's migration log bit-reproducible.
 *
 * Scenario ingredients (all off by default, all seeded):
 *  - bursts: after a frame, with probability burstP the sensor
 *    re-sends burstLen extra frames at burstPeriodMs spacing;
 *  - diurnal ramp: the frame period is modulated by a sinusoid
 *    (rampAmplitude, rampPeriodMs) — demand breathes;
 *  - stragglers: a seeded fraction of streams occasionally stall
 *    for stallMs (tunnel, dead radio) and resume;
 *  - hot block: streams with id % hotModulus == hotResidue run at
 *    period / hotFactor inside [hotStartMs, hotEndMs) — under the
 *    fleet's round-robin partition, hotModulus = shard count aims
 *    the whole block at one shard (the hot-shard scenario the
 *    rebalancer must detect and drain).
 *
 * With every ingredient off the generator emits exactly the
 * MultiStreamServer::run arrival pattern (staggered phases, frame
 * period accumulated by repeated addition — bit-identical floating
 * point), which is what the shards=1 equivalence test leans on.
 */

#ifndef AD_FLEET_LOADGEN_HH
#define AD_FLEET_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ad {
class Config;
}

namespace ad::fleet {

/** Load-generator knobs (`fleet.loadgen.*`). */
struct LoadGenParams
{
    int streams = 64;          ///< synthetic vehicle streams.
    double periodMs = 100.0;   ///< base camera period (10 fps).
    /** Emit arrivals in [phase, horizonMs); ignored when
        framesPerStream > 0. */
    double horizonMs = 10000.0;
    /** Exactly this many frames per stream (0 = horizon-bounded).
        With every scenario ingredient off this reproduces
        MultiStreamServer::run's arrival tape bit for bit. */
    std::int64_t framesPerStream = 0;
    bool stagger = true;       ///< stream i starts at period*i/N.

    double burstP = 0.0;       ///< P(burst after a frame).
    int burstLen = 3;          ///< extra frames per burst.
    double burstPeriodMs = 20.0; ///< intra-burst frame spacing.

    double rampAmplitude = 0.0; ///< diurnal modulation depth [0,1).
    double rampPeriodMs = 10000.0; ///< modulation wavelength.

    double stragglerFraction = 0.0; ///< streams that may stall.
    double stallP = 0.01;      ///< P(stall after a frame | straggler).
    double stallMs = 500.0;    ///< stall duration.

    int hotModulus = 0;        ///< 0 = no hot block.
    int hotResidue = 0;        ///< hot streams: id mod modulus == this.
    double hotFactor = 4.0;    ///< rate multiplier inside the window.
    double hotStartMs = 0.0;   ///< hot window start (virtual ms).
    double hotEndMs = 0.0;     ///< hot window end (virtual ms).

    int criticalityClasses = 3; ///< per-stream classes 0..C-1.

    /** Per-stream ego speed band (m/s): each vehicle draws a fixed
        cruise speed in [min, max] from its own seed hash. Consumed
        by the map tier's pose-driven prefetch (the prefetch horizon
        turns speed into a lookahead distance). */
    double speedMinMps = 8.0;
    double speedMaxMps = 20.0; ///< cruise-speed band upper edge.
    std::uint64_t seed = 101;  ///< tape generation seed.

    /** Read every `fleet.loadgen.*` knob (defaults from *this). */
    static LoadGenParams fromConfig(const Config& cfg);

    /** The `fleet.loadgen.*` key registry (docs/CONFIG.md gate). */
    static std::vector<std::string> knownConfigKeys();
};

/** One synthetic camera arrival. */
struct ArrivalEvent
{
    double tMs = 0.0;     ///< arrival time (virtual ms).
    int stream = -1;      ///< fleet-global stream id.
    std::int64_t seq = -1; ///< per-stream frame sequence number.
};

/**
 * Deterministic scenario tape: construction generates every
 * stream's arrival sequence from its own seeded RNG and merges them
 * into (t, stream, seq) order. Criticality classes are assigned
 * per stream from the same seed (hash-style, partition-independent)
 * and drive the FleetCoordinator's shed-lowest-criticality-first
 * arbitration.
 */
class ScenarioLoadGen
{
  public:
    /** Generate the full tape (fatal on nonsense parameters). */
    explicit ScenarioLoadGen(const LoadGenParams& params);

    /** The generation parameters. */
    const LoadGenParams& params() const { return params_; }

    /** The full arrival tape, sorted by (t, stream, seq). */
    const std::vector<ArrivalEvent>& schedule() const
    {
        return schedule_;
    }

    /** Criticality class of `stream` (0 = first to shed). */
    int criticality(int stream) const
    {
        return criticality_[static_cast<std::size_t>(stream)];
    }

    /** Arrival phase offset of `stream` (stagger). */
    double phaseMs(int stream) const;

    /**
     * Fixed cruise speed of `stream` in m/s, drawn from the stream's
     * own seed hash inside [speedMinMps, speedMaxMps] -- partition-
     * independent like everything else on the tape.
     */
    double speedMps(int stream) const;

    /** Frames emitted for `stream` (after burst/stall expansion). */
    std::int64_t framesForStream(int stream) const
    {
        return frames_[static_cast<std::size_t>(stream)];
    }

    /** Total arrivals in the tape. */
    std::int64_t totalArrivals() const
    {
        return static_cast<std::int64_t>(schedule_.size());
    }

  private:
    LoadGenParams params_;
    std::vector<ArrivalEvent> schedule_;
    std::vector<int> criticality_;
    std::vector<std::int64_t> frames_;
};

} // namespace ad::fleet

#endif // AD_FLEET_LOADGEN_HH
