/**
 * @file
 * Fleet layer, part 2: sharded serving over engine replicas.
 *
 * One MultiStreamServer multiplexes N streams over one engine; the
 * paper's per-vehicle constraint (p99.99 <= 100 ms, >= 10 fps) does
 * not care how many vehicles the operator signed up. The fleet
 * layer is the scale-out story: a ShardedServer owns `serve.shards`
 * engine replicas, each a full MultiStreamServer shard (own batch
 * scheduler, own admission controller), and co-simulates them over
 * one fleet-wide virtual clock in fixed rebalancing epochs.
 *
 * Three fleet-level mechanisms sit above the shards:
 *
 *  - **FleetRegistry** partitions the stream space (round-robin at
 *    registration) and tracks every stream's current (shard, slot)
 *    placement plus the migration log.
 *
 *  - **Slack-aware rebalancing.** Each shard carries a shard-level
 *    SLO accountant (reusing serve/slo.hh) fed by a ServeObserver:
 *    completions at their true latency, sheds as budget-miss
 *    equivalents — a shard that sheds half its arrivals is burning
 *    SLO budget even though the frames it *does* serve are on time.
 *    When a shard's rolling burn rate diverges from the fleet
 *    median (x `fleet.rebalance.divergence`), the rebalancer
 *    migrates its most-slack quiescent streams to the
 *    lowest-burn shard: work-stealing, deterministic under the
 *    virtual clock (ties resolve by id), logged per migration.
 *
 *  - **FleetCoordinator.** Global stream admission (optional cap,
 *    rejecting fleet-wide lowest-criticality streams first) and
 *    cross-shard degradation arbitration: per-shard pressure
 *    escalation is disabled on multi-shard fleets, and instead the
 *    coordinator escalates the lowest-criticality, most-slack
 *    streams *fleet-wide* when any shard's backlog pressure crosses
 *    the threshold — which vehicles lose quality is a fleet
 *    decision, not an accident of placement.
 *
 * Everything runs on seeded RNGs and explicit timestamps: the same
 * seed and shard count produce a bit-identical migration log and
 * fleet summary, and a single-shard fleet reproduces
 * MultiStreamServer::run exactly (same event order, same RNG draw
 * sequence — the equivalence test in tests/test_fleet.cc holds it
 * to that).
 */

#ifndef AD_FLEET_FLEET_HH
#define AD_FLEET_FLEET_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/loadgen.hh"
#include "serve/serve.hh"

namespace ad::fleet {

/** Rebalancing + arbitration knobs (`fleet.rebalance.*`). */
struct RebalanceParams
{
    bool enabled = true; ///< run the rebalancer at epoch boundaries.
    /** Epoch length (virtual ms): shards co-simulate in lockstep
        epochs; rebalancing and arbitration run at the boundaries. */
    double periodMs = 1000.0;
    /** A shard is hot when its burn exceeds divergence x the fleet
        median burn. */
    double divergence = 2.0;
    /** Burn floor: below this absolute burn (in units of the target
        miss rate) a shard is healthy and never sheds streams. */
    double minBurn = 1.0;
    /** Fleet-wide migration budget per epoch. */
    int maxMovesPerEpoch = 4;
    /** Backlog pressure (predicted busy / budget) above which a
        shard's streams become arbitration candidates. */
    double shedPressure = 0.8;
    /** Fleet-wide governor escalations per epoch. */
    int maxEscalationsPerEpoch = 8;

    /** Read every `fleet.rebalance.*` knob (defaults from *this). */
    static RebalanceParams fromConfig(const Config& cfg);

    /** The `fleet.rebalance.*` key registry (docs/CONFIG.md gate). */
    static std::vector<std::string> knownConfigKeys();
};

/** Fleet construction parameters. */
struct FleetParams
{
    int shards = 2; ///< engine replicas (`serve.shards`).
    /** Per-shard server template. `streams` and `stagger` are
        ignored (the loadgen defines the stream population and
        phases); `seed` and the modeled-engine seed are offset per
        shard so replicas draw independent jitter. */
    serve::ServeParams serve;
    /** Cost model of each owned modeled engine replica. */
    serve::ModeledEngineParams engine;
    RebalanceParams rebalance; ///< rebalancing + arbitration knobs.
    /** Global stream admission: max streams per shard (0 = no cap).
        Over cap, the coordinator rejects fleet-wide
        lowest-criticality streams first. */
    int maxStreamsPerShard = 0;
    /** Step shards on one thread per shard inside each epoch
        (identical results for modeled engines; the TSan target for
        measured ones). */
    bool parallel = false;

    /** Read `serve.shards`, `fleet.*` knobs (defaults from *this). */
    static FleetParams fromConfig(const Config& cfg);

    /** Fleet-level key registry, excluding `fleet.rebalance.*` and
        `fleet.loadgen.*` (those live with their own params). */
    static std::vector<std::string> knownConfigKeys();
};

/** One logged stream migration. */
struct Migration
{
    std::int64_t epoch = 0; ///< rebalancing epoch index.
    double tMs = 0.0;       ///< epoch boundary (virtual ms).
    int stream = -1;        ///< fleet-global stream id.
    int fromShard = -1;     ///< shard the stream left.
    int toShard = -1;       ///< shard the stream moved to.
    double burnFrom = 0.0;  ///< source-shard burn at the decision.
    double burnTo = 0.0;    ///< destination-shard burn.
};

/**
 * Placement authority: which shard serves which stream right now.
 * Slots are per-shard registry indices (see StreamRegistry); the
 * fleet-global stream id never changes across migrations.
 */
class FleetRegistry
{
  public:
    /** Registry for `streams` streams over `shards` shards; nothing
        is placed until place() is called. */
    FleetRegistry(int streams, int shards);

    /** Shard count the registry was built for. */
    int shards() const { return shards_; }

    /** Fleet-global stream count. */
    int streams() const { return static_cast<int>(locs_.size()); }

    /** Current shard of `stream` (-1 when not placed). */
    int shardOf(int stream) const
    {
        return locs_[static_cast<std::size_t>(stream)].shard;
    }

    /** Current per-shard slot of `stream`. */
    int slotOf(int stream) const
    {
        return locs_[static_cast<std::size_t>(stream)].slot;
    }

    /** True once `stream` has been placed on some shard. */
    bool placed(int stream) const { return shardOf(stream) >= 0; }

    /** Record (initial or migrated) placement. */
    void place(int stream, int shard, int slot);

    /** Stream ids currently on `shard`, ascending. */
    std::vector<int> streamsOf(int shard) const;

  private:
    struct Loc
    {
        int shard = -1;
        int slot = -1;
    };

    int shards_;
    std::vector<Loc> locs_;
};

/**
 * Fleet-wide admission and degradation arbitration policy. Pure
 * decision logic over criticality and slack; the ShardedServer
 * applies its choices to the shards.
 */
class FleetCoordinator
{
  public:
    /** Decide global admission for the load's stream population. */
    FleetCoordinator(const FleetParams& params,
                     const ScenarioLoadGen& load);

    /** Streams granted service under the global admission cap. */
    const std::vector<bool>& admitted() const { return admitted_; }

    /** Streams granted service. */
    int streamsAdmitted() const { return streamsAdmitted_; }

    /** Streams rejected by the global admission cap. */
    int streamsRejected() const
    {
        return static_cast<int>(admitted_.size()) - streamsAdmitted_;
    }

    /** One arbitration candidate (a resident stream of a pressured
        shard whose governor still has a level to give). */
    struct Candidate
    {
        int stream = -1;     ///< fleet-global stream id.
        int shard = -1;      ///< shard the stream resides on.
        int slot = -1;       ///< per-shard registry slot.
        int criticality = 0; ///< stream criticality class.
        double slackMs = 0.0; ///< deadline slack at the decision.
    };

    /**
     * Order candidates by the fleet shed policy — lowest
     * criticality first, most slack next, lowest id last — and
     * return at most maxEscalationsPerEpoch victims.
     */
    std::vector<Candidate>
    pickVictims(std::vector<Candidate> candidates) const;

  private:
    RebalanceParams rebalance_;
    std::vector<bool> admitted_;
    int streamsAdmitted_ = 0;
};

/** Per-shard row of the fleet report. */
struct ShardSummary
{
    int shard = -1;                ///< shard index.
    int streamsFinal = 0;          ///< resident streams at the end.
    std::int64_t arrivalsInjected = 0; ///< tape arrivals routed here.
    std::int64_t completions = 0;  ///< engine-served + coasted here.
    std::int64_t sheds = 0;        ///< shed here (event-time).
    std::int64_t batches = 0;      ///< engine batches dispatched.
    LatencySummary admittedLatency; ///< engine-served latencies here.
    double goodputFps = 0.0;       ///< on-time frames per second.
    double burnRate = 0.0;         ///< final shard SLO burn.
    std::int64_t migrationsIn = 0;  ///< streams migrated onto here.
    std::int64_t migrationsOut = 0; ///< streams migrated away.
};

/** Aggregate outcome of one fleet run. */
struct FleetReport
{
    int shards = 0;          ///< engine replicas in the fleet.
    int streamsRequested = 0; ///< streams the tape carries.
    int streamsAdmitted = 0; ///< granted service (global admission).
    std::int64_t framesArrived = 0;  ///< tape arrivals, fleet-wide.
    std::int64_t framesAdmitted = 0; ///< frames served by an engine.
    std::int64_t framesDegraded = 0; ///< served at a degraded level.
    std::int64_t framesCoasted = 0;  ///< skipped while a batch ran.
    std::int64_t framesShed = 0;     ///< dropped by admission.
    std::int64_t deadlineMisses = 0; ///< served past the budget.
    LatencySummary admittedLatency; ///< fleet-wide, merged shards.
    double durationMs = 0.0;    ///< virtual span of the run.
    double goodputFps = 0.0;    ///< on-time frames/s, fleet-wide.
    double totalGoodputFps = 0.0; ///< includes late completions.
    double shedRate = 0.0;      ///< shed / arrived.
    std::int64_t epochs = 0;    ///< rebalancing epochs stepped.
    std::int64_t migrations = 0; ///< streams moved between shards.
    std::int64_t fleetEscalations = 0; ///< coordinator escalations.
    std::vector<ShardSummary> shardRows; ///< per-shard rows.
    std::vector<Migration> migrationLog; ///< every logged move.
    /** Final per-stream SLO snapshots by fleet-global id (rejected
        streams report the default snapshot). */
    std::vector<serve::SloSnapshot> streamSlo;
    /** Per-shard ServeReports (shard 0 of a single-shard fleet is
        field-identical to MultiStreamServer::run's report). */
    std::vector<serve::ServeReport> shardReports;

    /** Canonical one-line-per-migration serialization; two runs are
        rebalancing-identical iff these strings match bytewise. */
    std::string migrationLogString() const;

    /** Canonical summary serialization for determinism checks. */
    std::string summaryString() const;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * The fleet: N MultiStreamServer shards co-simulated in lockstep
 * rebalancing epochs over one virtual clock, driven by a
 * ScenarioLoadGen tape. run() plays the whole tape and returns the
 * fleet report; call it once.
 */
class ShardedServer
{
  public:
    /** Fleet over internally owned modeled engine replicas. */
    ShardedServer(const FleetParams& params,
                  const ScenarioLoadGen& load);

    /**
     * Fleet over caller-provided engine replicas (one per shard;
     * this is how the measured NnBatchEngine path runs).
     */
    ShardedServer(const FleetParams& params,
                  const ScenarioLoadGen& load,
                  std::vector<serve::BatchEngine*> engines);

    ~ShardedServer(); ///< out-of-line for the Shard pimpl.

    /** Play the scenario tape to completion. Call once. */
    FleetReport run();

    /** Placement authority (post-run inspection in tests). */
    const FleetRegistry& registry() const { return registry_; }

    /** Admission/arbitration policy (post-run inspection). */
    const FleetCoordinator& coordinator() const
    {
        return coordinator_;
    }

  private:
    struct Shard;

    void registerStreams();
    void stepShardsTo(double untilMs);
    void coordinate(std::int64_t epoch, double nowMs);
    void rebalance(std::int64_t epoch, double nowMs,
                   const std::vector<double>& burns);
    void arbitrate(std::int64_t epoch, double nowMs);
    void publishMetrics(const FleetReport& report);

    FleetParams params_;
    const ScenarioLoadGen& load_;
    FleetRegistry registry_;
    FleetCoordinator coordinator_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<Migration> migrationLog_;
    std::int64_t fleetEscalations_ = 0;
    bool ran_ = false;
};

} // namespace ad::fleet

#endif // AD_FLEET_FLEET_HH
