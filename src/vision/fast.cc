#include "vision/fast.hh"

#include <algorithm>
#include <cmath>

namespace ad::vision {

namespace {

/** Bresenham circle of radius 3: the 16 FAST test offsets, in order. */
constexpr int kCircle[16][2] = {
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
    {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2},
    {-1, -3},
};

constexpr int kArcLength = 9; // FAST-9.

} // namespace

bool
fastSegmentTest(const Image& img, int x, int y, int threshold)
{
    const int center = img.at(x, y);
    const int hi = center + threshold;
    const int lo = center - threshold;

    // Quick reject using the 4 compass points: a contiguous arc of 9
    // always covers at least 2 of the 4 (they are spaced 4 apart).
    int brighter = 0;
    int darker = 0;
    for (int i : {0, 4, 8, 12}) {
        const int v = img.at(x + kCircle[i][0], y + kCircle[i][1]);
        brighter += v > hi;
        darker += v < lo;
    }
    if (brighter < 2 && darker < 2)
        return false;

    // Full test: walk the circle twice to catch wrap-around arcs.
    int runBright = 0;
    int runDark = 0;
    for (int i = 0; i < 32; ++i) {
        const int idx = i & 15;
        const int v = img.at(x + kCircle[idx][0], y + kCircle[idx][1]);
        runBright = v > hi ? runBright + 1 : 0;
        runDark = v < lo ? runDark + 1 : 0;
        if (runBright >= kArcLength || runDark >= kArcLength)
            return true;
    }
    return false;
}

float
harrisResponse(const Image& img, int x, int y)
{
    // Structure tensor from Sobel gradients over a 7x7 window.
    double sxx = 0;
    double syy = 0;
    double sxy = 0;
    for (int dy = -3; dy <= 3; ++dy) {
        for (int dx = -3; dx <= 3; ++dx) {
            const int px = x + dx;
            const int py = y + dy;
            const double gx =
                (img.atClamped(px + 1, py - 1) + 2 * img.atClamped(px + 1, py)
                 + img.atClamped(px + 1, py + 1)) -
                (img.atClamped(px - 1, py - 1) + 2 * img.atClamped(px - 1, py)
                 + img.atClamped(px - 1, py + 1));
            const double gy =
                (img.atClamped(px - 1, py + 1) + 2 * img.atClamped(px, py + 1)
                 + img.atClamped(px + 1, py + 1)) -
                (img.atClamped(px - 1, py - 1) + 2 * img.atClamped(px, py - 1)
                 + img.atClamped(px + 1, py - 1));
            sxx += gx * gx;
            syy += gy * gy;
            sxy += gx * gy;
        }
    }
    constexpr double k = 0.04;
    const double det = sxx * syy - sxy * sxy;
    const double trace = sxx + syy;
    return static_cast<float>(det - k * trace * trace);
}

int
intensityCentroidBin(const Image& img, int x, int y, TrigMode mode)
{
    constexpr int radius = 8;
    float m10 = 0;
    float m01 = 0;
    for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
            if (dx * dx + dy * dy > radius * radius)
                continue;
            const float v = img.atClamped(x + dx, y + dy);
            m10 += static_cast<float>(dx) * v;
            m01 += static_cast<float>(dy) * v;
        }
    }
    if (mode == TrigMode::Lut)
        return TrigTables::instance().atan2Bin(m01, m10);
    return naiveAtan2Bin(m01, m10);
}

std::vector<Keypoint>
detectFast(const Image& img, const FastParams& params, FastOpCounts* counts)
{
    std::vector<Keypoint> candidates;
    const int border = 8 + 3; // orientation disc + circle radius.
    FastOpCounts local;

    for (int y = border; y < img.height() - border; ++y) {
        for (int x = border; x < img.width() - border; ++x) {
            ++local.pixelsTested;
            if (!fastSegmentTest(img, x, y, params.threshold))
                continue;
            ++local.candidates;
            Keypoint kp;
            kp.x = static_cast<float>(x);
            kp.y = static_cast<float>(y);
            kp.response = harrisResponse(img, x, y);
            candidates.push_back(kp);
        }
    }

    // Grid NMS: keep the strongest response per cell.
    const int cell = std::max(1, params.cellSize);
    const int gw = (img.width() + cell - 1) / cell;
    const int gh = (img.height() + cell - 1) / cell;
    std::vector<int> bestInCell(static_cast<std::size_t>(gw) * gh, -1);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const int cx = static_cast<int>(candidates[i].x) / cell;
        const int cy = static_cast<int>(candidates[i].y) / cell;
        int& best = bestInCell[static_cast<std::size_t>(cy) * gw + cx];
        if (best < 0 ||
            candidates[best].response < candidates[i].response)
            best = static_cast<int>(i);
    }
    std::vector<Keypoint> kept;
    for (const int idx : bestInCell)
        if (idx >= 0)
            kept.push_back(candidates[idx]);

    // Top-N by response.
    if (static_cast<int>(kept.size()) > params.maxKeypoints) {
        std::nth_element(kept.begin(), kept.begin() + params.maxKeypoints,
                         kept.end(), [](const Keypoint& a, const Keypoint& b)
                         { return a.response > b.response; });
        kept.resize(params.maxKeypoints);
    }

    // Orientation only for survivors (as in ORB).
    for (auto& kp : kept)
        kp.orientationBin = intensityCentroidBin(
            img, static_cast<int>(kp.x), static_cast<int>(kp.y),
            params.trigMode);

    local.keypoints = kept.size();
    if (counts) {
        counts->pixelsTested += local.pixelsTested;
        counts->candidates += local.candidates;
        counts->keypoints += local.keypoints;
    }
    return kept;
}

} // namespace ad::vision
