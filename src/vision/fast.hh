/**
 * @file
 * oFAST keypoint detection -- the first half of the ORB extractor used
 * by the localization engine (Figure 5 of the paper): FAST-9
 * segment-test corners with Harris ranking, grid non-maximum
 * suppression, and intensity-centroid orientation (the "o" in oFAST).
 */

#ifndef AD_VISION_FAST_HH
#define AD_VISION_FAST_HH

#include <vector>

#include "common/image.hh"
#include "vision/lut_trig.hh"

namespace ad::vision {

/** A detected keypoint (coordinates in the detection image). */
struct Keypoint
{
    float x = 0;
    float y = 0;
    float response = 0;   ///< Harris corner score for ranking.
    int orientationBin = 0; ///< quantized intensity-centroid angle.
    int level = 0;        ///< pyramid level (filled by the extractor).
};

/** Tuning parameters of the FAST detector. */
struct FastParams
{
    int threshold = 20;        ///< segment-test intensity delta.
    int maxKeypoints = 1000;   ///< retain the top-N by response.
    int cellSize = 16;         ///< NMS grid cell size in pixels.
    TrigMode trigMode = TrigMode::Lut; ///< orientation math path.
};

/**
 * Operation counters for one detection pass; these feed the
 * feature-extraction workload model for the FPGA/ASIC FE accelerators.
 */
struct FastOpCounts
{
    std::uint64_t pixelsTested = 0;   ///< segment tests performed.
    std::uint64_t candidates = 0;     ///< pixels passing the segment test.
    std::uint64_t keypoints = 0;      ///< survivors after NMS/top-N.
};

/**
 * FAST-9 segment test: does a contiguous arc of >= 9 of the 16
 * Bresenham-circle pixels differ from the center by more than the
 * threshold? Exposed for unit testing.
 */
bool fastSegmentTest(const Image& img, int x, int y, int threshold);

/**
 * Harris corner response at a pixel (Sobel gradients over a 7x7
 * window, k = 0.04). Exposed for unit testing.
 */
float harrisResponse(const Image& img, int x, int y);

/**
 * Intensity-centroid orientation bin: moments m10/m01 over a radius-8
 * disc; angle = atan2(m01, m10), quantized to kOrientationBins.
 */
int intensityCentroidBin(const Image& img, int x, int y, TrigMode mode);

/**
 * Run the full oFAST detector over an image.
 *
 * @param img input grayscale image.
 * @param params detector tuning.
 * @param counts optional op-count output for the workload model.
 */
std::vector<Keypoint> detectFast(const Image& img, const FastParams& params,
                                 FastOpCounts* counts = nullptr);

} // namespace ad::vision

#endif // AD_VISION_FAST_HH
