/**
 * @file
 * Projection-guided descriptor matching. Brute-force matching
 * compares every frame descriptor against every candidate; but the
 * localizer *knows* where each map point should appear (its
 * projection under the predicted pose), so the search can be
 * restricted to a pixel window around that projection -- the way
 * ORB-SLAM's TrackLocalMap matches. This is both faster (features are
 * bucketed into a grid, only nearby ones are compared) and more
 * precise (distant lookalike texture cannot steal a match).
 */

#ifndef AD_VISION_SPATIAL_MATCHER_HH
#define AD_VISION_SPATIAL_MATCHER_HH

#include <vector>

#include "vision/orb.hh"

namespace ad::vision {

/** A match candidate with a predicted image position. */
struct ProjectedCandidate
{
    float u = 0;          ///< predicted column.
    float v = 0;          ///< predicted row.
    Descriptor desc;
    std::uint32_t tag = 0; ///< caller payload (e.g.\ map index).
};

/** Spatial matcher tuning. */
struct SpatialMatchParams
{
    double windowRadius = 48.0; ///< search window around the
                                ///  projection (px).
    int maxHamming = 64;
    double ratio = 0.85;        ///< best/second-best gate.
};

/** One spatial match. */
struct SpatialMatch
{
    int featureIndex = -1;  ///< into the frame feature array.
    int candidateIndex = -1; ///< into the candidate array.
    int distance = 256;
};

/**
 * Grid-bucketed feature index over one frame, supporting windowed
 * descriptor matching against projected candidates.
 */
class SpatialMatcher
{
  public:
    /**
     * Index a frame's features.
     *
     * @param features extracted frame features (level-0 coords).
     * @param width,height frame dimensions.
     * @param cellSize bucket edge in pixels.
     */
    SpatialMatcher(const std::vector<Feature>& features, int width,
                   int height, int cellSize = 32);

    /**
     * Match candidates against the indexed features. Each candidate
     * searches only the window around its projection; each matched
     * frame feature is consumed (one-to-one matching, best first).
     */
    std::vector<SpatialMatch> match(
        const std::vector<ProjectedCandidate>& candidates,
        const SpatialMatchParams& params = {}) const;

    /** Feature indices within the window (exposed for tests). */
    std::vector<int> featuresNear(float u, float v,
                                  double radius) const;

  private:
    const std::vector<Feature>& features_;
    int cellSize_;
    int gridW_;
    int gridH_;
    std::vector<std::vector<int>> cells_;
};

} // namespace ad::vision

#endif // AD_VISION_SPATIAL_MATCHER_HH
