/**
 * @file
 * The complete ORB feature extractor (oFAST + rBRIEF over an image
 * pyramid) -- the Feature Extraction (FE) stage that the paper measures
 * at 85.9% of the localization engine's cycles and accelerates on both
 * FPGA and a custom 4 GHz ASIC.
 */

#ifndef AD_VISION_ORB_HH
#define AD_VISION_ORB_HH

#include <vector>

#include "common/image.hh"
#include "vision/brief.hh"
#include "vision/fast.hh"

namespace ad::vision {

/** A full ORB feature: keypoint (level-0 coordinates) + descriptor. */
struct Feature
{
    Keypoint kp;       ///< coordinates scaled back to level 0.
    Descriptor desc;
};

/** Extractor tuning parameters. */
struct OrbParams
{
    int pyramidLevels = 4;
    double scaleFactor = 1.2;
    FastParams fast;         ///< per-level detector settings.
    int smoothRadius = 2;    ///< pre-descriptor box-filter radius.
};

/**
 * Workload counters for one extraction pass. The FE accelerator models
 * (FPGA pipeline at 250 MHz, ASIC at 4 GHz, Table 3) convert these into
 * cycle counts.
 */
struct OrbProfile
{
    std::uint64_t pixelsProcessed = 0; ///< pyramid pixels streamed.
    FastOpCounts fast;
    BriefOpCounts brief;

    void
    merge(const OrbProfile& o)
    {
        pixelsProcessed += o.pixelsProcessed;
        fast.pixelsTested += o.fast.pixelsTested;
        fast.candidates += o.fast.candidates;
        fast.keypoints += o.fast.keypoints;
        brief.descriptors += o.brief.descriptors;
        brief.binaryTests += o.brief.binaryTests;
    }
};

/** Scale-pyramid ORB extractor. */
class OrbExtractor
{
  public:
    explicit OrbExtractor(const OrbParams& params = OrbParams{});

    /**
     * Extract features from an image.
     *
     * @param img level-0 grayscale input.
     * @param profile optional workload-counter output.
     */
    std::vector<Feature> extract(const Image& img,
                                 OrbProfile* profile = nullptr) const;

    const OrbParams& params() const { return params_; }

  private:
    OrbParams params_;
};

/**
 * Brute-force descriptor matching with a max-distance gate and a
 * best-vs-second-best ratio test. Returns (indexA, indexB) pairs.
 */
struct Match
{
    int indexA = -1;
    int indexB = -1;
    int distance = 256;
};

std::vector<Match> matchDescriptors(const std::vector<Descriptor>& a,
                                    const std::vector<Descriptor>& b,
                                    int maxDistance = 64,
                                    double ratio = 0.8);

} // namespace ad::vision

#endif // AD_VISION_ORB_HH
