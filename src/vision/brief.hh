/**
 * @file
 * rBRIEF descriptors -- the second half of the ORB extractor (Figure 5):
 * 256 binary intensity comparisons on a smoothed 31x31 patch, with the
 * test pattern rotated by the keypoint's quantized orientation. Pattern
 * rotation uses the LUT sin/cos tables by default, matching the paper's
 * FPGA/ASIC Rotate_unit; descriptors are 256-bit strings compared by
 * Hamming distance.
 */

#ifndef AD_VISION_BRIEF_HH
#define AD_VISION_BRIEF_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/image.hh"
#include "vision/fast.hh"

namespace ad::vision {

/** 256-bit binary descriptor. */
struct Descriptor
{
    std::array<std::uint64_t, 4> words = {0, 0, 0, 0};

    /** Hamming distance (0..256) via popcount. */
    int hamming(const Descriptor& other) const;

    bool operator==(const Descriptor&) const = default;
};

/** Op counters for the descriptor stage of the FE workload model. */
struct BriefOpCounts
{
    std::uint64_t descriptors = 0;
    std::uint64_t binaryTests = 0;
};

/**
 * The rBRIEF test-pair pattern: 256 coordinate pairs inside a 31x31
 * patch, plus the pre-rotated variants for every orientation bin
 * (mirroring the hardware's pattern LUT).
 */
class BriefPattern
{
  public:
    /** Singleton: the pattern is deterministic and immutable. */
    static const BriefPattern& instance();

    /** A single test: compare patch(a) < patch(b). */
    struct TestPair
    {
        std::int8_t ax, ay, bx, by;
    };

    /** The 256 tests rotated to the given orientation bin. */
    const std::array<TestPair, 256>& rotated(int bin) const
    {
        return rotated_[bin];
    }

    /** The unrotated base pattern. */
    const std::array<TestPair, 256>& base() const { return rotated_[0]; }

  private:
    BriefPattern();

    std::array<std::array<TestPair, 256>, kOrientationBins> rotated_;
};

/**
 * Compute the rBRIEF descriptor of one keypoint on a (pre-smoothed)
 * image. Keypoints closer than 16 pixels to the border are sampled with
 * clamped reads.
 *
 * @param smoothed box-filtered image (radius 2, as in ORB).
 * @param kp keypoint with orientation bin already assigned.
 */
Descriptor describeKeypoint(const Image& smoothed, const Keypoint& kp);

/** Describe a batch of keypoints, updating the op counters. */
std::vector<Descriptor> describeKeypoints(const Image& smoothed,
                                          const std::vector<Keypoint>& kps,
                                          BriefOpCounts* counts = nullptr);

} // namespace ad::vision

#endif // AD_VISION_BRIEF_HH
