#include "vision/spatial_matcher.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ad::vision {

SpatialMatcher::SpatialMatcher(const std::vector<Feature>& features,
                               int width, int height, int cellSize)
    : features_(features), cellSize_(std::max(8, cellSize))
{
    gridW_ = std::max(1, (width + cellSize_ - 1) / cellSize_);
    gridH_ = std::max(1, (height + cellSize_ - 1) / cellSize_);
    cells_.resize(static_cast<std::size_t>(gridW_) * gridH_);
    for (std::size_t i = 0; i < features.size(); ++i) {
        const int cx = std::clamp(
            static_cast<int>(features[i].kp.x) / cellSize_, 0,
            gridW_ - 1);
        const int cy = std::clamp(
            static_cast<int>(features[i].kp.y) / cellSize_, 0,
            gridH_ - 1);
        cells_[static_cast<std::size_t>(cy) * gridW_ + cx].push_back(
            static_cast<int>(i));
    }
}

std::vector<int>
SpatialMatcher::featuresNear(float u, float v, double radius) const
{
    std::vector<int> result;
    const int cx0 = std::clamp(
        static_cast<int>((u - radius) / cellSize_), 0, gridW_ - 1);
    const int cx1 = std::clamp(
        static_cast<int>((u + radius) / cellSize_), 0, gridW_ - 1);
    const int cy0 = std::clamp(
        static_cast<int>((v - radius) / cellSize_), 0, gridH_ - 1);
    const int cy1 = std::clamp(
        static_cast<int>((v + radius) / cellSize_), 0, gridH_ - 1);
    const double r2 = radius * radius;
    for (int cy = cy0; cy <= cy1; ++cy) {
        for (int cx = cx0; cx <= cx1; ++cx) {
            for (const int idx :
                 cells_[static_cast<std::size_t>(cy) * gridW_ + cx]) {
                const double du = features_[idx].kp.x - u;
                const double dv = features_[idx].kp.y - v;
                if (du * du + dv * dv <= r2)
                    result.push_back(idx);
            }
        }
    }
    return result;
}

std::vector<SpatialMatch>
SpatialMatcher::match(const std::vector<ProjectedCandidate>& candidates,
                      const SpatialMatchParams& params) const
{
    // Gather per-candidate best/second-best within the window.
    struct Scored
    {
        int candidate;
        int feature;
        int distance;
    };
    std::vector<Scored> scored;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        int best = 257;
        int second = 257;
        int bestIdx = -1;
        for (const int f : featuresNear(candidates[c].u,
                                        candidates[c].v,
                                        params.windowRadius)) {
            const int d =
                candidates[c].desc.hamming(features_[f].desc);
            if (d < best) {
                second = best;
                best = d;
                bestIdx = f;
            } else if (d < second) {
                second = d;
            }
        }
        if (bestIdx < 0 || best > params.maxHamming)
            continue;
        // Ties rejected, as in matchDescriptors() -- but note the
        // window usually contains no lookalike, which is the point.
        if (second <= 256 && static_cast<double>(best) >=
                                 params.ratio * second)
            continue;
        scored.push_back({static_cast<int>(c), bestIdx, best});
    }

    // One-to-one assignment: strongest matches claim features first.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                  return a.distance < b.distance;
              });
    std::vector<bool> featureTaken(features_.size(), false);
    std::vector<SpatialMatch> matches;
    for (const auto& s : scored) {
        if (featureTaken[s.feature])
            continue;
        featureTaken[s.feature] = true;
        matches.push_back({s.feature, s.candidate, s.distance});
    }
    return matches;
}

} // namespace ad::vision
