#include "vision/orb.hh"

#include <cmath>

namespace ad::vision {

OrbExtractor::OrbExtractor(const OrbParams& params) : params_(params)
{
}

std::vector<Feature>
OrbExtractor::extract(const Image& img, OrbProfile* profile) const
{
    std::vector<Feature> features;
    OrbProfile localProfile;

    Image level = img;
    double scale = 1.0;
    for (int l = 0; l < params_.pyramidLevels; ++l) {
        if (l > 0) {
            scale *= params_.scaleFactor;
            const int w = static_cast<int>(img.width() / scale);
            const int h = static_cast<int>(img.height() / scale);
            if (w < 48 || h < 48)
                break;
            level = img.resized(w, h);
        }
        localProfile.pixelsProcessed +=
            static_cast<std::uint64_t>(level.width()) * level.height();

        // Distribute the keypoint budget across levels (halving per
        // level, as coarser levels cover less detail).
        FastParams fp = params_.fast;
        fp.maxKeypoints = std::max(8, params_.fast.maxKeypoints >> l);

        std::vector<Keypoint> kps =
            detectFast(level, fp, &localProfile.fast);
        const Image smoothed = level.boxFiltered(params_.smoothRadius);
        const std::vector<Descriptor> descs =
            describeKeypoints(smoothed, kps, &localProfile.brief);

        for (std::size_t i = 0; i < kps.size(); ++i) {
            Feature f;
            f.kp = kps[i];
            f.kp.level = l;
            f.kp.x = static_cast<float>(kps[i].x * scale);
            f.kp.y = static_cast<float>(kps[i].y * scale);
            f.desc = descs[i];
            features.push_back(f);
        }
    }

    if (profile)
        profile->merge(localProfile);
    return features;
}

std::vector<Match>
matchDescriptors(const std::vector<Descriptor>& a,
                 const std::vector<Descriptor>& b, int maxDistance,
                 double ratio)
{
    std::vector<Match> matches;
    if (b.empty())
        return matches;
    for (std::size_t i = 0; i < a.size(); ++i) {
        int best = 257;
        int second = 257;
        int bestIdx = -1;
        for (std::size_t j = 0; j < b.size(); ++j) {
            const int d = a[i].hamming(b[j]);
            if (d < best) {
                second = best;
                best = d;
                bestIdx = static_cast<int>(j);
            } else if (d < second) {
                second = d;
            }
        }
        if (bestIdx < 0 || best > maxDistance)
            continue;
        // Lowe ratio test; >= so an exact tie (ambiguous repetitive
        // texture) is rejected rather than matched arbitrarily.
        if (second <= 256 &&
            static_cast<double>(best) >=
                ratio * static_cast<double>(second))
            continue;
        matches.push_back({static_cast<int>(i), bestIdx, best});
    }
    return matches;
}

} // namespace ad::vision
