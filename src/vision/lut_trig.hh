/**
 * @file
 * Lookup-table trigonometry for the feature-extraction substrate.
 *
 * The paper's FPGA and ASIC feature-extraction designs (Section 4.2.2 /
 * 4.2.3) replace atan2/sin/cos with lookup tables "to avoid the
 * extensive use of multipliers and dividers", improving FE latency by
 * 1.5x on the FPGA and 4x on the ASIC. We implement the same scheme in
 * software: orientation is quantized to a fixed number of bins, sin/cos
 * come from per-bin tables, and atan2 is a quadrant-folded slope table.
 * The naive libm path is kept selectable so the ablation bench
 * (bench_ablation_lut_trig) can quantify the trade-off.
 */

#ifndef AD_VISION_LUT_TRIG_HH
#define AD_VISION_LUT_TRIG_HH

#include <array>

namespace ad::vision {

/** Which trigonometry implementation the extractor uses. */
enum class TrigMode { Lut, Naive };

/**
 * Number of discrete orientation bins. ORB quantizes to 12-degree
 * steps (30 bins); we use 32 -- a power of two, the natural choice for
 * the hardware pattern LUT, with the quadrant axes landing on exact
 * bin centers.
 */
constexpr int kOrientationBins = 32;

/**
 * Quantized trigonometry tables shared by oFAST (orientation) and
 * rBRIEF (pattern rotation).
 */
class TrigTables
{
  public:
    /** Singleton accessor (tables are immutable after construction). */
    static const TrigTables& instance();

    /** sin of the bin center. */
    float sinOf(int bin) const { return sin_[bin]; }
    /** cos of the bin center. */
    float cosOf(int bin) const { return cos_[bin]; }

    /** Bin center angle in radians, in [0, 2*pi). */
    float angleOf(int bin) const { return angle_[bin]; }

    /** Map an arbitrary angle (radians) to its orientation bin. */
    static int binOf(float angle);

    /**
     * LUT-based atan2 quantized directly to an orientation bin: folds
     * (y, x) into the first octant and looks the slope up in a table,
     * avoiding the divider/multiplier-heavy libm path -- mirroring the
     * hardware Orient_unit.
     */
    int atan2Bin(float y, float x) const;

  private:
    TrigTables();

    std::array<float, kOrientationBins> sin_;
    std::array<float, kOrientationBins> cos_;
    std::array<float, kOrientationBins> angle_;
    // Slope table: atan(t) for t in [0, 1] at fixed resolution.
    static constexpr int kSlopeSteps = 64;
    std::array<float, kSlopeSteps + 1> atanTable_;
};

/** Orientation bin via libm atan2 (the "naive" ablation arm). */
int naiveAtan2Bin(float y, float x);

} // namespace ad::vision

#endif // AD_VISION_LUT_TRIG_HH
