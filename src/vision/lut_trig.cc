#include "vision/lut_trig.hh"

#include <cmath>

namespace ad::vision {

const TrigTables&
TrigTables::instance()
{
    static const TrigTables tables;
    return tables;
}

TrigTables::TrigTables()
{
    for (int i = 0; i < kOrientationBins; ++i) {
        const float a = static_cast<float>(2.0 * M_PI * i /
                                           kOrientationBins);
        angle_[i] = a;
        sin_[i] = std::sin(a);
        cos_[i] = std::cos(a);
    }
    for (int i = 0; i <= kSlopeSteps; ++i)
        atanTable_[i] = std::atan(static_cast<float>(i) / kSlopeSteps);
}

int
TrigTables::binOf(float angle)
{
    float a = std::fmod(angle, static_cast<float>(2.0 * M_PI));
    if (a < 0)
        a += static_cast<float>(2.0 * M_PI);
    int bin = static_cast<int>(a * kOrientationBins /
                               static_cast<float>(2.0 * M_PI) + 0.5f);
    return bin % kOrientationBins;
}

int
TrigTables::atan2Bin(float y, float x) const
{
    if (x == 0.0f && y == 0.0f)
        return 0;
    const float ax = std::fabs(x);
    const float ay = std::fabs(y);
    // First octant: slope in [0, 1], one table read.
    const float lo = ax > ay ? ay : ax;
    const float hi = ax > ay ? ax : ay;
    const int step = static_cast<int>(lo / hi * kSlopeSteps + 0.5f);
    float a = atanTable_[step];
    if (ay > ax)
        a = static_cast<float>(M_PI / 2) - a;
    if (x < 0)
        a = static_cast<float>(M_PI) - a;
    if (y < 0)
        a = -a;
    return binOf(a);
}

int
naiveAtan2Bin(float y, float x)
{
    return TrigTables::binOf(std::atan2(y, x));
}

} // namespace ad::vision
