#include "vision/brief.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/random.hh"

namespace ad::vision {

int
Descriptor::hamming(const Descriptor& other) const
{
    int dist = 0;
    for (int i = 0; i < 4; ++i)
        dist += std::popcount(words[i] ^ other.words[i]);
    return dist;
}

const BriefPattern&
BriefPattern::instance()
{
    static const BriefPattern pattern;
    return pattern;
}

BriefPattern::BriefPattern()
{
    // Deterministic pseudo-random pattern: coordinates drawn from a
    // truncated Gaussian inside the 31x31 patch (as in the BRIEF
    // paper's best-performing G-II sampling).
    Rng rng(0x0b51efULL);
    std::array<TestPair, 256> base;
    for (auto& t : base) {
        auto draw = [&rng]() {
            const double v = rng.normal(0.0, 6.5);
            const int c = static_cast<int>(std::lround(v));
            return static_cast<std::int8_t>(std::clamp(c, -15, 15));
        };
        t.ax = draw();
        t.ay = draw();
        t.bx = draw();
        t.by = draw();
    }

    // Pre-rotate for every orientation bin using the LUT sin/cos -- the
    // software analogue of the hardware pattern LUT + Rotate_unit.
    const TrigTables& trig = TrigTables::instance();
    for (int bin = 0; bin < kOrientationBins; ++bin) {
        const float c = trig.cosOf(bin);
        const float s = trig.sinOf(bin);
        for (int i = 0; i < 256; ++i) {
            const TestPair& t = base[i];
            auto rot = [c, s](std::int8_t x, std::int8_t y) {
                const float rx = c * x - s * y;
                const float ry = s * x + c * y;
                return std::pair<std::int8_t, std::int8_t>(
                    static_cast<std::int8_t>(std::clamp(
                        static_cast<int>(std::lround(rx)), -15, 15)),
                    static_cast<std::int8_t>(std::clamp(
                        static_cast<int>(std::lround(ry)), -15, 15)));
            };
            const auto [rax, ray] = rot(t.ax, t.ay);
            const auto [rbx, rby] = rot(t.bx, t.by);
            rotated_[bin][i] = TestPair{rax, ray, rbx, rby};
        }
    }
}

Descriptor
describeKeypoint(const Image& smoothed, const Keypoint& kp)
{
    const auto& tests = BriefPattern::instance().rotated(kp.orientationBin);
    Descriptor desc;
    const int cx = static_cast<int>(kp.x);
    const int cy = static_cast<int>(kp.y);
    for (int i = 0; i < 256; ++i) {
        const auto& t = tests[i];
        const int a = smoothed.atClamped(cx + t.ax, cy + t.ay);
        const int b = smoothed.atClamped(cx + t.bx, cy + t.by);
        if (a < b)
            desc.words[i >> 6] |= 1ULL << (i & 63);
    }
    return desc;
}

std::vector<Descriptor>
describeKeypoints(const Image& smoothed, const std::vector<Keypoint>& kps,
                  BriefOpCounts* counts)
{
    std::vector<Descriptor> descs;
    descs.reserve(kps.size());
    for (const auto& kp : kps)
        descs.push_back(describeKeypoint(smoothed, kp));
    if (counts) {
        counts->descriptors += kps.size();
        counts->binaryTests += kps.size() * 256ULL;
    }
    return descs;
}

} // namespace ad::vision
