#include "fusion/kalman.hh"

#include "common/logging.hh"

namespace ad::fusion {

ConstantVelocityKalman::ConstantVelocityKalman(const KalmanParams& params)
    : params_(params)
{
    if (params.measurementNoise <= 0 || params.processNoiseAccel <= 0)
        fatal("ConstantVelocityKalman: noise parameters must be "
              "positive");
}

void
ConstantVelocityKalman::initialize(const Vec2& position)
{
    state_[0][0] = position.x;
    state_[1][0] = position.y;
    state_[0][1] = 0;
    state_[1][1] = 0;
    const double r = params_.measurementNoise * params_.measurementNoise;
    for (int axis = 0; axis < 2; ++axis) {
        cov_[axis][0][0] = r;
        cov_[axis][0][1] = 0;
        cov_[axis][1][0] = 0;
        cov_[axis][1][1] = params_.initialVelocityVar;
    }
    initialized_ = true;
}

void
ConstantVelocityKalman::predict(double dt)
{
    if (!initialized_)
        panic("Kalman predict before initialize");
    if (dt <= 0)
        return;
    const double q = params_.processNoiseAccel *
                     params_.processNoiseAccel;
    // Discrete white-noise-acceleration process covariance.
    const double q11 = q * dt * dt * dt * dt / 4;
    const double q12 = q * dt * dt * dt / 2;
    const double q22 = q * dt * dt;
    for (int axis = 0; axis < 2; ++axis) {
        // x' = F x with F = [1 dt; 0 1].
        state_[axis][0] += state_[axis][1] * dt;
        // P' = F P F^T + Q.
        double (&p)[2][2] = cov_[axis];
        const double p00 = p[0][0] + dt * (p[1][0] + p[0][1]) +
                           dt * dt * p[1][1] + q11;
        const double p01 = p[0][1] + dt * p[1][1] + q12;
        const double p10 = p[1][0] + dt * p[1][1] + q12;
        const double p11 = p[1][1] + q22;
        p[0][0] = p00;
        p[0][1] = p01;
        p[1][0] = p10;
        p[1][1] = p11;
    }
}

void
ConstantVelocityKalman::update(const Vec2& measuredPosition)
{
    if (!initialized_) {
        initialize(measuredPosition);
        return;
    }
    const double r = params_.measurementNoise * params_.measurementNoise;
    const double meas[2] = {measuredPosition.x, measuredPosition.y};
    for (int axis = 0; axis < 2; ++axis) {
        double (&p)[2][2] = cov_[axis];
        const double s = p[0][0] + r;     // innovation variance
        const double k0 = p[0][0] / s;    // Kalman gain (pos)
        const double k1 = p[1][0] / s;    // Kalman gain (vel)
        const double innovation = meas[axis] - state_[axis][0];
        state_[axis][0] += k0 * innovation;
        state_[axis][1] += k1 * innovation;
        // P = (I - K H) P.
        const double p00 = (1 - k0) * p[0][0];
        const double p01 = (1 - k0) * p[0][1];
        const double p10 = p[1][0] - k1 * p[0][0];
        const double p11 = p[1][1] - k1 * p[0][1];
        p[0][0] = p00;
        p[0][1] = p01;
        p[1][0] = p10;
        p[1][1] = p11;
    }
}

double
ConstantVelocityKalman::positionVariance() const
{
    return (cov_[0][0][0] + cov_[1][0][0]) / 2;
}

} // namespace ad::fusion
