#include "fusion/fusion.hh"

#include "common/logging.hh"
#include "common/time.hh"

namespace ad::fusion {

FusionEngine::FusionEngine(const sensors::Camera* camera,
                           const FusionParams& params)
    : camera_(camera), params_(params)
{
    if (!camera)
        fatal("FusionEngine: camera must be non-null");
}

FusedScene
FusionEngine::fuse(const std::vector<track::TrackedObject>& tracks,
                   const Pose2& egoPose, double dt, double timestamp)
{
    Stopwatch watch;
    FusedScene scene;
    scene.egoPose = egoPose;
    scene.timestamp = timestamp;
    if (hasLastEgo_ && dt > 1e-6)
        scene.egoVelocity = (egoPose.pos - lastEgoPose_.pos) / dt;
    lastEgoPose_ = egoPose;
    hasLastEgo_ = true;

    std::map<int, Vec2> current;
    std::map<int, ConstantVelocityKalman> liveFilters;
    for (const auto& t : tracks) {
        // Back-project the box's bottom-center: the object's ground
        // contact point.
        Vec2 world;
        if (!camera_->unprojectGround(egoPose, t.box.cx(), t.box.ymax(),
                                      world))
            continue;
        FusedObject obj;
        obj.trackId = t.id;
        obj.cls = t.cls;
        obj.imageBox = t.box;

        if (params_.useKalman) {
            auto it = filters_.find(t.id);
            if (it == filters_.end()) {
                ConstantVelocityKalman kf(params_.kalman);
                kf.initialize(world);
                it = filters_.emplace(t.id, kf).first;
            } else {
                it->second.predict(dt);
                it->second.update(world);
            }
            obj.worldPos = it->second.position();
            obj.worldVelocity = it->second.velocity();
            liveFilters.insert(*it);
        } else {
            obj.worldPos = world;
            const auto prev = lastWorldPos_.find(t.id);
            if (prev != lastWorldPos_.end() && dt > 1e-6)
                obj.worldVelocity = (world - prev->second) / dt;
        }
        obj.depth = (obj.worldPos - egoPose.pos).norm();
        current[t.id] = world;
        scene.objects.push_back(obj);
    }
    lastWorldPos_ = std::move(current);
    filters_ = std::move(liveFilters); // prune filters of dead tracks

    lastFuseMs_ = watch.elapsedMs();
    return scene;
}

} // namespace ad::fusion
