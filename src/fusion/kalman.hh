/**
 * @file
 * Constant-velocity Kalman filter over ground-plane object states.
 * The fusion engine back-projects each tracked box to a world
 * position; raw frame-to-frame differencing of those projections is
 * noisy (one pixel of box jitter is decimeters of depth at range),
 * and the motion planner's spatiotemporal obstacle prediction needs
 * stable velocities. A per-object filter with a constant-velocity
 * process model smooths both.
 */

#ifndef AD_FUSION_KALMAN_HH
#define AD_FUSION_KALMAN_HH

#include "common/geometry.hh"

namespace ad::fusion {

/** Filter tuning. */
struct KalmanParams
{
    double processNoiseAccel = 3.0;  ///< accel stddev (m/s^2).
    double measurementNoise = 0.8;   ///< position stddev (m).
    double initialVelocityVar = 100.0;
};

/**
 * Constant-velocity Kalman filter on state (x, y, vx, vy) with
 * position-only measurements. Position and velocity pairs decouple,
 * so the filter runs two independent 2x2 filters (one per axis),
 * keeping the math explicit and allocation-free.
 */
class ConstantVelocityKalman
{
  public:
    explicit ConstantVelocityKalman(const KalmanParams& params = {});

    /** Initialize at a measured position with unknown velocity. */
    void initialize(const Vec2& position);

    bool initialized() const { return initialized_; }

    /** Propagate the state dt seconds forward. */
    void predict(double dt);

    /** Fuse a position measurement. */
    void update(const Vec2& measuredPosition);

    Vec2 position() const { return {state_[0][0], state_[1][0]}; }
    Vec2 velocity() const { return {state_[0][1], state_[1][1]}; }

    /** Position variance (per-axis average), for gating/diagnostics. */
    double positionVariance() const;

  private:
    KalmanParams params_;
    bool initialized_ = false;
    // Per-axis state [pos, vel] and covariance.
    double state_[2][2] = {{0, 0}, {0, 0}};
    double cov_[2][2][2] = {}; ///< [axis][row][col].
};

} // namespace ad::fusion

#endif // AD_FUSION_KALMAN_HH
