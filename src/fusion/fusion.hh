/**
 * @file
 * The sensor-fusion engine (FUSION, step 2 of Figure 1): combines the
 * tracked-object table from TRA with the ego pose from LOC, projecting
 * everything onto one world ("3D") coordinate space for the motion
 * planner. Tracked boxes are back-projected through the camera's
 * ground-plane geometry; world-frame velocities come from per-object
 * position history.
 *
 * The paper measures FUSION at ~0.1 ms -- it is glue, not a
 * bottleneck -- and our implementation is correspondingly light.
 */

#ifndef AD_FUSION_FUSION_HH
#define AD_FUSION_FUSION_HH

#include <map>
#include <vector>

#include "fusion/kalman.hh"
#include "sensors/camera.hh"
#include "track/pool.hh"

namespace ad::fusion {

/** Fusion engine tuning. */
struct FusionParams
{
    /**
     * Smooth per-object world states with a constant-velocity Kalman
     * filter instead of raw frame differencing. The planner's
     * spatiotemporal obstacle prediction consumes these velocities.
     */
    bool useKalman = true;
    KalmanParams kalman;
};

/** A tracked object in world coordinates. */
struct FusedObject
{
    int trackId = 0;
    sensors::ObjectClass cls = sensors::ObjectClass::Vehicle;
    Vec2 worldPos;       ///< ground-plane position.
    Vec2 worldVelocity;  ///< m/s in world frame.
    double depth = 0;    ///< distance from ego (m).
    BBox imageBox;       ///< source image box.
};

/** The fused scene handed to the motion planner. */
struct FusedScene
{
    Pose2 egoPose;
    Vec2 egoVelocity;
    std::vector<FusedObject> objects;
    double timestamp = 0;
};

/** Fusion engine: stateful only for velocity estimation. */
class FusionEngine
{
  public:
    /** @param camera camera geometry for back-projection. */
    explicit FusionEngine(const sensors::Camera* camera,
                          const FusionParams& params = {});

    /**
     * Fuse one frame.
     *
     * @param tracks the tracked-object table.
     * @param egoPose LOC's pose estimate.
     * @param dt seconds since the previous fuse() (for velocities).
     * @param timestamp propagated into the scene.
     */
    FusedScene fuse(const std::vector<track::TrackedObject>& tracks,
                    const Pose2& egoPose, double dt, double timestamp);

    /** Wall-clock cost of the last fuse() call (ms). */
    double lastFuseMs() const { return lastFuseMs_; }

  private:
    const sensors::Camera* camera_;
    FusionParams params_;
    std::map<int, Vec2> lastWorldPos_; ///< per-track position history.
    std::map<int, ConstantVelocityKalman> filters_; ///< per-track KF.
    Pose2 lastEgoPose_;
    bool hasLastEgo_ = false;
    double lastFuseMs_ = 0;
};

} // namespace ad::fusion

#endif // AD_FUSION_FUSION_HH
