#include "slam/tiled_store.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace ad::slam {

namespace fs = std::filesystem;

TiledMapStore::TiledMapStore(std::string directory,
                             const TiledStoreParams& params)
    : directory_(std::move(directory)), params_(params)
{
    if (params.tileSize <= 0)
        fatal("TiledMapStore: tile size must be positive");
    if (params.cacheTiles == 0)
        fatal("TiledMapStore: cache must hold at least one tile");
}

TiledMapStore::TileKey
TiledMapStore::keyFor(const Vec2& pos) const
{
    return {static_cast<std::int32_t>(
                std::floor(pos.x / params_.tileSize)),
            static_cast<std::int32_t>(
                std::floor(pos.y / params_.tileSize))};
}

std::string
TiledMapStore::pathFor(const TileKey& key) const
{
    return directory_ + "/tile_" + std::to_string(key.x) + "_" +
           std::to_string(key.y) + ".adm";
}

void
TiledMapStore::build(const PriorMap& map)
{
    fs::create_directories(directory_);
    // Remove stale tiles from a previous build.
    for (const auto& entry : fs::directory_iterator(directory_))
        if (entry.path().extension() == ".adm")
            fs::remove(entry.path());
    index_.clear();
    cache_.clear();
    stats_ = TileStats{};

    // Shard points by tile.
    std::map<TileKey, PriorMap> shards;
    for (const auto& p : map.points()) {
        auto [it, inserted] = shards.try_emplace(keyFor(p.pos));
        it->second.insert(p.pos, p.height, p.desc);
    }

    for (const auto& [key, shard] : shards) {
        std::ofstream os(pathFor(key), std::ios::binary);
        if (!os)
            fatal("TiledMapStore: cannot write ", pathFor(key));
        shard.save(os);
        os.flush();
        const auto bytes = static_cast<std::uint64_t>(os.tellp());
        index_[key] = bytes;
        stats_.bytesOnDisk += bytes;
    }
    stats_.tilesOnDisk = index_.size();
}

void
TiledMapStore::open()
{
    index_.clear();
    cache_.clear();
    stats_ = TileStats{};
    if (!fs::exists(directory_))
        fatal("TiledMapStore: directory ", directory_, " does not exist");
    for (const auto& entry : fs::directory_iterator(directory_)) {
        if (entry.path().extension() != ".adm")
            continue;
        const std::string stem = entry.path().stem().string();
        // Parse "tile_<x>_<y>".
        const auto first = stem.find('_');
        const auto second = stem.find('_', first + 1);
        if (first == std::string::npos || second == std::string::npos)
            continue;
        TileKey key;
        key.x = std::stoi(stem.substr(first + 1, second - first - 1));
        key.y = std::stoi(stem.substr(second + 1));
        const auto bytes =
            static_cast<std::uint64_t>(entry.file_size());
        index_[key] = bytes;
        stats_.bytesOnDisk += bytes;
    }
    stats_.tilesOnDisk = index_.size();
}

const std::vector<MapPoint>&
TiledMapStore::loadTile(const TileKey& key)
{
    // Cache lookup (move-to-front on hit).
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (!(it->first < key) && !(key < it->first)) {
            ++stats_.tileHits;
            cache_.splice(cache_.begin(), cache_, it);
            return cache_.front().second;
        }
    }

    // Page the tile in.
    ++stats_.tileLoads;
    std::vector<MapPoint> points;
    const auto idx = index_.find(key);
    if (idx != index_.end()) {
        std::ifstream is(pathFor(key), std::ios::binary);
        if (!is)
            fatal("TiledMapStore: cannot read ", pathFor(key));
        const PriorMap tile = PriorMap::load(is);
        points = tile.points();
        stats_.bytesRead += idx->second;
    }
    cache_.emplace_front(key, std::move(points));
    while (cache_.size() > params_.cacheTiles)
        cache_.pop_back();
    return cache_.front().second;
}

std::vector<MapPoint>
TiledMapStore::queryRadius(const Vec2& center, double radius)
{
    std::vector<MapPoint> result;
    const double r2 = radius * radius;
    const auto lo = keyFor({center.x - radius, center.y - radius});
    const auto hi = keyFor({center.x + radius, center.y + radius});
    for (std::int32_t tx = lo.x; tx <= hi.x; ++tx) {
        for (std::int32_t ty = lo.y; ty <= hi.y; ++ty) {
            const auto& points = loadTile({tx, ty});
            for (const auto& p : points)
                if ((p.pos - center).squaredNorm() <= r2)
                    result.push_back(p);
        }
    }
    return result;
}

std::size_t
TiledMapStore::prefetch(const Vec2& pos, const Vec2& velocity,
                        double horizonS)
{
    // Walk the predicted path at half-tile steps so no tile the
    // segment crosses is skipped, deduplicating consecutive keys.
    const Vec2 end{pos.x + velocity.x * horizonS,
                   pos.y + velocity.y * horizonS};
    const double dx = end.x - pos.x;
    const double dy = end.y - pos.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    const int steps =
        1 + static_cast<int>(dist / (params_.tileSize * 0.5));
    std::size_t loaded = 0;
    TileKey last{INT32_MIN, INT32_MIN};
    for (int s = 0; s <= steps; ++s) {
        const double f = static_cast<double>(s) / steps;
        const TileKey key =
            keyFor({pos.x + dx * f, pos.y + dy * f});
        if (!(key < last) && !(last < key))
            continue;
        last = key;
        bool warm = false;
        for (const auto& entry : cache_) {
            if (!(entry.first < key) && !(key < entry.first)) {
                warm = true;
                break;
            }
        }
        if (warm) {
            ++stats_.prefetchHits;
            continue;
        }
        loadTile(key);
        ++stats_.prefetchLoads;
        ++loaded;
    }
    return loaded;
}

void
TiledMapStore::dropCache()
{
    cache_.clear();
}

} // namespace ad::slam
