/**
 * @file
 * Rigid-2D pose estimation from map-point correspondences: the solver
 * core of the localization engine. Each matched feature yields a
 * (world-position, camera-local-position) pair; the ego pose is the
 * SE(2) transform aligning them, estimated in closed form (weighted
 * Procrustes) inside a RANSAC loop for outlier rejection.
 */

#ifndef AD_SLAM_POSE_SOLVER_HH
#define AD_SLAM_POSE_SOLVER_HH

#include <vector>

#include "common/geometry.hh"
#include "common/random.hh"

namespace ad {
class ThreadPool;
}

namespace ad::slam {

/** One world<->camera-frame correspondence. */
struct Correspondence
{
    Vec2 world;   ///< map-point ground position.
    Vec2 local;   ///< estimated position in the ego frame.
    double weight = 1.0;
};

/**
 * Closed-form weighted rigid registration: the pose P minimizing
 * sum_i w_i | world_i - P.transform(local_i) |^2.
 *
 * Requires at least 2 correspondences with non-degenerate geometry;
 * returns false otherwise.
 */
bool solveRigid2D(const std::vector<Correspondence>& corr, Pose2& pose);

/** Result of the robust pose estimate. */
struct RansacResult
{
    bool ok = false;
    Pose2 pose;
    int inliers = 0;
    std::vector<std::uint32_t> inlierIndices;
};

/** RANSAC knobs. */
struct RansacParams
{
    int iterations = 50;
    double inlierThreshold = 0.5; ///< meters of world-space residual.
    int minInliers = 6;
};

/**
 * RANSAC over minimal 2-point samples with a final weighted refit on
 * the inlier set.
 *
 * All minimal samples are drawn from rng up front (the stream advances
 * exactly as in the serial implementation); the per-iteration inlier
 * counting then shards across the pool when one is given. The winner
 * is the lowest-iteration candidate with the maximal inlier count --
 * the same hypothesis serial strictly-greater updating selects -- so
 * the result is identical for any pool/thread configuration.
 *
 * @param pool optional worker pool for the counting pass.
 * @param maxThreads cap on concurrent shards (<= 1 means serial).
 */
RansacResult ransacPose(const std::vector<Correspondence>& corr,
                        const RansacParams& params, Rng& rng,
                        ThreadPool* pool = nullptr,
                        std::size_t maxThreads = 1);

} // namespace ad::slam

#endif // AD_SLAM_POSE_SOLVER_HH
