/**
 * @file
 * Prior-map construction: a "mapping drive" along the road renders
 * frames from known poses, extracts ORB features and anchors them to
 * world geometry -- landmark boards (known planes) or the ground plane
 * (lane-marking corners). This mirrors how prior-map localization
 * systems build their maps from survey vehicles (Section 2.4.3).
 */

#ifndef AD_SLAM_MAPPING_HH
#define AD_SLAM_MAPPING_HH

#include <vector>

#include "sensors/camera.hh"
#include "slam/map.hh"
#include "vision/orb.hh"

namespace ad::slam {

/** Mapping-drive knobs. */
struct MappingParams
{
    double poseSpacing = 4.0;     ///< survey pose spacing along x (m).
    double dedupeRadius = 0.4;    ///< merge radius for repeated points.
    int dedupeHamming = 48;       ///< merge descriptor gate.
    vision::OrbParams orb;
};

/**
 * Build a prior map by driving the given lane of the world's road.
 * Actors are excluded from the survey render (they are transient).
 *
 * @param world the world to survey.
 * @param camera camera geometry used for the survey (should match the
 *        runtime camera).
 * @param lane lane index to drive.
 * @param params mapping knobs.
 */
PriorMap buildPriorMap(const sensors::World& world,
                       const sensors::Camera& camera, int lane,
                       const MappingParams& params = {});

} // namespace ad::slam

#endif // AD_SLAM_MAPPING_HH
