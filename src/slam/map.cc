#include "slam/map.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace ad::slam {

PriorMap::PriorMap(double cellSize) : cellSize_(cellSize)
{
    if (cellSize <= 0)
        panic("PriorMap: cell size must be positive");
}

std::int64_t
PriorMap::cellKey(const Vec2& pos) const
{
    const auto cx = static_cast<std::int64_t>(
        std::floor(pos.x / cellSize_));
    const auto cy = static_cast<std::int64_t>(
        std::floor(pos.y / cellSize_));
    return (cx << 32) ^ (cy & 0xffffffffLL);
}

int
PriorMap::insert(const Vec2& pos, float height,
                 const vision::Descriptor& desc)
{
    MapPoint p;
    p.id = static_cast<std::int32_t>(points_.size());
    p.pos = pos;
    p.height = height;
    p.desc = desc;
    points_.push_back(p);
    index_.push_back({cellKey(pos), static_cast<std::uint32_t>(p.id)});
    indexDirty_ = true;
    return p.id;
}

void
PriorMap::ensureIndex() const
{
    if (!indexDirty_)
        return;
    std::sort(index_.begin(), index_.end());
    indexDirty_ = false;
}

std::vector<std::uint32_t>
PriorMap::queryRadius(const Vec2& center, double radius) const
{
    ensureIndex();
    std::vector<std::uint32_t> result;
    const auto cx0 = static_cast<std::int64_t>(
        std::floor((center.x - radius) / cellSize_));
    const auto cx1 = static_cast<std::int64_t>(
        std::floor((center.x + radius) / cellSize_));
    const auto cy0 = static_cast<std::int64_t>(
        std::floor((center.y - radius) / cellSize_));
    const auto cy1 = static_cast<std::int64_t>(
        std::floor((center.y + radius) / cellSize_));
    const double r2 = radius * radius;
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
            const std::int64_t key = (cx << 32) ^ (cy & 0xffffffffLL);
            auto lo = std::lower_bound(index_.begin(), index_.end(),
                                       CellEntry{key, 0});
            for (; lo != index_.end() && lo->key == key; ++lo) {
                const MapPoint& p = points_[lo->index];
                if ((p.pos - center).squaredNorm() <= r2)
                    result.push_back(lo->index);
            }
        }
    }
    return result;
}

int
PriorMap::findSimilar(const Vec2& pos, double radius,
                      const vision::Descriptor& desc, int maxHamming) const
{
    int best = -1;
    int bestDist = maxHamming + 1;
    for (const auto idx : queryRadius(pos, radius)) {
        const int d = points_[idx].desc.hamming(desc);
        if (d < bestDist) {
            bestDist = d;
            best = static_cast<int>(idx);
        }
    }
    return best;
}

void
PriorMap::updateDescriptor(std::size_t index,
                           const vision::Descriptor& desc)
{
    if (index >= points_.size())
        panic("PriorMap::updateDescriptor: index ", index, " out of range");
    points_[index].desc = desc;
}

std::uint64_t
PriorMap::storageBytes() const
{
    // Serialized record: id(4) + pos(16) + height(4) + descriptor(32).
    return 8 + points_.size() * (4 + 16 + 4 + 32);
}

namespace {

template <typename T>
void
writeRaw(std::ostream& os, const T& value)
{
    os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T
readRaw(std::istream& is)
{
    T value{};
    is.read(reinterpret_cast<char*>(&value), sizeof(T));
    return value;
}

} // namespace

void
PriorMap::save(std::ostream& os) const
{
    writeRaw<std::uint64_t>(os, points_.size());
    for (const auto& p : points_) {
        writeRaw(os, p.id);
        writeRaw(os, p.pos.x);
        writeRaw(os, p.pos.y);
        writeRaw(os, p.height);
        for (const auto w : p.desc.words)
            writeRaw(os, w);
    }
}

PriorMap
PriorMap::load(std::istream& is)
{
    PriorMap map;
    const auto n = readRaw<std::uint64_t>(is);
    for (std::uint64_t i = 0; i < n; ++i) {
        MapPoint p;
        p.id = readRaw<std::int32_t>(is);
        p.pos.x = readRaw<double>(is);
        p.pos.y = readRaw<double>(is);
        p.height = readRaw<float>(is);
        for (auto& w : p.desc.words)
            w = readRaw<std::uint64_t>(is);
        map.points_.push_back(p);
        map.index_.push_back({map.cellKey(p.pos),
                              static_cast<std::uint32_t>(i)});
    }
    map.indexDirty_ = true;
    if (!is)
        fatal("PriorMap::load: truncated map stream");
    return map;
}

double
PriorMap::pointsPerMeter() const
{
    if (points_.size() < 2)
        return 0.0;
    double lo = points_[0].pos.x;
    double hi = lo;
    for (const auto& p : points_) {
        lo = std::min(lo, p.pos.x);
        hi = std::max(hi, p.pos.x);
    }
    if (hi - lo < 1.0)
        return static_cast<double>(points_.size());
    return static_cast<double>(points_.size()) / (hi - lo);
}

} // namespace ad::slam
