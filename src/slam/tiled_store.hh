/**
 * @file
 * Tiled on-disk prior-map store -- the storage-constraint substrate
 * (Section 2.4.3) made concrete. Country-scale prior maps (41 TB for
 * the US) cannot live in memory; vehicles page map *tiles* from local
 * storage as they drive. This store shards a PriorMap into
 * fixed-size geographic tiles on disk, serves radius queries through
 * an LRU-cached tile loader, and reports the I/O statistics (tiles
 * touched, bytes read, hit rate) that on-vehicle storage needs to be
 * provisioned for.
 */

#ifndef AD_SLAM_TILED_STORE_HH
#define AD_SLAM_TILED_STORE_HH

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "slam/map.hh"

namespace ad::slam {

/** Store construction parameters. */
struct TiledStoreParams
{
    double tileSize = 50.0;   ///< tile edge length (m).
    std::size_t cacheTiles = 8; ///< LRU capacity (tiles in memory).
};

/** Paging statistics. */
struct TileStats
{
    std::uint64_t tileLoads = 0;   ///< disk reads.
    std::uint64_t tileHits = 0;    ///< cache hits.
    std::uint64_t bytesRead = 0;   ///< serialized bytes paged in.
    std::uint64_t tilesOnDisk = 0;
    std::uint64_t bytesOnDisk = 0;
    std::uint64_t prefetchLoads = 0; ///< tiles paged in by prefetch().
    std::uint64_t prefetchHits = 0;  ///< prefetch() tiles already warm.

    double
    hitRate() const
    {
        const auto total = tileLoads + tileHits;
        return total ? static_cast<double>(tileHits) / total : 0.0;
    }
};

/**
 * A PriorMap sharded into on-disk tiles with an LRU page cache.
 *
 * The store owns its directory contents: build() writes one file per
 * tile, and queries page tiles back through the cache.
 */
class TiledMapStore
{
  public:
    /**
     * @param directory directory for tile files (created by build()).
     * @param params tiling/caching knobs.
     */
    TiledMapStore(std::string directory,
                  const TiledStoreParams& params = {});

    /** Shard a map into tile files; replaces existing tiles. */
    void build(const PriorMap& map);

    /** Open an existing store (reads the tile index). */
    void open();

    /**
     * All map points within radius of a position, paging any needed
     * tiles through the cache.
     */
    std::vector<MapPoint> queryRadius(const Vec2& center, double radius);

    /**
     * Pose-driven prefetch: warm every tile under the straight-line
     * path from `pos` to `pos + velocity * horizonS` (the pose the
     * ego motion predicts `horizonS` seconds ahead), so the
     * localization query that arrives when the vehicle gets there
     * hits the page cache instead of stalling on disk. Tiles paged
     * in count as prefetchLoads, already-warm ones as prefetchHits.
     *
     * @return tiles newly paged in by this call.
     */
    std::size_t prefetch(const Vec2& pos, const Vec2& velocity,
                         double horizonS);

    const TileStats& stats() const { return stats_; }

    /** Forget cached tiles (keeps disk contents and disk stats). */
    void dropCache();

  private:
    struct TileKey
    {
        std::int32_t x;
        std::int32_t y;
        bool operator<(const TileKey& o) const
        {
            return x != o.x ? x < o.x : y < o.y;
        }
    };

    TileKey keyFor(const Vec2& pos) const;
    std::string pathFor(const TileKey& key) const;
    const std::vector<MapPoint>& loadTile(const TileKey& key);

    std::string directory_;
    TiledStoreParams params_;
    std::map<TileKey, std::uint64_t> index_; ///< key -> bytes on disk.
    // LRU cache: most recent at the front.
    std::list<std::pair<TileKey, std::vector<MapPoint>>> cache_;
    TileStats stats_;
};

} // namespace ad::slam

#endif // AD_SLAM_TILED_STORE_HH
