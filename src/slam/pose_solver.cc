#include "slam/pose_solver.hh"

#include <cmath>

#include "common/parallel_for.hh"

namespace ad::slam {

bool
solveRigid2D(const std::vector<Correspondence>& corr, Pose2& pose)
{
    if (corr.size() < 2)
        return false;

    double wSum = 0;
    Vec2 worldC{0, 0};
    Vec2 localC{0, 0};
    for (const auto& c : corr) {
        wSum += c.weight;
        worldC += c.world * c.weight;
        localC += c.local * c.weight;
    }
    if (wSum <= 0)
        return false;
    worldC = worldC / wSum;
    localC = localC / wSum;

    // theta = atan2( sum w (l x w'), sum w (l . w') ) over centered
    // vectors l and w'.
    double sinSum = 0;
    double cosSum = 0;
    for (const auto& c : corr) {
        const Vec2 l = c.local - localC;
        const Vec2 w = c.world - worldC;
        sinSum += c.weight * l.cross(w);
        cosSum += c.weight * l.dot(w);
    }
    if (std::fabs(sinSum) < 1e-12 && std::fabs(cosSum) < 1e-12)
        return false; // degenerate (all points coincident)

    const double theta = std::atan2(sinSum, cosSum);
    const Vec2 t = worldC - localC.rotated(theta);
    pose = Pose2(t, theta);
    return true;
}

RansacResult
ransacPose(const std::vector<Correspondence>& corr,
           const RansacParams& params, Rng& rng, ThreadPool* pool,
           std::size_t maxThreads)
{
    RansacResult result;
    const int n = static_cast<int>(corr.size());
    if (n < params.minInliers || params.iterations <= 0)
        return result;

    const double thresh2 =
        params.inlierThreshold * params.inlierThreshold;

    // Pass 1 (serial): draw every minimal sample and solve its
    // candidate pose, consuming the rng stream exactly as the
    // iteration loop always has.
    const std::size_t iterations =
        static_cast<std::size_t>(params.iterations);
    std::vector<Pose2> candidates(iterations);
    std::vector<char> valid(iterations, 0);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        const int i = rng.uniformInt(0, n - 1);
        int j = rng.uniformInt(0, n - 2);
        if (j >= i)
            ++j;
        valid[iter] = solveRigid2D({corr[i], corr[j]}, candidates[iter])
            ? 1
            : 0;
    }

    // Pass 2 (parallel): count inliers per candidate. Iterations write
    // disjoint slots, so sharding cannot change any count.
    std::vector<int> counts(iterations, 0);
    parallelFor(
        pool, 0, iterations, 8,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t iter = lo; iter < hi; ++iter) {
                if (!valid[iter])
                    continue;
                const Pose2& candidate = candidates[iter];
                int count = 0;
                for (int k = 0; k < n; ++k) {
                    const Vec2 predicted =
                        candidate.transform(corr[k].local);
                    if ((predicted - corr[k].world).squaredNorm() <=
                        thresh2)
                        ++count;
                }
                counts[iter] = count;
            }
        },
        maxThreads);

    // Winner: lowest iteration with the maximal count -- what serial
    // strictly-greater updating selects.
    std::size_t best = iterations;
    int bestCount = 0;
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        if (counts[iter] > bestCount) {
            bestCount = counts[iter];
            best = iter;
        }
    }
    if (best == iterations || bestCount < params.minInliers)
        return result;

    std::vector<std::uint32_t> bestInliers;
    bestInliers.reserve(static_cast<std::size_t>(bestCount));
    for (int k = 0; k < n; ++k) {
        const Vec2 predicted = candidates[best].transform(corr[k].local);
        if ((predicted - corr[k].world).squaredNorm() <= thresh2)
            bestInliers.push_back(static_cast<std::uint32_t>(k));
    }

    // Weighted refit on all inliers.
    std::vector<Correspondence> inlierCorr;
    inlierCorr.reserve(bestInliers.size());
    for (const auto idx : bestInliers)
        inlierCorr.push_back(corr[idx]);
    Pose2 refined;
    if (!solveRigid2D(inlierCorr, refined))
        return result;

    result.ok = true;
    result.pose = refined;
    result.inliers = static_cast<int>(bestInliers.size());
    result.inlierIndices = std::move(bestInliers);
    return result;
}

} // namespace ad::slam
