#include "slam/pose_solver.hh"

#include <cmath>

namespace ad::slam {

bool
solveRigid2D(const std::vector<Correspondence>& corr, Pose2& pose)
{
    if (corr.size() < 2)
        return false;

    double wSum = 0;
    Vec2 worldC{0, 0};
    Vec2 localC{0, 0};
    for (const auto& c : corr) {
        wSum += c.weight;
        worldC += c.world * c.weight;
        localC += c.local * c.weight;
    }
    if (wSum <= 0)
        return false;
    worldC = worldC / wSum;
    localC = localC / wSum;

    // theta = atan2( sum w (l x w'), sum w (l . w') ) over centered
    // vectors l and w'.
    double sinSum = 0;
    double cosSum = 0;
    for (const auto& c : corr) {
        const Vec2 l = c.local - localC;
        const Vec2 w = c.world - worldC;
        sinSum += c.weight * l.cross(w);
        cosSum += c.weight * l.dot(w);
    }
    if (std::fabs(sinSum) < 1e-12 && std::fabs(cosSum) < 1e-12)
        return false; // degenerate (all points coincident)

    const double theta = std::atan2(sinSum, cosSum);
    const Vec2 t = worldC - localC.rotated(theta);
    pose = Pose2(t, theta);
    return true;
}

RansacResult
ransacPose(const std::vector<Correspondence>& corr,
           const RansacParams& params, Rng& rng)
{
    RansacResult result;
    const int n = static_cast<int>(corr.size());
    if (n < params.minInliers)
        return result;

    const double thresh2 =
        params.inlierThreshold * params.inlierThreshold;
    std::vector<std::uint32_t> bestInliers;

    for (int iter = 0; iter < params.iterations; ++iter) {
        const int i = rng.uniformInt(0, n - 1);
        int j = rng.uniformInt(0, n - 2);
        if (j >= i)
            ++j;
        Pose2 candidate;
        if (!solveRigid2D({corr[i], corr[j]}, candidate))
            continue;

        std::vector<std::uint32_t> inliers;
        for (int k = 0; k < n; ++k) {
            const Vec2 predicted = candidate.transform(corr[k].local);
            if ((predicted - corr[k].world).squaredNorm() <= thresh2)
                inliers.push_back(static_cast<std::uint32_t>(k));
        }
        if (inliers.size() > bestInliers.size())
            bestInliers = std::move(inliers);
    }

    if (static_cast<int>(bestInliers.size()) < params.minInliers)
        return result;

    // Weighted refit on all inliers.
    std::vector<Correspondence> inlierCorr;
    inlierCorr.reserve(bestInliers.size());
    for (const auto idx : bestInliers)
        inlierCorr.push_back(corr[idx]);
    Pose2 refined;
    if (!solveRigid2D(inlierCorr, refined))
        return result;

    result.ok = true;
    result.pose = refined;
    result.inliers = static_cast<int>(bestInliers.size());
    result.inlierIndices = std::move(bestInliers);
    return result;
}

} // namespace ad::slam
