/**
 * @file
 * The localization engine (LOC) -- an ORB-SLAM-flavored prior-map
 * localizer implementing Figure 5 of the paper: ORB feature extraction
 * (oFAST + rBRIEF), pose prediction with a constant-motion model,
 * descriptor matching against the prior map, robust pose solve, map
 * update, periodic loop closing, and *relocalization* with a widened
 * search when tracking fails.
 *
 * Relocalization is the architectural heart of the paper's
 * predictability argument: its widened search makes LOC latency heavily
 * variable (CPU mean 40.8 ms vs 99.99th-percentile 294.2 ms in Figure
 * 10), which is why tail latency -- not mean -- must be the metric.
 */

#ifndef AD_SLAM_LOCALIZER_HH
#define AD_SLAM_LOCALIZER_HH

#include <optional>

#include "common/random.hh"
#include "sensors/camera.hh"
#include "sensors/odometry.hh"
#include "slam/map.hh"
#include "slam/pose_solver.hh"
#include "vision/orb.hh"
#include "vision/spatial_matcher.hh"

namespace ad::slam {

/** Localizer tuning. */
struct LocalizerParams
{
    vision::OrbParams orb;          ///< FE settings.
    double matchRadius = 30.0;      ///< normal map-query radius (m).
    double relocRadius = 120.0;     ///< relocalization query radius (m).
    int maxHamming = 64;            ///< descriptor match gate.
    double matchRatio = 0.85;       ///< best/second-best ratio test.
    /**
     * Pixel window around each map point's predicted projection for
     * tracking/loop-closing matches (projection-guided matching).
     * Relocalization always matches globally: its predicted pose is
     * untrustworthy by definition, so projections mean nothing.
     */
    double matchWindowPx = 64.0;
    RansacParams ransac{100, 0.45, 8};
    RansacParams relocRansac{300, 0.6, 8};
    /**
     * Minimum accepted inliers anchored above the ground plane.
     * Ground features (lane-marking dash corners) repeat every dash
     * period, so a dash-only consensus can lock onto a pose shifted by
     * a multiple of the period (perceptual aliasing); elevated
     * landmark-board features are uniquely textured and break the tie.
     */
    int minElevatedInliers = 3;
    int loopCloseInterval = 120;    ///< frames between loop closings.
    double loopCloseRadius = 60.0;  ///< loop-closing query radius (m).
    bool mapUpdate = true;          ///< refresh stale descriptors.
    int mapUpdateHamming = 16;      ///< refresh when farther than this.
    double maxPoseJump = 5.0;       ///< sanity gate vs prediction (m).

    /**
     * Worker threads for the RANSAC counting pass (the `nn.threads`
     * knob; LOC has no DNN, so this is its compute-sharding analog).
     * 1 = serial; <= 0 = hardware concurrency. Pose results are
     * identical for any value.
     */
    int threads = 1;
};

/** Wall-clock attribution of one localize() call (Figure 7's FE split). */
struct LocalizerTimings
{
    double feMs = 0;     ///< feature extraction (oFAST + rBRIEF).
    double matchMs = 0;  ///< map query + descriptor matching.
    double solveMs = 0;  ///< RANSAC + refit.
    double relocMs = 0;  ///< relocalization (when triggered).
    double loopMs = 0;   ///< loop closing (when scheduled).
    double totalMs = 0;
};

/** Result of one frame localization. */
struct LocResult
{
    bool ok = false;          ///< pose solved this frame.
    bool relocalized = false; ///< wide search was needed.
    bool loopClosed = false;  ///< loop-closing pass ran.
    bool lost = false;        ///< fell back to dead reckoning.
    Pose2 pose;
    int candidates = 0;       ///< map points considered.
    int matches = 0;
    int inliers = 0;
    LocalizerTimings timings;
    vision::OrbProfile orbProfile;
};

/**
 * Prior-map localizer. Holds non-owning pointers to the map and camera
 * model, both of which must outlive the localizer.
 */
class Localizer
{
  public:
    /**
     * @param map prior map to localize against.
     * @param camera camera geometry (for projection and depth).
     * @param params tuning.
     * @param seed RANSAC random stream seed.
     */
    Localizer(const PriorMap* map, const sensors::Camera* camera,
              const LocalizerParams& params, std::uint64_t seed = 1);

    /** (Re)initialize the motion model at a known pose. */
    void reset(const Pose2& pose, const Vec2& velocity = {0, 0});

    /**
     * Provide wheel-odometry for the interval preceding the next
     * localize() call; the pose prediction then integrates the
     * unicycle model instead of assuming constant velocity (better
     * through turns and speed changes). Consumed by one localize().
     */
    void feedOdometry(const sensors::OdometryReading& odometry);

    /**
     * Localize one camera frame.
     *
     * @param image the frame.
     * @param dt seconds since the previous frame (for prediction).
     */
    LocResult localize(const Image& image, double dt);

    /** Current pose estimate (valid after reset()/localize()). */
    const Pose2& pose() const { return pose_; }

    /** Mutable map access for map updates; null if map is read-only. */
    void setMutableMap(PriorMap* map) { mutableMap_ = map; }

    const LocalizerParams& params() const { return params_; }

    /** Number of relocalizations since construction. */
    int relocalizationCount() const { return relocCount_; }

  private:
    /**
     * Gather visible map points around a query pose and match the
     * frame's features against them; produces correspondences with
     * ground-plane depth estimates.
     *
     * @param matcher spatially indexed frame features; pass nullptr
     *        to force global brute-force matching (relocalization).
     */
    void buildCorrespondences(const std::vector<vision::Feature>& features,
                              const vision::SpatialMatcher* matcher,
                              const Pose2& queryPose, double radius,
                              std::vector<Correspondence>& corr,
                              std::vector<std::uint32_t>& mapIndices,
                              std::vector<int>& featureIndices,
                              int& candidateCount) const;

    const PriorMap* map_;
    PriorMap* mutableMap_ = nullptr;
    const sensors::Camera* camera_;
    LocalizerParams params_;
    vision::OrbExtractor orb_;
    Rng rng_;

    Pose2 pose_;
    Vec2 velocity_{0, 0};
    std::optional<sensors::OdometryReading> pendingOdometry_;
    bool initialized_ = false;
    int frameCount_ = 0;
    int relocCount_ = 0;
};

} // namespace ad::slam

#endif // AD_SLAM_LOCALIZER_HH
