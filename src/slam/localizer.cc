#include "slam/localizer.hh"

#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "common/time.hh"
#include "obs/trace.hh"

namespace ad::slam {

namespace {

/** The `threads` knob resolved: <= 0 means hardware concurrency. */
std::size_t
resolvedThreads(int requested)
{
    if (requested > 0)
        return static_cast<std::size_t>(requested);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** The pool for the RANSAC counting pass; null when serial. */
ThreadPool*
solverPool(int requested)
{
    return resolvedThreads(requested) > 1 ? &sharedWorkerPool() : nullptr;
}

} // namespace

Localizer::Localizer(const PriorMap* map, const sensors::Camera* camera,
                     const LocalizerParams& params, std::uint64_t seed)
    : map_(map), camera_(camera), params_(params), orb_(params.orb),
      rng_(seed)
{
    if (!map || !camera)
        fatal("Localizer: map and camera must be non-null");
}

void
Localizer::reset(const Pose2& pose, const Vec2& velocity)
{
    pose_ = pose;
    velocity_ = velocity;
    pendingOdometry_.reset();
    initialized_ = true;
}

void
Localizer::feedOdometry(const sensors::OdometryReading& odometry)
{
    pendingOdometry_ = odometry;
}

void
Localizer::buildCorrespondences(
    const std::vector<vision::Feature>& features,
    const vision::SpatialMatcher* matcher, const Pose2& queryPose,
    double radius, std::vector<Correspondence>& corr,
    std::vector<std::uint32_t>& mapIndices,
    std::vector<int>& featureIndices, int& candidateCount) const
{
    // Gather map points in range that project into the current view.
    const auto nearby = map_->queryRadius(queryPose.pos, radius);
    std::vector<std::uint32_t> visible;
    std::vector<vision::Descriptor> candDescs;
    std::vector<vision::ProjectedCandidate> projected;
    for (const auto idx : nearby) {
        const MapPoint& p = map_->point(idx);
        double u, v, depth;
        if (!camera_->project(queryPose, p.pos, p.height, u, v, depth))
            continue;
        if (depth > camera_->farPlane())
            continue;
        // Allow margin outside the frame: the prediction may be off.
        const double margin = camera_->width() * 0.2;
        if (u < -margin || u > camera_->width() + margin || v < -margin ||
            v > camera_->height() + margin)
            continue;
        visible.push_back(idx);
        candDescs.push_back(p.desc);
        vision::ProjectedCandidate cand;
        cand.u = static_cast<float>(u);
        cand.v = static_cast<float>(v);
        cand.desc = p.desc;
        projected.push_back(cand);
    }
    candidateCount = static_cast<int>(visible.size());
    if (visible.empty())
        return;

    // Pairs of (frame feature index, candidate index).
    std::vector<std::pair<int, int>> pairs;
    if (matcher) {
        // Projection-guided: search only the window around each map
        // point's predicted position.
        vision::SpatialMatchParams smp;
        smp.windowRadius = params_.matchWindowPx;
        smp.maxHamming = params_.maxHamming;
        smp.ratio = params_.matchRatio;
        for (const auto& m : matcher->match(projected, smp))
            pairs.push_back({m.featureIndex, m.candidateIndex});
    } else {
        // Global matching: the relocalization path.
        std::vector<vision::Descriptor> frameDescs;
        frameDescs.reserve(features.size());
        for (const auto& f : features)
            frameDescs.push_back(f.desc);
        for (const auto& m : vision::matchDescriptors(
                 frameDescs, candDescs, params_.maxHamming,
                 params_.matchRatio))
            pairs.push_back({m.indexA, m.indexB});
    }

    const double horizon = camera_->horizon();
    const double focal = camera_->focal();
    const double camH = camera_->cameraHeight();
    for (const auto& [featureIdx, candidateIdx] : pairs) {
        const vision::Feature& f = features[featureIdx];
        const MapPoint& p = map_->point(visible[candidateIdx]);
        // Ground-plane depth from the image row and the map point's
        // known height: v - horizon = f * (camH - z) / depth.
        const double dv = f.kp.y - horizon;
        const double dz = camH - p.height;
        if (std::fabs(dv) < 2.0 || dv * dz <= 0)
            continue; // depth unobservable near the horizon
        const double depth = focal * dz / dv;
        if (depth < camera_->nearPlane() || depth > camera_->farPlane())
            continue;
        const double lateral =
            (camera_->width() / 2.0 - f.kp.x) * depth / focal;
        Correspondence c;
        c.world = p.pos;
        c.local = {depth, lateral};
        // Depth confidence falls toward the horizon.
        c.weight = std::min(1.0, std::fabs(dv) / 20.0);
        corr.push_back(c);
        mapIndices.push_back(visible[candidateIdx]);
        featureIndices.push_back(featureIdx);
    }
}

LocResult
Localizer::localize(const Image& image, double dt)
{
    if (!initialized_)
        panic("Localizer::localize called before reset()");

    LocResult result;
    Stopwatch total;
    ++frameCount_;

    // --- Feature extraction (the FE block of Figure 5). ---
    std::vector<vision::Feature> features;
    {
        obs::TraceSpan span(obs::tracer(), "loc.fe", "loc");
        ScopedTimer timer(result.timings.feMs);
        features = orb_.extract(image, &result.orbProfile);
    }

    // Spatial index over the frame features for projection-guided
    // matching (tracking and loop closing; relocalization matches
    // globally).
    const vision::SpatialMatcher matcher(features, image.width(),
                                         image.height());

    // --- Pose prediction: odometry integration when available,
    // constant motion model otherwise (Figure 5). ---
    Pose2 predicted(pose_.pos + velocity_ * dt, pose_.theta);
    if (pendingOdometry_) {
        predicted = sensors::integrateOdometry(pose_, *pendingOdometry_);
        pendingOdometry_.reset();
    }

    // --- Matching against the prior map. ---
    std::vector<Correspondence> corr;
    std::vector<std::uint32_t> mapIndices;
    std::vector<int> featureIndices;
    {
        obs::TraceSpan span(obs::tracer(), "loc.match", "loc");
        ScopedTimer timer(result.timings.matchMs);
        buildCorrespondences(features, &matcher, predicted,
                             params_.matchRadius, corr, mapIndices,
                             featureIndices, result.candidates);
    }
    result.matches = static_cast<int>(corr.size());

    // Accept a solution only if enough inliers sit above the ground
    // plane: see LocalizerParams::minElevatedInliers.
    const auto validate = [this](RansacResult& r,
                                 const std::vector<std::uint32_t>& mapIdx) {
        if (!r.ok)
            return;
        int elevated = 0;
        for (const auto k : r.inlierIndices)
            elevated += map_->point(mapIdx[k]).height > 0.3f;
        if (elevated < params_.minElevatedInliers)
            r.ok = false;
    };

    // --- Robust pose solve. ---
    RansacResult solved;
    {
        obs::TraceSpan span(obs::tracer(), "loc.solve", "loc");
        ScopedTimer timer(result.timings.solveMs);
        solved = ransacPose(corr, params_.ransac, rng_,
                            solverPool(params_.threads),
                            resolvedThreads(params_.threads));
        validate(solved, mapIndices);
        if (solved.ok &&
            solved.pose.distanceTo(predicted) > params_.maxPoseJump)
            solved.ok = false; // reject wild jumps near the prediction
    }

    // --- Relocalization: widened search (the tail-latency source). ---
    if (!solved.ok) {
        obs::TraceSpan span(obs::tracer(), "loc.reloc", "loc");
        ScopedTimer timer(result.timings.relocMs);
        result.relocalized = true;
        ++relocCount_;
        corr.clear();
        mapIndices.clear();
        featureIndices.clear();
        int candidates = 0;
        buildCorrespondences(features, nullptr, predicted,
                             params_.relocRadius, corr, mapIndices,
                             featureIndices, candidates);
        result.candidates += candidates;
        result.matches = static_cast<int>(corr.size());
        solved = ransacPose(corr, params_.relocRansac, rng_,
                            solverPool(params_.threads),
                            resolvedThreads(params_.threads));
        validate(solved, mapIndices);
    }

    if (solved.ok) {
        result.ok = true;
        // Velocity for the constant-motion model. Never differentiate
        // across a relocalization jump (the pre-jump pose is wrong by
        // construction), and clamp to physical speeds so one bad
        // solve cannot launch the dead-reckoning fallback into space.
        if (dt > 1e-6 && !result.relocalized) {
            Vec2 v = (solved.pose.pos - pose_.pos) / dt;
            constexpr double maxSpeed = 70.0; // m/s
            const double speed = v.norm();
            if (speed > maxSpeed)
                v = v * (maxSpeed / speed);
            velocity_ = v;
        }
        pose_ = solved.pose;
        result.inliers = solved.inliers;

        // --- Map update: refresh descriptors that drifted (e.g.
        // weather/appearance change in the paper's motivation). ---
        if (params_.mapUpdate && mutableMap_) {
            for (const auto k : solved.inlierIndices) {
                const auto mapIdx = mapIndices[k];
                const auto& fresh = features[featureIndices[k]].desc;
                if (map_->point(mapIdx).desc.hamming(fresh) >
                    params_.mapUpdateHamming)
                    mutableMap_->updateDescriptor(mapIdx, fresh);
            }
        }
    } else {
        // Dead reckoning: hold the constant-motion prediction.
        result.lost = true;
        pose_ = predicted;
    }
    result.pose = pose_;

    // --- Periodic loop closing: an extra wide matching pass. ---
    if (params_.loopCloseInterval > 0 &&
        frameCount_ % params_.loopCloseInterval == 0) {
        obs::TraceSpan span(obs::tracer(), "loc.loop", "loc");
        ScopedTimer timer(result.timings.loopMs);
        result.loopClosed = true;
        std::vector<Correspondence> loopCorr;
        std::vector<std::uint32_t> loopMapIdx;
        std::vector<int> loopFeatIdx;
        int candidates = 0;
        buildCorrespondences(features, &matcher, pose_,
                             params_.loopCloseRadius, loopCorr,
                             loopMapIdx, loopFeatIdx, candidates);
        const RansacResult loop =
            ransacPose(loopCorr, params_.ransac, rng_,
                       solverPool(params_.threads),
                       resolvedThreads(params_.threads));
        if (loop.ok && loop.pose.distanceTo(pose_) < params_.maxPoseJump) {
            // Blend the loop-closing correction gently.
            pose_.pos = pose_.pos * 0.8 + loop.pose.pos * 0.2;
            pose_.theta = wrapAngle(
                pose_.theta + 0.2 * wrapAngle(loop.pose.theta -
                                              pose_.theta));
            result.pose = pose_;
        }
    }

    result.timings.totalMs = total.elapsedMs();
    return result;
}

} // namespace ad::slam
