#include "slam/mapping.hh"

#include <cmath>

namespace ad::slam {

PriorMap
buildPriorMap(const sensors::World& world, const sensors::Camera& camera,
              int lane, const MappingParams& params)
{
    // Survey copy without transient actors.
    sensors::World survey;
    survey.road() = world.road();
    for (const auto& lm : world.landmarks())
        survey.landmarks().push_back(lm);

    PriorMap map;
    vision::OrbExtractor orb(params.orb);
    const double y = world.road().laneCenter(lane);

    for (double x = 0.0; x < world.road().length;
         x += params.poseSpacing) {
        const Pose2 ego(x, y, 0.0);
        const sensors::Frame frame = camera.render(survey, ego);
        const auto features = orb.extract(frame.image);

        // Visible landmark rectangles for feature anchoring.
        struct VisibleBoard
        {
            const sensors::Landmark* lm;
            BBox rect;
        };
        std::vector<VisibleBoard> boards;
        for (const auto& lm : survey.landmarks()) {
            BBox rect;
            double depth;
            if (camera.landmarkRect(ego, lm, rect, depth))
                boards.push_back({&lm, rect});
        }

        for (const auto& f : features) {
            Vec2 worldPos;
            float height = 0.0f;
            bool anchored = false;

            for (const auto& b : boards) {
                if (!b.rect.contains(f.kp.x, f.kp.y))
                    continue;
                // Invert the board's rectangle mapping: image-left is
                // the +width/2 lateral side (see Camera::render).
                const double s = (f.kp.x - b.rect.x) / b.rect.w;
                const double t = (f.kp.y - b.rect.y) / b.rect.h;
                worldPos = b.lm->pos +
                    Vec2{0.0, b.lm->width / 2.0 - s * b.lm->width};
                height = static_cast<float>(
                    b.lm->baseHeight + (1.0 - t) * b.lm->height);
                anchored = true;
                break;
            }

            if (!anchored) {
                // Ground features (lane-marking dash corners).
                if (!camera.unprojectGround(ego, f.kp.x, f.kp.y, worldPos))
                    continue;
                // Reject very distant ground features: their world
                // position is too depth-sensitive to be map-worthy.
                if ((worldPos - ego.pos).norm() > 40.0)
                    continue;
                height = 0.0f;
            }

            if (map.findSimilar(worldPos, params.dedupeRadius, f.desc,
                                params.dedupeHamming) >= 0)
                continue;
            map.insert(worldPos, height, f.desc);
        }
    }
    return map;
}

} // namespace ad::slam
