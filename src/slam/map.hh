/**
 * @file
 * Prior-map database for the localization engine. The paper's storage
 * constraint (Section 2.4.3) exists because localization matches live
 * feature descriptors against a prior map that must be carried on the
 * vehicle (41 TB for a US-scale map); this module implements that map: a
 * grid-indexed store of ORB landmarks with world positions, descriptor
 * matching support, serialization, and the density figures the storage
 * model extrapolates from.
 */

#ifndef AD_SLAM_MAP_HH
#define AD_SLAM_MAP_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/geometry.hh"
#include "vision/brief.hh"

namespace ad::slam {

/** One mapped ORB landmark. */
struct MapPoint
{
    std::int32_t id = 0;
    Vec2 pos;              ///< world ground-plane position.
    float height = 0.0f;   ///< feature height above ground (m).
    vision::Descriptor desc;
};

/**
 * The prior map: map points with a uniform grid index for radius
 * queries (the localizer queries a ~20 m neighborhood every frame and a
 * much wider one when relocalizing).
 */
class PriorMap
{
  public:
    /** @param cellSize grid cell edge in meters. */
    explicit PriorMap(double cellSize = 10.0);

    /** Insert a point; returns its assigned id. */
    int insert(const Vec2& pos, float height,
               const vision::Descriptor& desc);

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }
    const MapPoint& point(std::size_t i) const { return points_[i]; }
    const std::vector<MapPoint>& points() const { return points_; }

    /** Indices of all points within radius of a position. */
    std::vector<std::uint32_t> queryRadius(const Vec2& center,
                                           double radius) const;

    /**
     * Nearest existing point within radius whose descriptor is within
     * maxHamming; -1 if none. Used to deduplicate during mapping and to
     * fuse updated observations.
     */
    int findSimilar(const Vec2& pos, double radius,
                    const vision::Descriptor& desc, int maxHamming) const;

    /** Replace the descriptor of a point (map-update step, Figure 5). */
    void updateDescriptor(std::size_t index,
                          const vision::Descriptor& desc);

    /** Serialized size in bytes (the storage-constraint input). */
    std::uint64_t storageBytes() const;

    /** Binary serialization. */
    void save(std::ostream& os) const;
    static PriorMap load(std::istream& is);

    /** Map-point density per meter of mapped x-extent. */
    double pointsPerMeter() const;

  private:
    std::int64_t cellKey(const Vec2& pos) const;

    double cellSize_;
    std::vector<MapPoint> points_;
    // Grid index: cell key -> point indices. A sorted flat multimap
    // rebuilt lazily would complicate insert-heavy mapping, so use an
    // unordered layout keyed by a 64-bit packed cell coordinate.
    struct CellEntry
    {
        std::int64_t key;
        std::uint32_t index;
        bool operator<(const CellEntry& o) const { return key < o.key; }
    };
    mutable std::vector<CellEntry> index_;
    mutable bool indexDirty_ = false;

    void ensureIndex() const;
};

} // namespace ad::slam

#endif // AD_SLAM_MAP_HH
