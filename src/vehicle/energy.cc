#include "vehicle/energy.hh"

#include "common/logging.hh"

namespace ad::vehicle {

EnergyModel::EnergyModel(const PowerParams& powerParams,
                         const EvParams& evParams)
    : power_(powerParams), ev_(evParams)
{
}

EnergyReport
EnergyModel::report(double totalSystemW, double frameRateHz,
                    double tripMiles) const
{
    if (frameRateHz <= 0 || tripMiles <= 0)
        fatal("EnergyModel::report: rate and trip must be positive");
    EnergyReport r;
    r.joulesPerFrame = totalSystemW / frameRateHz;
    const double speedMph = ev_.params().cruiseSpeedMph;
    // Hours per mile at cruise speed times the draw.
    r.whPerMile = totalSystemW / speedMph;
    r.tripKwh = r.whPerMile * tripMiles / 1e3;
    const double batteryWh = ev_.params().batteryKwh * 1e3;
    r.batterySharePct =
        r.whPerMile * ev_.params().baseRangeMiles / batteryWh * 100.0;
    return r;
}

} // namespace ad::vehicle
