#include "vehicle/range.hh"

#include "common/logging.hh"

namespace ad::vehicle {

EvRangeModel::EvRangeModel(const EvParams& params) : params_(params)
{
    if (params.batteryKwh <= 0 || params.baseRangeMiles <= 0 ||
        params.cruiseSpeedMph <= 0)
        fatal("EvRangeModel: parameters must be positive");
}

double
EvRangeModel::propulsionWatts() const
{
    // Average consumption is battery / range (kWh per mile); at the
    // cruise speed that is a steady power draw. Bolt defaults:
    // 60 kWh / 238 mi * 56 mph ~= 14.1 kW.
    const double kwhPerMile = params_.batteryKwh / params_.baseRangeMiles;
    return kwhPerMile * params_.cruiseSpeedMph * 1e3;
}

double
EvRangeModel::rangeMiles(double extraWatts) const
{
    const double prop = propulsionWatts();
    // Driving time shrinks by prop/(prop+extra); so does distance.
    return params_.baseRangeMiles * prop / (prop + extraWatts);
}

double
EvRangeModel::rangeReductionPct(double extraWatts) const
{
    const double prop = propulsionWatts();
    return extraWatts / (prop + extraWatts) * 100.0;
}

GasMpgModel::GasMpgModel(double baseMpg) : baseMpg_(baseMpg)
{
    if (baseMpg <= 0)
        fatal("GasMpgModel: MPG must be positive");
}

double
GasMpgModel::mpg(double extraWatts) const
{
    // One MPG lost per 400 W (Farrington & Rugh).
    const double mpg = baseMpg_ - extraWatts / 400.0;
    return mpg > 0 ? mpg : 0;
}

double
GasMpgModel::mpgReductionPct(double extraWatts) const
{
    return (baseMpg_ - mpg(extraWatts)) / baseMpg_ * 100.0;
}

} // namespace ad::vehicle
