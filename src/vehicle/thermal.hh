/**
 * @file
 * Thermal constraint model (Section 2.4.4): outside the climate
 * controlled cabin the ambient can reach +105 C -- beyond safe chip
 * operating temperatures -- so the computing system must live in the
 * cabin; there, an unremoved 1 kW load heats the cabin ~10 C per
 * minute (Fayazbakhsh & Bahrami), which is what forces the added
 * cooling capacity the power model charges for.
 */

#ifndef AD_VEHICLE_THERMAL_HH
#define AD_VEHICLE_THERMAL_HH

namespace ad::vehicle {

/** Thermal environment constants from the paper. */
struct ThermalParams
{
    double maxAmbientOutsideCabinC = 105.0; ///< engine-bay ambient.
    double chipMaxOperatingC = 75.0;        ///< typical CPU limit.
    double cabinComfortMaxC = 27.0;
    /** Cabin heat-up rate: degrees C per minute per kW of IT load. */
    double heatRateCPerMinPerKw = 10.0;
};

/** Cabin thermal model. */
class CabinThermalModel
{
  public:
    explicit CabinThermalModel(const ThermalParams& params = {});

    /**
     * Must the computing system be placed inside the cabin? True
     * whenever the outside ambient exceeds the chip's operating
     * limit (always, for the paper's constants).
     */
    bool requiresCabinPlacement() const;

    /** Cabin heating rate (C/minute) for an IT load without added
     * cooling. */
    double heatRateCPerMin(double itWatts) const;

    /**
     * Minutes until the cabin warms by deltaC under the load with no
     * added cooling capacity.
     */
    double minutesToHeatBy(double itWatts, double deltaC) const;

    /**
     * Cooling capacity (thermal watts) that must be added to hold
     * the cabin temperature: steady state requires removing the
     * entire IT dissipation.
     */
    double requiredCoolingCapacityW(double itWatts) const;

    const ThermalParams& params() const { return params_; }

  private:
    ThermalParams params_;
};

} // namespace ad::vehicle

#endif // AD_VEHICLE_THERMAL_HH
