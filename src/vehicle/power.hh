/**
 * @file
 * Vehicle-level system power model (Section 2.4.5): the autonomous
 * driving system's draw is the computing engines plus the storage
 * engine, magnified by the air-conditioning load needed to remove the
 * added heat from the passenger cabin (Section 2.4.4). With the
 * paper's coefficient of performance of 1.3, every watt of IT load
 * imposes ~0.77 W of cooling overhead -- the effect that nearly
 * doubles system power in Figure 2.
 */

#ifndef AD_VEHICLE_POWER_HH
#define AD_VEHICLE_POWER_HH

namespace ad::vehicle {

/** Decomposition of the system's electrical draw. */
struct PowerBreakdown
{
    double computeW = 0;  ///< computing engines (all cameras).
    double storageW = 0;  ///< prior-map storage engine.
    double coolingW = 0;  ///< A/C overhead removing the heat.

    double itW() const { return computeW + storageW; }
    double totalW() const { return itW() + coolingW; }
};

/** System power model knobs (paper defaults). */
struct PowerParams
{
    /**
     * Air-conditioner coefficient of performance: useful cooling per
     * watt of work (Joudi et al.); 1.3 means 77% overhead.
     */
    double coolingCop = 1.3;
    /** Storage power: ~8 W per 3 TB of disk (Seagate desktop HDD). */
    double storageWattsPerTb = 8.0 / 3.0;
};

/** Computes the full system draw from IT loads. */
class VehiclePowerModel
{
  public:
    explicit VehiclePowerModel(const PowerParams& params = {});

    /** Cooling watts required to remove the given IT watts. */
    double coolingOverheadW(double itWatts) const;

    /** Storage engine draw for a map of the given size. */
    double storagePowerW(double terabytes) const;

    /**
     * Full breakdown for a computing draw and on-vehicle map size.
     *
     * @param computeWatts total computing power (all replicas).
     * @param storageTb prior-map storage size.
     */
    PowerBreakdown systemPower(double computeWatts,
                               double storageTb) const;

    const PowerParams& params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace ad::vehicle

#endif // AD_VEHICLE_POWER_HH
