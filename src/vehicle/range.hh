/**
 * @file
 * Driving-range and fuel-economy impact models (Section 2.4.5): the
 * electric-vehicle model follows the paper's Chevy Bolt analysis
 * (Figure 2 / Figure 12) -- extra electrical load competes with
 * propulsion for the fixed battery -- and the gasoline model applies
 * the paper's rule of thumb of one MPG lost per 400 W of additional
 * electrical load.
 */

#ifndef AD_VEHICLE_RANGE_HH
#define AD_VEHICLE_RANGE_HH

namespace ad::vehicle {

/** Electric-vehicle parameters (2017 Chevy Bolt defaults). */
struct EvParams
{
    double batteryKwh = 60.0;
    double baseRangeMiles = 238.0; ///< EPA rating.
    double cruiseSpeedMph = 56.0;  ///< evaluation cruise speed.
};

/** EV driving-range impact model. */
class EvRangeModel
{
  public:
    explicit EvRangeModel(const EvParams& params = {});

    /** Propulsion draw at the cruise speed (W). */
    double propulsionWatts() const;

    /**
     * Range with an extra electrical load: energy splits between
     * propulsion and the load, shrinking miles traveled.
     */
    double rangeMiles(double extraWatts) const;

    /** Percent range reduction caused by the extra load. */
    double rangeReductionPct(double extraWatts) const;

    const EvParams& params() const { return params_; }

  private:
    EvParams params_;
};

/** Gasoline-vehicle fuel-economy impact (1 MPG per 400 W). */
class GasMpgModel
{
  public:
    /** @param baseMpg the vehicle's unloaded rating. */
    explicit GasMpgModel(double baseMpg = 31.0);

    /** MPG with the extra electrical load. */
    double mpg(double extraWatts) const;

    /** Percent MPG reduction (e.g.\ 400 W on a 31 MPG car: 3.23%). */
    double mpgReductionPct(double extraWatts) const;

  private:
    double baseMpg_;
};

} // namespace ad::vehicle

#endif // AD_VEHICLE_RANGE_HH
