#include "vehicle/power.hh"

#include "common/logging.hh"

namespace ad::vehicle {

VehiclePowerModel::VehiclePowerModel(const PowerParams& params)
    : params_(params)
{
    if (params.coolingCop <= 0)
        fatal("VehiclePowerModel: COP must be positive");
}

double
VehiclePowerModel::coolingOverheadW(double itWatts) const
{
    // COP = cooling delivered / work input; removing itWatts of heat
    // costs itWatts / COP of electrical work (77% at COP 1.3).
    return itWatts / params_.coolingCop;
}

double
VehiclePowerModel::storagePowerW(double terabytes) const
{
    return terabytes * params_.storageWattsPerTb;
}

PowerBreakdown
VehiclePowerModel::systemPower(double computeWatts,
                               double storageTb) const
{
    PowerBreakdown b;
    b.computeW = computeWatts;
    b.storageW = storagePowerW(storageTb);
    b.coolingW = coolingOverheadW(b.itW());
    return b;
}

} // namespace ad::vehicle
