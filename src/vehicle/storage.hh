/**
 * @file
 * Prior-map storage model (Section 2.4.3): localization requires the
 * prior map on the vehicle (connectivity cannot be assumed), and a map
 * of the entire United States occupies ~41 TB. This model extrapolates
 * from a measured map density (bytes per kilometer of surveyed road,
 * taken from our real PriorMap serialization) to country scale and
 * exposes the constants the storage-power and range analyses consume.
 */

#ifndef AD_VEHICLE_STORAGE_HH
#define AD_VEHICLE_STORAGE_HH

namespace ad::vehicle {

/** Storage extrapolation constants. */
struct StorageParams
{
    /** US public road length (FHWA Highway Statistics 2015). */
    double usRoadMiles = 4.18e6;
    /** The paper's US prior-map figure, for cross-checking. */
    double paperUsMapTb = 41.0;
};

/** Prior-map storage extrapolation. */
class MapStorageModel
{
  public:
    explicit MapStorageModel(const StorageParams& params = {});

    /**
     * Extrapolated US map size (TB) from a measured map density.
     *
     * @param bytesPerKm serialized map bytes per km of surveyed road.
     */
    double usMapTb(double bytesPerKm) const;

    /**
     * Density (bytes/km) a mapping pipeline would need to stay within
     * the paper's 41 TB budget.
     */
    double paperImpliedBytesPerKm() const;

    /**
     * The paper's 41 TB figure implies a much richer map than sparse
     * ORB landmarks (dense prior maps store imagery/pointclouds);
     * this factor reports how much denser the paper's map is than a
     * measured sparse map.
     */
    double densityRatioVsPaper(double bytesPerKm) const;

    const StorageParams& params() const { return params_; }

  private:
    StorageParams params_;
};

} // namespace ad::vehicle

#endif // AD_VEHICLE_STORAGE_HH
