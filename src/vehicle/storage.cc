#include "vehicle/storage.hh"

#include "common/logging.hh"

namespace ad::vehicle {

namespace {

constexpr double kKmPerMile = 1.609344;
constexpr double kBytesPerTb = 1e12;

} // namespace

MapStorageModel::MapStorageModel(const StorageParams& params)
    : params_(params)
{
    if (params.usRoadMiles <= 0)
        fatal("MapStorageModel: road mileage must be positive");
}

double
MapStorageModel::usMapTb(double bytesPerKm) const
{
    return bytesPerKm * params_.usRoadMiles * kKmPerMile / kBytesPerTb;
}

double
MapStorageModel::paperImpliedBytesPerKm() const
{
    return params_.paperUsMapTb * kBytesPerTb /
           (params_.usRoadMiles * kKmPerMile);
}

double
MapStorageModel::densityRatioVsPaper(double bytesPerKm) const
{
    if (bytesPerKm <= 0)
        fatal("MapStorageModel: density must be positive");
    return paperImpliedBytesPerKm() / bytesPerKm;
}

} // namespace ad::vehicle
