/**
 * @file
 * Energy accounting built on the Section 2.4.5 power model: per-frame
 * and per-mile energy of the autonomous-driving system, and the share
 * of the traction battery it consumes over a trip. This extends the
 * paper's driving-range analysis with the per-decision energy figures
 * architects compare accelerators by (J/frame).
 */

#ifndef AD_VEHICLE_ENERGY_HH
#define AD_VEHICLE_ENERGY_HH

#include "vehicle/power.hh"
#include "vehicle/range.hh"

namespace ad::vehicle {

/** Energy figures for one system configuration. */
struct EnergyReport
{
    double joulesPerFrame = 0;   ///< full-system energy per frame.
    double whPerMile = 0;        ///< system energy per mile driven.
    double tripKwh = 0;          ///< system energy over the trip.
    double batterySharePct = 0;  ///< of the EV battery per full range.
};

/** Energy model combining power, frame rate and vehicle parameters. */
class EnergyModel
{
  public:
    EnergyModel(const PowerParams& powerParams = {},
                const EvParams& evParams = {});

    /**
     * Energy figures for a system with the given total draw.
     *
     * @param totalSystemW full system power (IT + cooling).
     * @param frameRateHz processing rate (10 Hz at the paper's
     *        constraint).
     * @param tripMiles trip length for tripKwh.
     */
    EnergyReport report(double totalSystemW, double frameRateHz = 10.0,
                        double tripMiles = 100.0) const;

    const EvRangeModel& ev() const { return ev_; }

  private:
    VehiclePowerModel power_;
    EvRangeModel ev_;
};

} // namespace ad::vehicle

#endif // AD_VEHICLE_ENERGY_HH
