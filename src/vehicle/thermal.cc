#include "vehicle/thermal.hh"

#include "common/logging.hh"

namespace ad::vehicle {

CabinThermalModel::CabinThermalModel(const ThermalParams& params)
    : params_(params)
{
    if (params.heatRateCPerMinPerKw <= 0)
        fatal("CabinThermalModel: heat rate must be positive");
}

bool
CabinThermalModel::requiresCabinPlacement() const
{
    return params_.maxAmbientOutsideCabinC > params_.chipMaxOperatingC;
}

double
CabinThermalModel::heatRateCPerMin(double itWatts) const
{
    return params_.heatRateCPerMinPerKw * itWatts / 1e3;
}

double
CabinThermalModel::minutesToHeatBy(double itWatts, double deltaC) const
{
    const double rate = heatRateCPerMin(itWatts);
    if (rate <= 0)
        return 1e30; // effectively never
    return deltaC / rate;
}

double
CabinThermalModel::requiredCoolingCapacityW(double itWatts) const
{
    return itWatts; // steady state: remove everything dissipated
}

} // namespace ad::vehicle
