/**
 * @file
 * The object-detection engine (DET): a YOLO-style single-shot grid
 * detector (Figure 3 of the paper). The input frame is resized to the
 * square network input, a fully convolutional network predicts an
 * objectness grid, and a cheap decode stage (threshold, connected
 * components, pixel-tight refinement, class banding, NMS) produces the
 * final detections for the four classes the paper tracks.
 *
 * In line with the paper's Figure 7 characterization, the DNN forward
 * pass accounts for virtually all DET cycles; the decode stage is the
 * residual "Others" slice.
 */

#ifndef AD_DETECT_YOLO_HH
#define AD_DETECT_YOLO_HH

#include <vector>

#include "common/image.hh"
#include "nn/models.hh"
#include "sensors/world.hh"

namespace ad::detect {

/** One detection in original-image coordinates. */
struct Detection
{
    BBox box;
    sensors::ObjectClass cls = sensors::ObjectClass::Vehicle;
    double confidence = 0.0;
};

/** Wall-clock attribution of one detect() call (Figure 7 split). */
struct DetectorTimings
{
    double dnnMs = 0;    ///< network forward pass.
    double decodeMs = 0; ///< threshold/components/refine/NMS.
    double totalMs = 0;
};

/** Detector tuning. */
struct DetectorParams
{
    /**
     * Square network input. 416 reproduces the paper-scale workload;
     * tests and interactive examples use smaller inputs (the host here
     * is a single CPU core -- the very platform the paper shows is two
     * orders of magnitude too slow for real-time DET).
     */
    int inputSize = 224;
    double width = 0.25;          ///< channel-width multiplier.
    double objectnessThreshold = 0.62;
    double nmsIou = 0.4;
    double minBoxPixels = 6.0;    ///< reject tiny refined boxes.
    double maxAspect = 6.0;       ///< reject stripe-like boxes.
    int brightPixel = 160;        ///< refinement threshold (above the
                                  ///  150 lane-marking intensity).
    std::uint64_t seed = 1;

    /**
     * NN kernel threads for the forward pass (the `nn.threads` knob).
     * 1 = exact pre-parallel serial behavior; <= 0 = hardware
     * concurrency. Results are bitwise-identical for any value.
     */
    int threads = 1;

    /**
     * Numeric mode of the forward pass (the `nn.precision` knob).
     * Int8 calibrates over seeded activations at construction and
     * swaps conv layers for their quantized twins (nn/quant.hh); the
     * decode stage is unchanged and final boxes are refined against
     * the original image either way.
     */
    nn::Precision precision = nn::Precision::Fp32;

    /**
     * Run the graph-lowering pass at build (the `nn.fuse` knob):
     * conv/FC + activation pairs fuse into single layers and
     * unfold-free convolutions run direct (nn/fusion.hh). Pure
     * optimization -- outputs are bitwise-identical either way; off
     * keeps the unfused reference path for A/B runs.
     */
    bool fuse = true;

    /**
     * Plan the network into a static arena at build (the `nn.arena`
     * knob): intermediates live in one reused buffer and the forward
     * pass performs zero per-frame tensor allocations (nn/planner.hh).
     * Bitwise-identical to the allocating path.
     */
    bool arena = true;

    /**
     * The same params with the square input downscaled by `scale`,
     * rounded down to the grid's multiple-of-32 constraint and
     * floored at 64 px. The degradation governor's DEGRADED mode
     * builds its warm standby detector from this (forward cost scales
     * roughly with input area, so scale 0.5 is ~4x cheaper).
     */
    DetectorParams scaledInput(double scale) const;
};

/**
 * YOLO-style detector over grayscale frames.
 */
class YoloDetector
{
  public:
    explicit YoloDetector(const DetectorParams& params = {});

    /** Detect objects in a frame. */
    std::vector<Detection> detect(const Image& frame,
                                  DetectorTimings* timings = nullptr);

    /** The executable network's profile (at the configured scale). */
    nn::NetworkProfile profile() const;

    const DetectorParams& params() const { return params_; }

    /**
     * The paper-scale DET workload (416 input, full width) consumed by
     * the accelerator platform models; no weights are allocated.
     */
    static nn::NetworkProfile fullScaleProfile();

  private:
    DetectorParams params_;
    nn::Network net_;
    int gridSize_;
    nn::Tensor input_; ///< reused network input (planned path).
};

/** Greedy non-maximum suppression by IoU; exposed for unit tests. */
std::vector<Detection> nonMaxSuppression(std::vector<Detection> dets,
                                         double iouThreshold);

} // namespace ad::detect

#endif // AD_DETECT_YOLO_HH
