#include "detect/yolo.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/time.hh"
#include "nn/fusion.hh"
#include "nn/quant.hh"
#include "obs/trace.hh"

namespace ad::detect {

namespace {

/** Connected component of above-threshold grid cells. */
struct Component
{
    int minX, minY, maxX, maxY;
    double peak = 0.0;
};

/** 4-connected flood fill over the thresholded objectness grid. */
std::vector<Component>
findComponents(const nn::Tensor& out, double threshold)
{
    const int s = out.height();
    std::vector<bool> visited(static_cast<std::size_t>(s) * s, false);
    std::vector<Component> comps;
    std::vector<std::pair<int, int>> stack;
    for (int y = 0; y < s; ++y) {
        for (int x = 0; x < s; ++x) {
            if (visited[y * s + x] || out.at(0, y, x) < threshold)
                continue;
            Component c{x, y, x, y, out.at(0, y, x)};
            stack.push_back({x, y});
            visited[y * s + x] = true;
            while (!stack.empty()) {
                const auto [cx, cy] = stack.back();
                stack.pop_back();
                c.minX = std::min(c.minX, cx);
                c.maxX = std::max(c.maxX, cx);
                c.minY = std::min(c.minY, cy);
                c.maxY = std::max(c.maxY, cy);
                c.peak = std::max(c.peak,
                                  static_cast<double>(out.at(0, cy, cx)));
                const int nx[4] = {cx + 1, cx - 1, cx, cx};
                const int ny[4] = {cy, cy, cy + 1, cy - 1};
                for (int k = 0; k < 4; ++k) {
                    if (nx[k] < 0 || nx[k] >= s || ny[k] < 0 || ny[k] >= s)
                        continue;
                    if (visited[ny[k] * s + nx[k]] ||
                        out.at(0, ny[k], nx[k]) < threshold)
                        continue;
                    visited[ny[k] * s + nx[k]] = true;
                    stack.push_back({nx[k], ny[k]});
                }
            }
            comps.push_back(c);
        }
    }
    return comps;
}

/**
 * Tighten a candidate box to the bright pixels inside it and compute
 * their mean intensity (for class banding). Returns false when no
 * bright pixels exist.
 */
bool
refineBox(const Image& frame, const BBox& candidate, int brightPixel,
          BBox& refined, double& meanIntensity)
{
    const BBox clip = candidate.clipped(frame.width(), frame.height());
    if (clip.empty())
        return false;
    int minX = frame.width();
    int maxX = -1;
    int minY = frame.height();
    int maxY = -1;
    double sum = 0;
    int count = 0;
    const int x0 = static_cast<int>(clip.x);
    const int x1 = static_cast<int>(clip.xmax());
    const int y0 = static_cast<int>(clip.y);
    const int y1 = static_cast<int>(clip.ymax());
    for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
            const int v = frame.at(x, y);
            if (v < brightPixel)
                continue;
            minX = std::min(minX, x);
            maxX = std::max(maxX, x);
            minY = std::min(minY, y);
            maxY = std::max(maxY, y);
            sum += v;
            ++count;
        }
    }
    if (count == 0)
        return false;
    refined = BBox(minX, minY, maxX - minX + 1, maxY - minY + 1);
    meanIntensity = sum / count;
    return true;
}

} // namespace

DetectorParams
DetectorParams::scaledInput(double scale) const
{
    DetectorParams p = *this;
    const int scaled =
        static_cast<int>(inputSize * std::clamp(scale, 0.0, 1.0));
    p.inputSize = std::max(64, scaled - scaled % 32);
    return p;
}

YoloDetector::YoloDetector(const DetectorParams& params)
    : params_(params),
      net_(nn::buildNetwork(nn::detectorSpec(params.inputSize, params.width,
                                             sensors::kNumObjectClasses))),
      gridSize_(params.inputSize / 32)
{
    Rng rng(params.seed);
    nn::initDetectorWeights(net_, rng);
    if (params.precision == nn::Precision::Int8) {
        // Calibrate over seeded uniform [0, 1] inputs -- the range
        // Tensor::fromImage normalizes real frames into -- then lower
        // the conv stack to int8 in place.
        Rng calRng(params.seed ^ 0xAD0C0DE5ULL);
        std::vector<nn::Tensor> samples;
        for (int s = 0; s < 2; ++s) {
            nn::Tensor t(1, params.inputSize, params.inputSize);
            float* data = t.data();
            for (std::size_t i = 0; i < t.size(); ++i)
                data[i] = static_cast<float>(calRng.uniform());
            samples.push_back(std::move(t));
        }
        nn::quantizeNetwork(net_, samples);
    }
    // Lowering order contract (nn/fusion.hh): quantize first, then
    // fuse/direct-mark, then plan the arena over the lowered graph.
    const nn::Shape inShape{1, params.inputSize, params.inputSize};
    if (params.fuse)
        nn::lowerNetwork(net_, inShape);
    if (params.arena)
        net_.plan(inShape);
}

std::vector<Detection>
YoloDetector::detect(const Image& frame, DetectorTimings* timings)
{
    Stopwatch total;
    std::vector<Detection> detections;

    // --- DNN forward pass. ---
    double dnnMs = 0;
    nn::Tensor scratchOut;
    const nn::Tensor* out = &scratchOut;
    {
        obs::TraceSpan span(obs::tracer(), "det.dnn", "det");
        ScopedTimer timer(dnnMs);
        const Image resized =
            frame.resized(params_.inputSize, params_.inputSize);
        if (net_.planned()) {
            // Arena path: the reused input tensor plus the planned
            // intermediates make the whole forward allocation-free
            // after the first frame.
            input_.assignFromImage(resized);
            out = &net_.forwardArena(
                input_, nn::kernelContext(params_.threads));
        } else {
            scratchOut = net_.forward(nn::Tensor::fromImage(resized),
                                      nn::kernelContext(params_.threads));
        }
    }

    // --- Decode. ---
    double decodeMs = 0;
    {
        obs::TraceSpan span(obs::tracer(), "det.decode", "det");
        ScopedTimer timer(decodeMs);
        const double sx =
            static_cast<double>(frame.width()) / gridSize_;
        const double sy =
            static_cast<double>(frame.height()) / gridSize_;
        for (const auto& c :
             findComponents(*out, params_.objectnessThreshold)) {
            // Component cell extent mapped back to image coordinates,
            // padded by half a cell to cover partial-cell objects.
            const BBox candidate(
                (c.minX - 0.5) * sx, (c.minY - 0.5) * sy,
                (c.maxX - c.minX + 2.0) * sx, (c.maxY - c.minY + 2.0) * sy);
            BBox refined;
            double intensity;
            if (!refineBox(frame, candidate, params_.brightPixel, refined,
                           intensity))
                continue;
            if (refined.w < params_.minBoxPixels ||
                refined.h < params_.minBoxPixels)
                continue;
            const double aspect =
                std::max(refined.w / refined.h, refined.h / refined.w);
            if (aspect > params_.maxAspect)
                continue;
            Detection det;
            det.box = refined;
            det.cls = sensors::classFromIntensity(intensity);
            det.confidence = std::min(1.0, c.peak);
            detections.push_back(det);
        }
        detections = nonMaxSuppression(std::move(detections),
                                       params_.nmsIou);
    }

    if (timings) {
        timings->dnnMs += dnnMs;
        timings->decodeMs += decodeMs;
        timings->totalMs += total.elapsedMs();
    }
    return detections;
}

nn::NetworkProfile
YoloDetector::profile() const
{
    return nn::specProfile(nn::detectorSpec(params_.inputSize,
                                            params_.width,
                                            sensors::kNumObjectClasses));
}

nn::NetworkProfile
YoloDetector::fullScaleProfile()
{
    return nn::specProfile(nn::detectorSpec(416, 1.0,
                                            sensors::kNumObjectClasses));
}

std::vector<Detection>
nonMaxSuppression(std::vector<Detection> dets, double iouThreshold)
{
    std::sort(dets.begin(), dets.end(),
              [](const Detection& a, const Detection& b) {
                  return a.confidence > b.confidence;
              });
    std::vector<Detection> kept;
    for (const auto& d : dets) {
        bool suppressed = false;
        for (const auto& k : kept) {
            if (d.box.iou(k.box) > iouThreshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(d);
    }
    return kept;
}

} // namespace ad::detect
