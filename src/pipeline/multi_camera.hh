/**
 * @file
 * Multi-camera perception rig. The paper's end-to-end system pairs
 * *each* camera with a replica of the computing engines ("the
 * end-to-end system consists of multiple cameras (e.g., eight for
 * Tesla) and each camera is paired with a replica of the computing
 * engine", Section 5.1.3); this module implements that structure in
 * measured mode: N cameras mounted at different yaw angles, a
 * detection engine and tracker pool per camera, one localizer on the
 * forward camera, and a fusion stage that merges every camera's
 * tracks into the single world coordinate space.
 *
 * Per-frame latency follows the replication model: camera replicas
 * run in parallel, so perception time is the *maximum* over cameras
 * of (DET + TRA), combined with LOC per Figure 1.
 */

#ifndef AD_PIPELINE_MULTI_CAMERA_HH
#define AD_PIPELINE_MULTI_CAMERA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "detect/yolo.hh"
#include "fusion/fusion.hh"
#include "sensors/camera.hh"
#include "slam/localizer.hh"
#include "track/pool.hh"

namespace ad::pipeline {

/** One camera head of the rig. */
struct CameraMount
{
    double yawOffset = 0.0; ///< mounting yaw relative to the vehicle.
    sensors::Resolution resolution = sensors::Resolution::HHD;
};

/** Rig construction parameters. */
struct MultiCameraParams
{
    std::vector<CameraMount> mounts; ///< one entry per camera.
    detect::DetectorParams detector;
    track::PoolParams trackerPool;
    slam::LocalizerParams localizer;

    /** Tesla-style rig: n cameras fanned across the front arc. */
    static MultiCameraParams fanRig(int cameras,
                                    double fovSpreadRad = 1.6);
};

/** Output of one rig step. */
struct RigOutput
{
    /** Fused objects from every camera, world coordinates. */
    fusion::FusedScene scene;
    slam::LocResult localization;
    /** Per-camera detection counts (diagnostics). */
    std::vector<int> detectionsPerCamera;
    /** Replicated-engine latency: max over cameras of DET+TRA. */
    double perceptionMs = 0;
    double locMs = 0;
    double fusionMs = 0;
    double endToEndMs = 0;
};

/**
 * The measured-mode multi-camera perception system. Rendering is done
 * internally (the rig owns its camera models); the caller supplies
 * the world and the true ego pose per frame.
 */
class MultiCameraRig
{
  public:
    /**
     * @param map prior map for the forward localizer.
     * @param params rig parameters; mounts must be non-empty and the
     *        first mount is the forward (localization) camera.
     */
    MultiCameraRig(const slam::PriorMap* map,
                   const MultiCameraParams& params);

    /** Initialize the localizer belief. */
    void reset(const Pose2& pose, const Vec2& velocity);

    /**
     * Render all views from the true ego pose and run perception.
     *
     * @param world the world to render.
     * @param egoTruth ground-truth ego pose (sensor input only; the
     *        output scene uses the *estimated* pose).
     * @param dt seconds since the previous step.
     */
    RigOutput step(const sensors::World& world, const Pose2& egoTruth,
                   double dt);

    int cameraCount() const
    {
        return static_cast<int>(cameras_.size());
    }

    const LatencyRecorder& endToEndLatency() const { return e2eRec_; }

    const sensors::Camera& camera(int i) const { return *cameras_[i]; }

  private:
    MultiCameraParams params_;
    std::vector<std::unique_ptr<sensors::Camera>> cameras_;
    std::vector<std::unique_ptr<detect::YoloDetector>> detectors_;
    std::vector<std::unique_ptr<track::TrackerPool>> trackerPools_;
    std::unique_ptr<slam::Localizer> localizer_;
    std::vector<std::unique_ptr<fusion::FusionEngine>> fusions_;
    LatencyRecorder e2eRec_;
    double time_ = 0;
    std::int64_t frameIndex_ = 0;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_MULTI_CAMERA_HH
