#include "pipeline/constraints.hh"

#include <sstream>

namespace ad::pipeline {

ConstraintChecker::ConstraintChecker(const ConstraintParams& params)
    : params_(params)
{
}

std::vector<ConstraintVerdict>
ConstraintChecker::check(const SystemAssessment& a) const
{
    std::vector<ConstraintVerdict> verdicts;

    // --- Performance (Section 2.4.1). ---
    {
        ConstraintVerdict v;
        v.constraint = "performance";
        const double frameRate = 1000.0 / std::max(1e-9, a.meanMs);
        v.satisfied = a.tailMs <= params_.latencyBudgetMs &&
                      frameRate >= params_.minFrameRateHz;
        std::ostringstream oss;
        oss << "tail " << a.tailMs << " ms vs " << params_.latencyBudgetMs
            << " ms budget; sustainable rate " << frameRate << " fps vs "
            << params_.minFrameRateHz << " fps";
        v.detail = oss.str();
        verdicts.push_back(v);
    }

    // --- Predictability (Section 2.4.2). ---
    {
        ConstraintVerdict v;
        v.constraint = "predictability";
        const double amplification =
            a.meanMs > 0 ? a.tailMs / a.meanMs : 0;
        v.satisfied = amplification <= params_.tailAmplificationMax;
        std::ostringstream oss;
        oss << "p99.99/mean = " << amplification << " (max "
            << params_.tailAmplificationMax << ")";
        v.detail = oss.str();
        verdicts.push_back(v);
    }

    // --- Storage (Section 2.4.3). ---
    {
        ConstraintVerdict v;
        v.constraint = "storage";
        v.satisfied = a.config.storageTb <= params_.storageBudgetTb;
        std::ostringstream oss;
        oss << a.config.storageTb << " TB prior map vs "
            << params_.storageBudgetTb << " TB on-vehicle budget";
        v.detail = oss.str();
        verdicts.push_back(v);
    }

    // --- Thermal (Section 2.4.4). ---
    {
        ConstraintVerdict v;
        v.constraint = "thermal";
        // Satisfied when the system sits in the climate-controlled
        // cabin with cooling capacity matching its dissipation -- the
        // power model already charges for that capacity, so the
        // verdict checks the accounting is present.
        v.satisfied = thermal_.requiresCabinPlacement() &&
                      a.power.coolingW > 0;
        std::ostringstream oss;
        oss << "cabin placement required; " << a.power.coolingW
            << " W cooling budgeted for " << a.power.itW()
            << " W IT load (heats cabin "
            << thermal_.heatRateCPerMin(a.power.itW())
            << " C/min uncooled)";
        v.detail = oss.str();
        verdicts.push_back(v);
    }

    // --- Power (Section 2.4.5). ---
    {
        ConstraintVerdict v;
        v.constraint = "power";
        v.satisfied =
            a.rangeReductionPct <= params_.rangeReductionMaxPct;
        std::ostringstream oss;
        oss << a.power.totalW() << " W total -> "
            << a.rangeReductionPct << "% range reduction (max "
            << params_.rangeReductionMaxPct << "%)";
        v.detail = oss.str();
        verdicts.push_back(v);
    }

    return verdicts;
}

bool
ConstraintChecker::allSatisfied(const SystemAssessment& a) const
{
    for (const auto& v : check(a))
        if (!v.satisfied)
            return false;
    return true;
}

} // namespace ad::pipeline
