#include "pipeline/governor.hh"

#include <algorithm>
#include <climits>
#include <sstream>

#include "common/config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::pipeline {

const char*
modeName(OperatingMode mode)
{
    switch (mode) {
    case OperatingMode::Nominal:
        return "NOMINAL";
    case OperatingMode::Degraded:
        return "DEGRADED";
    case OperatingMode::TrackingOnly:
        return "TRACKING_ONLY";
    case OperatingMode::SafeStop:
        return "SAFE_STOP";
    }
    return "?";
}

namespace {

OperatingMode
escalated(OperatingMode m)
{
    return m == OperatingMode::SafeStop
               ? m
               : static_cast<OperatingMode>(static_cast<int>(m) + 1);
}

OperatingMode
relaxed(OperatingMode m)
{
    return m == OperatingMode::Nominal
               ? m
               : static_cast<OperatingMode>(static_cast<int>(m) - 1);
}

} // namespace

GovernorParams
GovernorParams::fromConfig(const Config& cfg, double defaultBudgetMs)
{
    GovernorParams p;
    p.enabled = cfg.getBool("governor", false);
    p.budgetMs = cfg.getDouble("gov.budget_ms", defaultBudgetMs);
    p.escalateAfterMisses =
        cfg.getInt("gov.escalate_misses", p.escalateAfterMisses);
    p.recoverAfterFrames =
        cfg.getInt("gov.recover_frames", p.recoverAfterFrames);
    p.recoveryBackoff =
        cfg.getDouble("gov.recovery_backoff", p.recoveryBackoff);
    p.maxRecoverAfterFrames =
        cfg.getInt("gov.max_recover_frames", p.maxRecoverAfterFrames);
    p.backoffResetFactor =
        cfg.getInt("gov.backoff_reset", p.backoffResetFactor);
    p.degradedDetScale =
        cfg.getDouble("gov.det_scale", p.degradedDetScale);
    p.degradedDetInterval =
        cfg.getInt("gov.det_interval", p.degradedDetInterval);
    p.trackingOnlyDetInterval = cfg.getInt("gov.tracking_det_interval",
                                           p.trackingOnlyDetInterval);
    p.maxStaleFrames = cfg.getInt("gov.max_stale", p.maxStaleFrames);
    return p;
}

std::vector<std::string>
GovernorParams::knownConfigKeys()
{
    return {"governor",
            "gov.budget_ms",
            "gov.escalate_misses",
            "gov.recover_frames",
            "gov.recovery_backoff",
            "gov.max_recover_frames",
            "gov.backoff_reset",
            "gov.det_scale",
            "gov.det_interval",
            "gov.tracking_det_interval",
            "gov.max_stale"};
}

DegradationGovernor::DegradationGovernor(const GovernorParams& params)
    : params_(params), recoverThreshold_(params.recoverAfterFrames)
{
    if (obs::metricsEnabled())
        obs::metrics().gauge("governor.state").set(0.0);
}

FramePlan
DegradationGovernor::plan(std::int64_t frame) const
{
    FramePlan p;
    p.mode = mode_;
    switch (mode_) {
    case OperatingMode::Nominal:
        break;
    case OperatingMode::Degraded: {
        const int k = std::max(1, params_.degradedDetInterval);
        p.runDet = frame % k == 0;
        p.degradedDet = true;
        break;
    }
    case OperatingMode::TrackingOnly: {
        const int k = params_.trackingOnlyDetInterval;
        p.runDet = k > 0 && frame % k == 0;
        p.degradedDet = true;
        break;
    }
    case OperatingMode::SafeStop:
        p.runDet = false;
        p.degradedDet = true;
        p.safeStop = true;
        break;
    }
    return p;
}

void
DegradationGovernor::observe(std::int64_t frame,
                             const obs::FrameLatencySample& sample)
{
    ++framesInMode_[static_cast<std::size_t>(mode_)];
    const bool miss = sample.endToEndMs() > params_.budgetMs;
    if (miss) {
        cleanFrames_ = 0;
        ++consecutiveMisses_;
        if (consecutiveMisses_ >= params_.escalateAfterMisses &&
            mode_ != OperatingMode::SafeStop) {
            applyProbeBackoff();
            transitionTo(frame, escalated(mode_), "miss");
            consecutiveMisses_ = 0;
        }
        return;
    }

    consecutiveMisses_ = 0;
    if (cleanFrames_ < INT_MAX)
        ++cleanFrames_;
    if (mode_ != OperatingMode::Nominal &&
        cleanFrames_ >= recoverThreshold_) {
        transitionTo(frame, relaxed(mode_), "recovered");
        cleanFrames_ = 0;
        probing_ = true;
    } else if (mode_ == OperatingMode::Nominal && probing_ &&
               cleanFrames_ >= params_.backoffResetFactor *
                                   params_.recoverAfterFrames) {
        // NOMINAL held long enough: the fault pressure has passed,
        // forget the backoff.
        probing_ = false;
        recoverThreshold_ = params_.recoverAfterFrames;
    }
}

void
DegradationGovernor::applyProbeBackoff()
{
    if (!probing_)
        return;
    // The last de-escalation did not hold: demand a longer clean
    // run before probing again.
    const double next = recoverThreshold_ * params_.recoveryBackoff;
    recoverThreshold_ =
        std::min(params_.maxRecoverAfterFrames,
                 std::max(recoverThreshold_ + 1,
                          static_cast<int>(next)));
    probing_ = false;
}

void
DegradationGovernor::requestEscalation(std::int64_t frame,
                                       OperatingMode to,
                                       const std::string& reason)
{
    if (to <= mode_)
        return; // only strict escalations may be requested.
    applyProbeBackoff();
    transitionTo(frame, to, reason);
    consecutiveMisses_ = 0;
    cleanFrames_ = 0;
}

void
DegradationGovernor::forceSafeStop(std::int64_t frame,
                                   const std::string& reason)
{
    if (mode_ == OperatingMode::SafeStop)
        return;
    transitionTo(frame, OperatingMode::SafeStop, reason);
    consecutiveMisses_ = 0;
    cleanFrames_ = 0;
}

void
DegradationGovernor::transitionTo(std::int64_t frame, OperatingMode to,
                                  const std::string& reason)
{
    transitions_.push_back({frame, mode_, to, reason});
    mode_ = to;

    // Observability: a zero-duration "governor.<MODE>" trace event at
    // the transition frame and a state gauge + transition counters in
    // the registry (docs/TRACING.md specifies the event schema).
    auto& tracerRef = obs::tracer();
    if (tracerRef.enabled())
        tracerRef.record(std::string("governor.") + modeName(to),
                         "governor", tracerRef.nowUs(), 0.0, frame);
    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.gauge("governor.state")
            .set(static_cast<double>(static_cast<int>(to)));
        reg.counter("governor.transitions").add();
        reg.counter(std::string("governor.transitions.to_") +
                    modeName(to))
            .add();
    }
}

std::string
DegradationGovernor::report() const
{
    std::uint64_t frames = 0;
    for (const auto n : framesInMode_)
        frames += n;
    std::ostringstream oss;
    oss << "governor: mode " << modeName(mode_) << ", "
        << transitions_.size() << " transitions over " << frames
        << " frames (recover threshold " << recoverThreshold_
        << ")\n";
    for (std::size_t i = 0; i < kOperatingModeCount; ++i) {
        const double pct =
            frames ? 100.0 * framesInMode_[i] / frames : 0.0;
        oss << "  " << modeName(static_cast<OperatingMode>(i)) << ' '
            << framesInMode_[i] << " frames";
        if (frames)
            oss << " (" << pct << "%)";
        oss << '\n';
    }
    return oss.str();
}

} // namespace ad::pipeline
