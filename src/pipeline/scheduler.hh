/**
 * @file
 * Real-time frame scheduler: a discrete-event simulation of the
 * camera-to-decision service loop that turns the paper's performance
 * constraint (Section 2.4.1) into measurable outcomes. Frames arrive
 * at the camera period; the processing engine serves them with
 * latencies drawn from a platform configuration's end-to-end
 * distribution; a frame whose *completion* exceeds its arrival plus
 * the reaction budget is a deadline miss, and frames that arrive
 * while the engine is saturated (beyond the queue bound) are dropped
 * -- stale traffic information the vehicle never reacts to.
 *
 * This exposes the interaction the headline figures abstract away:
 * mean-feasible/tail-infeasible configurations (Figure 11's
 * "mean-only" designs) do not just miss an SLO occasionally -- their
 * latency spikes queue subsequent frames, clustering misses.
 */

#ifndef AD_PIPELINE_SCHEDULER_HH
#define AD_PIPELINE_SCHEDULER_HH

#include <functional>

#include "common/random.hh"
#include "common/stats.hh"

namespace ad::pipeline {

/** Scheduler knobs (paper defaults: 10 fps camera, 100 ms budget). */
struct SchedulerParams
{
    double framePeriodMs = 100.0; ///< camera period (>=10 fps).
    double deadlineMs = 100.0;    ///< reaction budget per frame.
    int queueDepth = 1;           ///< frames that may wait; beyond
                                  ///  this, arrivals are dropped.
};

/** Outcome statistics of a scheduling run. */
struct ScheduleStats
{
    int framesArrived = 0;
    int framesProcessed = 0;
    int framesDropped = 0;
    int deadlineMisses = 0; ///< processed but past the budget.
    LatencySummary responseTime; ///< arrival -> completion (ms).
    double achievedFps = 0;

    double
    missRate() const
    {
        return framesArrived
                   ? static_cast<double>(deadlineMisses + framesDropped) /
                         framesArrived
                   : 0.0;
    }
};

/**
 * Simulate frame service with the given per-frame latency sampler.
 *
 * @param sampler draws one service latency (ms) per processed frame.
 * @param frames number of camera frames to simulate.
 * @param params scheduler knobs.
 */
ScheduleStats simulateSchedule(const std::function<double()>& sampler,
                               int frames,
                               const SchedulerParams& params = {});

} // namespace ad::pipeline

#endif // AD_PIPELINE_SCHEDULER_HH
