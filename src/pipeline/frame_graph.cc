#include "pipeline/frame_graph.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/parallel_for.hh"
#include "common/thread_pool.hh"
#include "obs/trace.hh"

namespace ad::pipeline {

// ---------------------------------------------------------------------------
// FrameGraph

FrameGraph::StageId
FrameGraph::addStage(std::string name, std::vector<std::string> inputs,
                     StageFn fn)
{
    const StageId id = static_cast<StageId>(stages_.size());
    stages_.push_back(
        {std::move(name), std::move(inputs), {}, std::move(fn)});
    return id;
}

bool
FrameGraph::resolveEdges() const
{
    for (Stage& s : stages_) {
        s.inputIds.clear();
        for (const std::string& in : s.inputNames) {
            StageId found = -1;
            for (std::size_t i = 0; i < stages_.size(); ++i)
                if (stages_[i].name == in) {
                    found = static_cast<StageId>(i);
                    break;
                }
            if (found < 0)
                return false;
            s.inputIds.push_back(found);
        }
    }
    return true;
}

std::optional<std::string>
FrameGraph::validate() const
{
    for (std::size_t i = 0; i < stages_.size(); ++i)
        for (std::size_t j = i + 1; j < stages_.size(); ++j)
            if (stages_[i].name == stages_[j].name)
                return "duplicate stage '" + stages_[i].name + "'";

    for (const Stage& s : stages_) {
        for (std::size_t a = 0; a < s.inputNames.size(); ++a) {
            if (s.inputNames[a] == s.name)
                return "stage '" + s.name +
                       "' lists itself as an input";
            for (std::size_t b = a + 1; b < s.inputNames.size(); ++b)
                if (s.inputNames[a] == s.inputNames[b])
                    return "stage '" + s.name + "' lists input '" +
                           s.inputNames[a] + "' twice";
            bool found = false;
            for (const Stage& t : stages_)
                if (t.name == s.inputNames[a]) {
                    found = true;
                    break;
                }
            if (!found)
                return "stage '" + s.name + "' input '" +
                       s.inputNames[a] + "' is not a declared stage";
        }
    }

    if (!resolveEdges())
        return "unresolved input edge"; // unreachable after the checks

    // Kahn's algorithm; anything left with a nonzero in-degree sits on
    // a cycle.
    std::vector<int> indeg(stages_.size(), 0);
    for (std::size_t i = 0; i < stages_.size(); ++i)
        indeg[i] = static_cast<int>(stages_[i].inputIds.size());
    std::size_t processed = 0;
    std::vector<char> emitted(stages_.size(), 0);
    for (;;) {
        int pick = -1;
        for (std::size_t i = 0; i < stages_.size(); ++i)
            if (!emitted[i] && indeg[i] == 0) {
                pick = static_cast<int>(i);
                break;
            }
        if (pick < 0)
            break;
        emitted[static_cast<std::size_t>(pick)] = 1;
        ++processed;
        for (std::size_t c = 0; c < stages_.size(); ++c)
            for (StageId in : stages_[c].inputIds)
                if (in == pick)
                    --indeg[c];
    }
    if (processed < stages_.size())
        for (std::size_t i = 0; i < stages_.size(); ++i)
            if (!emitted[i])
                return "cycle involving stage '" + stages_[i].name +
                       "'";
    return std::nullopt;
}

std::vector<FrameGraph::StageId>
FrameGraph::topologicalOrder() const
{
    std::vector<int> indeg(stages_.size(), 0);
    for (std::size_t i = 0; i < stages_.size(); ++i)
        indeg[i] = static_cast<int>(stages_[i].inputIds.size());
    std::vector<StageId> order;
    std::vector<char> emitted(stages_.size(), 0);
    while (order.size() < stages_.size()) {
        int pick = -1;
        for (std::size_t i = 0; i < stages_.size(); ++i)
            if (!emitted[i] && indeg[i] == 0) {
                pick = static_cast<int>(i);
                break;
            }
        if (pick < 0)
            break; // cycle; callers must validate() first.
        emitted[static_cast<std::size_t>(pick)] = 1;
        order.push_back(pick);
        for (std::size_t c = 0; c < stages_.size(); ++c)
            for (StageId in : stages_[c].inputIds)
                if (in == pick)
                    --indeg[c];
    }
    return order;
}

std::vector<FrameGraph::StageId>
FrameGraph::consumers(StageId id) const
{
    std::vector<StageId> out;
    for (std::size_t c = 0; c < stages_.size(); ++c)
        for (StageId in : stages_[c].inputIds)
            if (in == id)
                out.push_back(static_cast<StageId>(c));
    return out;
}

// ---------------------------------------------------------------------------
// FrameGraphExecutor

FrameGraphExecutor::FrameGraphExecutor(FrameGraph graph, Params params,
                                       AdmitFn admit, CommitFn commit)
    : graph_(std::move(graph)), params_(params),
      admit_(std::move(admit)), commit_(std::move(commit)),
      shuffleRng_(params.scheduleSeed)
{
    if (auto err = graph_.validate())
        throw std::invalid_argument("FrameGraphExecutor: " + *err);
    if (params_.depth < 1)
        params_.depth = 1;
    pool_ = params_.pool ? params_.pool : &sharedWorkerPool();

    const std::size_t n = graph_.stageCount();
    topo_ = graph_.topologicalOrder();
    topoIndex_.assign(n, 0);
    for (std::size_t r = 0; r < topo_.size(); ++r)
        topoIndex_[static_cast<std::size_t>(topo_[r])] =
            static_cast<int>(r);
    consumers_.resize(n);
    inQueues_.resize(n);
    const auto cap = static_cast<std::size_t>(params_.depth);
    for (std::size_t s = 0; s < n; ++s) {
        for (FrameGraph::StageId c : graph_.consumers(static_cast<FrameGraph::StageId>(s)))
            consumers_[s].push_back(c);
        const std::size_t edges =
            std::max<std::size_t>(1, graph_.inputs(
                                         static_cast<FrameGraph::StageId>(s))
                                         .size());
        for (std::size_t j = 0; j < edges; ++j)
            inQueues_[s].emplace_back(cap);
    }
    slots_.resize(cap);
    for (InFlight& f : slots_)
        f.stages.resize(n);
    stageBusy_.assign(n, 0);
    stageFreeMs_.assign(n, 0.0);
    slotCommitMs_.assign(cap, 0.0);
}

FrameGraphExecutor::~FrameGraphExecutor()
{
    drain();
}

std::int64_t
FrameGraphExecutor::submit(double arrivalMs)
{
    std::vector<std::pair<int, std::int64_t>> overflow;
    std::int64_t frame = 0;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        slotFree_.wait(lock, [&] {
            return admitted_ - committed_ < params_.depth;
        });
        frame = admitted_++;
        const auto slot =
            static_cast<std::size_t>(frame % params_.depth);
        InFlight& f = slots_[slot];
        f.frame = frame;
        f.arrivalMs = arrivalMs;
        f.admitMs = std::max(arrivalMs, slotCommitMs_[slot]);
        f.stages.assign(graph_.stageCount(), StageTiming{});
        f.stagesDone = 0;
        if (admit_)
            admit_(frame);
        for (std::size_t s = 0; s < graph_.stageCount(); ++s)
            if (graph_.inputs(static_cast<FrameGraph::StageId>(s)).empty())
                inQueues_[s][0].tryPush(frame);
        dispatchReadyLocked(overflow);
    }
    for (const auto& [s, fr] : overflow)
        runStage(s, fr);
    return frame;
}

void
FrameGraphExecutor::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock, [&] { return committed_ == admitted_; });
}

std::int64_t
FrameGraphExecutor::framesCommitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return committed_;
}

double
FrameGraphExecutor::lastCommitVirtualMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lastCommitMs_;
}

std::size_t
FrameGraphExecutor::stageErrorCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stageErrors_;
}

void
FrameGraphExecutor::runStage(int stage, std::int64_t frame)
{
    double durMs = 0;
    {
        // Spans recorded by the stage body (and any nested NN-layer
        // spans on this thread) tag this frame, not the global one.
        obs::ScopedTraceFrame scope(frame);
        try {
            durMs = graph_.runStage(stage, frame);
        } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "[frame_graph] stage %s threw on frame %lld: "
                         "%s\n",
                         graph_.stageName(stage).c_str(),
                         static_cast<long long>(frame), e.what());
            std::lock_guard<std::mutex> lock(mutex_);
            ++stageErrors_;
        } catch (...) {
            std::fprintf(stderr,
                         "[frame_graph] stage %s threw on frame "
                         "%lld\n",
                         graph_.stageName(stage).c_str(),
                         static_cast<long long>(frame));
            std::lock_guard<std::mutex> lock(mutex_);
            ++stageErrors_;
        }
    }
    taskDone(stage, frame, durMs);
}

void
FrameGraphExecutor::taskDone(int stage, std::int64_t frame,
                             double durMs)
{
    std::vector<std::pair<int, std::int64_t>> overflow;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto slot =
            static_cast<std::size_t>(frame % params_.depth);
        InFlight& f = slots_[slot];
        const auto si = static_cast<std::size_t>(stage);

        // Pipelined-latency recurrence: the stage starts when the
        // frame is admitted, the stage itself is free, and every
        // input is ready. All three operands are schedule-independent.
        double start = f.admitMs;
        start = std::max(start, stageFreeMs_[si]);
        for (FrameGraph::StageId in : graph_.inputs(stage))
            start = std::max(
                start, f.stages[static_cast<std::size_t>(in)].endMs);
        StageTiming& t = f.stages[si];
        t.startMs = start;
        t.durMs = durMs;
        t.endMs = start + durMs;
        stageFreeMs_[si] = t.endMs;
        ++f.stagesDone;
        stageBusy_[si] = 0;

        for (int c : consumers_[si]) {
            const auto& ins = graph_.inputs(c);
            for (std::size_t j = 0; j < ins.size(); ++j)
                if (ins[j] == stage)
                    inQueues_[static_cast<std::size_t>(c)][j].tryPush(
                        frame);
        }
        commitFinishedLocked();
        dispatchReadyLocked(overflow);
    }
    for (const auto& [s, fr] : overflow)
        runStage(s, fr);
}

void
FrameGraphExecutor::dispatchReadyLocked(
    std::vector<std::pair<int, std::int64_t>>& overflow)
{
    struct Cand
    {
        std::int64_t frame;
        int topoIdx;
        int stage;
    };
    std::vector<Cand> cands;
    for (std::size_t s = 0; s < graph_.stageCount(); ++s) {
        if (stageBusy_[s])
            continue;
        bool ready = true;
        std::int64_t front = -1;
        for (auto& q : inQueues_[s]) {
            const auto head = q.peek();
            if (!head) {
                ready = false;
                break;
            }
            front = *head; // all fronts agree (lockstep pops).
        }
        if (ready)
            cands.push_back({front, topoIndex_[s],
                             static_cast<int>(s)});
    }
    if (cands.empty())
        return;
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) {
                  return a.frame != b.frame ? a.frame < b.frame
                                            : a.topoIdx < b.topoIdx;
              });
    // The shuffle perturbs only the real dispatch order; the virtual
    // timeline and all admit/commit ordering are unaffected, which is
    // exactly what the determinism tests exercise.
    if (params_.scheduleSeed != 0)
        std::shuffle(cands.begin(), cands.end(), shuffleRng_);
    for (const Cand& c : cands) {
        const auto si = static_cast<std::size_t>(c.stage);
        for (auto& q : inQueues_[si])
            q.tryPop();
        stageBusy_[si] = 1;
        if (!pool_->submit([this, s = c.stage, f = c.frame] {
                runStage(s, f);
            }))
            overflow.emplace_back(c.stage, c.frame);
    }
}

void
FrameGraphExecutor::commitFinishedLocked()
{
    while (committed_ < admitted_) {
        const auto slot =
            static_cast<std::size_t>(committed_ % params_.depth);
        InFlight& f = slots_[slot];
        if (f.frame != committed_ ||
            f.stagesDone != graph_.stageCount())
            break;
        FrameTiming timing;
        timing.frame = f.frame;
        timing.arrivalMs = f.arrivalMs;
        timing.admitMs = f.admitMs;
        timing.stages = f.stages;
        double commitMs = f.admitMs;
        for (const StageTiming& t : timing.stages)
            commitMs = std::max(commitMs, t.endMs);
        timing.commitMs = commitMs;
        slotCommitMs_[slot] = commitMs;
        lastCommitMs_ = commitMs;
        if (commit_)
            commit_(f.frame, timing);
        f.frame = -1;
        ++committed_;
        slotFree_.notify_all();
    }
    if (committed_ == admitted_)
        drained_.notify_all();
}

} // namespace ad::pipeline
