/**
 * @file
 * The end-to-end autonomous driving pipeline (Figure 1), measured
 * mode: camera frames flow into the object-detection engine (1a) and
 * the localization engine (1b) in parallel; detections feed the object
 * tracker (1c); tracked objects and the vehicle location fuse onto one
 * world coordinate space (2); the motion planner produces trajectories
 * (3); the mission planner re-routes only on deviation (4); and the
 * vehicle controller follows the plan (5).
 *
 * Per-stage latencies are recorded per frame; the end-to-end latency
 * composes as max(LOC, DET + TRA) + FUSION + MOTPLAN, reflecting the
 * parallel branches.
 */

#ifndef AD_PIPELINE_PIPELINE_HH
#define AD_PIPELINE_PIPELINE_HH

#include <optional>

#include "common/stats.hh"
#include "detect/yolo.hh"
#include "obs/deadline.hh"
#include "fusion/fusion.hh"
#include "pipeline/fault_injector.hh"
#include "pipeline/governor.hh"
#include "planning/conformal.hh"
#include "planning/control.hh"
#include "planning/mission.hh"
#include "slam/localizer.hh"
#include "track/pool.hh"

namespace ad::pipeline {

/** Pipeline construction parameters. */
struct PipelineParams
{
    detect::DetectorParams detector;
    track::PoolParams trackerPool;
    slam::LocalizerParams localizer;
    planning::ConformalParams motionPlanner;
    planning::MissionParams mission;
    planning::ControlParams control;
    double laneCenterY = 5.25; ///< corridor centerline for MOTPLAN.

    /**
     * The `nn.threads` knob applied to every engine at once. 0 leaves
     * the per-engine `threads` fields untouched; any other value
     * overrides DET, TRA and LOC (1 = serial pre-parallel behavior,
     * < 0 = hardware concurrency). Outputs are identical either way.
     */
    int nnThreads = 0;

    /**
     * The `nn.precision` knob applied to both DNN engines at once:
     * Int8 lowers the DET and TRA networks to the quantized kernel
     * path (nn/quant.hh), including the governor's warm standby
     * detector, which inherits the detector params. Fp32 (the
     * default) leaves the per-engine `precision` fields untouched.
     * LOC has no DNN and is unaffected.
     */
    nn::Precision nnPrecision = nn::Precision::Fp32;

    /**
     * The `nn.fuse` knob applied to both DNN engines at once: run the
     * graph-lowering pass (fused conv/FC+activation epilogues, direct
     * convolutions; nn/fusion.hh) on the DET and TRA networks at
     * build. On by default; off keeps the unfused reference path.
     * Outputs are bitwise-identical either way.
     */
    bool nnFuse = true;

    /**
     * The `nn.arena` knob applied to both DNN engines at once: plan
     * each network's intermediates into one static arena at build so
     * the per-frame forward performs zero tensor allocations
     * (nn/planner.hh). On by default; bitwise-identical outputs.
     */
    bool nnArena = true;

    /**
     * Deadline watchdog knobs (100 ms budget by default). The monitor
     * observes every frame -- it is a handful of comparisons -- and
     * never influences engine behavior, so outputs are identical
     * whatever the budget.
     */
    obs::DeadlineParams deadline;

    /**
     * Fault injection (`fault.*` knobs / adrun `--faults`). Disabled
     * by default; when disabled the pipeline draws nothing from the
     * fault stream and behaves exactly as before.
     */
    FaultInjectorParams faults;

    /**
     * Degradation governor (`gov.*` knobs / adrun `--governor`).
     * Disabled by default -- the pipeline then runs every stage every
     * frame (NOMINAL behavior, identical to the pre-governor system).
     * Enabling it also builds the warm standby detector at
     * `governor.degradedDetScale` input scale so DEGRADED-mode frames
     * never pay detector construction cost (the same warm-start rule
     * as the tracker pool, Section 3.1.2).
     */
    GovernorParams governor;
};

/** Wall-clock per-stage latencies of one frame (ms). */
struct StageLatencies
{
    double detMs = 0;
    double traMs = 0;
    double locMs = 0;
    double fusionMs = 0;
    double motPlanMs = 0;

    /** Parallel-branch composition (Figure 1). */
    double
    endToEndMs() const
    {
        const double perception = std::max(locMs, detMs + traMs);
        return perception + fusionMs + motPlanMs;
    }
};

/** Everything one frame produces. */
struct FrameOutput
{
    std::vector<detect::Detection> detections;
    std::vector<track::TrackedObject> tracks;
    slam::LocResult localization;
    fusion::FusedScene scene;
    planning::Trajectory trajectory;
    planning::ControlCommand command;
    StageLatencies latencies;
    bool missionReplanned = false;

    /** Governor operating mode during this frame. */
    OperatingMode mode = OperatingMode::Nominal;
    /** The camera delivered nothing this frame (injected drop). */
    bool frameDropped = false;
    /** The detection engine actually executed this frame. */
    bool detRan = false;
    /** Stale detections were reused (transient DET failure). */
    bool detFellBack = false;
    /** Pose was dead-reckoned (frame drop or transient LOC failure). */
    bool locFellBack = false;
    /** Tracks advanced by coasting rather than a full update. */
    bool traCoasted = false;
};

/**
 * The measured-mode end-to-end system. Holds non-owning pointers to
 * the prior map, camera and (optionally) road graph, which must
 * outlive the pipeline.
 */
class Pipeline
{
  public:
    /**
     * @param map prior map for localization.
     * @param camera camera geometry (shared with the renderer).
     * @param roadGraph optional road network for mission planning.
     * @param params tuning.
     */
    Pipeline(const slam::PriorMap* map, const sensors::Camera* camera,
             const planning::RoadGraph* roadGraph,
             const PipelineParams& params);

    /** Initialize the ego state and (if routable) the mission. */
    void reset(const Pose2& pose, const Vec2& velocity,
               const Vec2& destination);

    /**
     * Provide wheel odometry for the interval before the next frame;
     * forwarded to the localization engine's motion model.
     */
    void
    feedOdometry(const sensors::OdometryReading& odometry)
    {
        localizer_.feedOdometry(odometry);
    }

    /**
     * Process one camera frame through all engines.
     *
     * @param image the frame.
     * @param dt seconds since the previous frame.
     * @param egoSpeed current ego speed (for the controller).
     */
    FrameOutput processFrame(const Image& image, double dt,
                             double egoSpeed);

    /** Per-stage latency recorders over all processed frames. */
    const LatencyRecorder& detLatency() const { return detRec_; }
    const LatencyRecorder& traLatency() const { return traRec_; }
    const LatencyRecorder& locLatency() const { return locRec_; }
    const LatencyRecorder& fusionLatency() const { return fusionRec_; }
    const LatencyRecorder& motPlanLatency() const { return motRec_; }
    const LatencyRecorder& endToEndLatency() const { return e2eRec_; }

    /** Aggregate cycle attribution for the Figure 7 breakdown. */
    struct CycleBreakdown
    {
        double detDnnMs = 0;
        double detOtherMs = 0;
        double traDnnMs = 0;
        double traOtherMs = 0;
        double locFeMs = 0;
        double locOtherMs = 0;
    };

    const CycleBreakdown& cycleBreakdown() const { return cycles_; }

    /** The 100 ms reaction-budget watchdog fed by every frame. */
    const obs::DeadlineMonitor& deadlineMonitor() const
    {
        return deadline_;
    }

    /** The degradation governor, or null when disabled. */
    const DegradationGovernor* governor() const
    {
        return governor_ ? &*governor_ : nullptr;
    }

    /** The fault injector, or null when disabled. */
    const FaultInjector* faultInjector() const
    {
        return faults_ ? &*faults_ : nullptr;
    }

    detect::YoloDetector& detector() { return detector_; }
    slam::Localizer& localizer() { return localizer_; }
    planning::MissionPlanner* missionPlanner()
    {
        return mission_ ? &*mission_ : nullptr;
    }

  private:
    PipelineParams params_;
    const sensors::Camera* camera_;
    detect::YoloDetector detector_;
    /** Warm standby at degraded input scale (governor enabled only). */
    std::optional<detect::YoloDetector> degradedDetector_;
    track::TrackerPool trackerPool_;
    slam::Localizer localizer_;
    fusion::FusionEngine fusion_;
    std::optional<planning::MissionPlanner> mission_;
    planning::VehicleController controller_;
    std::optional<FaultInjector> faults_;
    std::optional<DegradationGovernor> governor_;

    /** Fallback state: last good results + bounded staleness ages. */
    std::vector<detect::Detection> lastDetections_;
    Pose2 lastLocPose_;
    Vec2 lastLocVelocity_{0, 0};
    int detStaleFrames_ = 0;
    int locStaleFrames_ = 0;

    LatencyRecorder detRec_;
    LatencyRecorder traRec_;
    LatencyRecorder locRec_;
    LatencyRecorder fusionRec_;
    LatencyRecorder motRec_;
    LatencyRecorder e2eRec_;
    CycleBreakdown cycles_;
    obs::DeadlineMonitor deadline_;
    double time_ = 0;
    std::int64_t frameIndex_ = 0;
    /** Governor transitions already copied to the flight recorder. */
    std::size_t govTransitionsSeen_ = 0;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_PIPELINE_HH
