/**
 * @file
 * The end-to-end autonomous driving pipeline (Figure 1), measured
 * mode: camera frames flow into the object-detection engine (1a) and
 * the localization engine (1b) in parallel; detections feed the object
 * tracker (1c); tracked objects and the vehicle location fuse onto one
 * world coordinate space (2); the motion planner produces trajectories
 * (3); the mission planner re-routes only on deviation (4); and the
 * vehicle controller follows the plan (5).
 *
 * Per-stage latencies are recorded per frame; the end-to-end latency
 * composes as max(LOC, DET + TRA) + FUSION + MOTPLAN, reflecting the
 * parallel branches.
 *
 * Two execution modes share the same stage bodies: the serial path
 * (processFrame) runs the stages in topological order on the calling
 * thread, and the async path (`pipeline.async`, submitFrame) runs
 * them through the frame-graph executor (frame_graph.hh) so stages
 * of up to `pipeline.depth` consecutive frames overlap. Outputs are
 * bitwise-identical across modes at depth 1 and deterministic at
 * every depth, worker count, and schedule seed.
 */

#ifndef AD_PIPELINE_PIPELINE_HH
#define AD_PIPELINE_PIPELINE_HH

#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "common/stats.hh"
#include "detect/yolo.hh"
#include "obs/deadline.hh"
#include "fusion/fusion.hh"
#include "pipeline/fault_injector.hh"
#include "pipeline/frame_graph.hh"
#include "pipeline/governor.hh"
#include "planning/conformal.hh"
#include "planning/control.hh"
#include "planning/mission.hh"
#include "slam/localizer.hh"
#include "track/pool.hh"

namespace ad::pipeline {

/** Pipeline construction parameters. */
struct PipelineParams
{
    detect::DetectorParams detector;
    track::PoolParams trackerPool;
    slam::LocalizerParams localizer;
    planning::ConformalParams motionPlanner;
    planning::MissionParams mission;
    planning::ControlParams control;
    double laneCenterY = 5.25; ///< corridor centerline for MOTPLAN.

    /**
     * The `nn.threads` knob applied to every engine at once. 0 leaves
     * the per-engine `threads` fields untouched; any other value
     * overrides DET, TRA and LOC (1 = serial pre-parallel behavior,
     * < 0 = hardware concurrency). Outputs are identical either way.
     */
    int nnThreads = 0;

    /**
     * The `nn.precision` knob applied to both DNN engines at once:
     * Int8 lowers the DET and TRA networks to the quantized kernel
     * path (nn/quant.hh), including the governor's warm standby
     * detector, which inherits the detector params. Fp32 (the
     * default) leaves the per-engine `precision` fields untouched.
     * LOC has no DNN and is unaffected.
     */
    nn::Precision nnPrecision = nn::Precision::Fp32;

    /**
     * The `nn.fuse` knob applied to both DNN engines at once: run the
     * graph-lowering pass (fused conv/FC+activation epilogues, direct
     * convolutions; nn/fusion.hh) on the DET and TRA networks at
     * build. On by default; off keeps the unfused reference path.
     * Outputs are bitwise-identical either way.
     */
    bool nnFuse = true;

    /**
     * The `nn.arena` knob applied to both DNN engines at once: plan
     * each network's intermediates into one static arena at build so
     * the per-frame forward performs zero tensor allocations
     * (nn/planner.hh). On by default; bitwise-identical outputs.
     */
    bool nnArena = true;

    /**
     * Deadline watchdog knobs (100 ms budget by default). The monitor
     * observes every frame -- it is a handful of comparisons -- and
     * never influences engine behavior, so outputs are identical
     * whatever the budget.
     */
    obs::DeadlineParams deadline;

    /**
     * Fault injection (`fault.*` knobs / adrun `--faults`). Disabled
     * by default; when disabled the pipeline draws nothing from the
     * fault stream and behaves exactly as before.
     */
    FaultInjectorParams faults;

    /**
     * The `pipeline.async` knob: run frames through the frame-graph
     * executor (pipeline/frame_graph.hh) so stages of consecutive
     * frames overlap -- DET of frame k runs while TRA/LOC/FUSION of
     * frame k+1 are in flight. Off by default (the serial path). The
     * async path is bitwise-identical to serial at depth 1 and
     * deterministic (schedule-independent) at every depth; the
     * governor's actuation plan lags its serial counterpart by
     * depth-1 frames of feedback (see docs/DESIGN.md).
     */
    bool async = false;

    /**
     * The `pipeline.depth` knob: max frames in flight when
     * `async` is set (>= 1; 1 degenerates to serial scheduling with
     * the async machinery). Each graph edge buffers at most this many
     * frames, so admission backpressure is bounded.
     */
    int asyncDepth = 2;

    /**
     * The `pipeline.seed` knob: seed for the executor's dispatch-order
     * shuffle. 0 (default) dispatches ready stages deterministically
     * by (frame, topological rank); any other value perturbs only the
     * real dispatch order, never outputs -- the determinism tests
     * sweep it to prove schedule independence.
     */
    std::uint64_t scheduleSeed = 0;

    /**
     * Degradation governor (`gov.*` knobs / adrun `--governor`).
     * Disabled by default -- the pipeline then runs every stage every
     * frame (NOMINAL behavior, identical to the pre-governor system).
     * Enabling it also builds the warm standby detector at
     * `governor.degradedDetScale` input scale so DEGRADED-mode frames
     * never pay detector construction cost (the same warm-start rule
     * as the tracker pool, Section 3.1.2).
     */
    GovernorParams governor;
};

/** Wall-clock per-stage latencies of one frame (ms). */
struct StageLatencies
{
    double detMs = 0;
    double traMs = 0;
    double locMs = 0;
    double fusionMs = 0;
    double motPlanMs = 0;

    /** Parallel-branch composition (Figure 1). */
    double
    endToEndMs() const
    {
        const double perception = std::max(locMs, detMs + traMs);
        return perception + fusionMs + motPlanMs;
    }
};

/** Everything one frame produces. */
struct FrameOutput
{
    std::vector<detect::Detection> detections;
    std::vector<track::TrackedObject> tracks;
    slam::LocResult localization;
    fusion::FusedScene scene;
    planning::Trajectory trajectory;
    planning::ControlCommand command;
    StageLatencies latencies;
    bool missionReplanned = false;

    /** Governor operating mode during this frame. */
    OperatingMode mode = OperatingMode::Nominal;
    /** The camera delivered nothing this frame (injected drop). */
    bool frameDropped = false;
    /** The detection engine actually executed this frame. */
    bool detRan = false;
    /** Stale detections were reused (transient DET failure). */
    bool detFellBack = false;
    /** Pose was dead-reckoned (frame drop or transient LOC failure). */
    bool locFellBack = false;
    /** Tracks advanced by coasting rather than a full update. */
    bool traCoasted = false;

    /** Frame id (submit order); -1 before the pipeline assigns one. */
    std::int64_t frameId = -1;

    /**
     * The frame's pipelined latency on the virtual timeline: commit
     * minus arrival, which includes queueing behind earlier in-flight
     * frames. Equals latencies.endToEndMs() on the serial path and in
     * an unloaded async pipeline.
     */
    double pipelinedMs = 0;
};

/**
 * The measured-mode end-to-end system. Holds non-owning pointers to
 * the prior map, camera and (optionally) road graph, which must
 * outlive the pipeline.
 */
class Pipeline
{
  public:
    /**
     * @param map prior map for localization.
     * @param camera camera geometry (shared with the renderer).
     * @param roadGraph optional road network for mission planning.
     * @param params tuning.
     */
    Pipeline(const slam::PriorMap* map, const sensors::Camera* camera,
             const planning::RoadGraph* roadGraph,
             const PipelineParams& params);

    /** Initialize the ego state and (if routable) the mission. */
    void reset(const Pose2& pose, const Vec2& velocity,
               const Vec2& destination);

    /**
     * Provide wheel odometry for the interval before the next frame;
     * forwarded to the localization engine's motion model. In async
     * mode the reading is buffered and applied by the next submitted
     * frame's LOC stage, preserving the serial ordering.
     */
    void feedOdometry(const sensors::OdometryReading& odometry);

    /**
     * Process one camera frame through all engines, serially. Must
     * not be mixed with submitFrame() when `pipeline.async` is set --
     * it bypasses the executor's stage ordering.
     *
     * @param image the frame.
     * @param dt seconds since the previous frame.
     * @param egoSpeed current ego speed (for the controller).
     */
    FrameOutput processFrame(const Image& image, double dt,
                             double egoSpeed);

    /**
     * Submit one frame to the async frame-graph executor, blocking
     * while `pipeline.depth` frames are in flight, and collect every
     * frame that has committed since the last call (zero or more,
     * in frame order; outputs trail submissions by up to the depth).
     * Falls back to processFrame() when async mode is off, returning
     * that single output.
     */
    std::vector<FrameOutput> submitFrame(const Image& image, double dt,
                                         double egoSpeed);

    /**
     * Block until every submitted frame has committed and return the
     * remaining outputs in frame order (empty in serial mode).
     */
    std::vector<FrameOutput> drainAsync();

    /** True when the async frame-graph executor is active. */
    bool asyncEnabled() const { return exec_ != nullptr; }

    /** The async executor, or null in serial mode (for benchmarks). */
    const FrameGraphExecutor* executor() const { return exec_.get(); }

    /** Per-stage latency recorders over all processed frames. */
    const LatencyRecorder& detLatency() const { return detRec_; }
    const LatencyRecorder& traLatency() const { return traRec_; }
    const LatencyRecorder& locLatency() const { return locRec_; }
    const LatencyRecorder& fusionLatency() const { return fusionRec_; }
    const LatencyRecorder& motPlanLatency() const { return motRec_; }
    const LatencyRecorder& endToEndLatency() const { return e2eRec_; }

    /**
     * Pipelined (commit minus arrival) latency per frame on the
     * virtual timeline; matches endToEndLatency() on the serial path.
     */
    const LatencyRecorder& pipelinedLatency() const
    {
        return pipelinedRec_;
    }

    /** Aggregate cycle attribution for the Figure 7 breakdown. */
    struct CycleBreakdown
    {
        double detDnnMs = 0;
        double detOtherMs = 0;
        double traDnnMs = 0;
        double traOtherMs = 0;
        double locFeMs = 0;
        double locOtherMs = 0;
    };

    const CycleBreakdown& cycleBreakdown() const { return cycles_; }

    /** The 100 ms reaction-budget watchdog fed by every frame. */
    const obs::DeadlineMonitor& deadlineMonitor() const
    {
        return deadline_;
    }

    /** The degradation governor, or null when disabled. */
    const DegradationGovernor* governor() const
    {
        return governor_ ? &*governor_ : nullptr;
    }

    /** The fault injector, or null when disabled. */
    const FaultInjector* faultInjector() const
    {
        return faults_ ? &*faults_ : nullptr;
    }

    detect::YoloDetector& detector() { return detector_; }
    slam::Localizer& localizer() { return localizer_; }
    planning::MissionPlanner* missionPlanner()
    {
        return mission_ ? &*mission_ : nullptr;
    }

  private:
    /**
     * Everything one in-flight frame carries between stages. Stage
     * methods write disjoint fields; the executor's per-stage frame
     * ordering makes every engine see frames in submit order, so the
     * engines themselves need no locking.
     */
    struct FrameJob
    {
        std::int64_t id = -1;     ///< pipeline frame id.
        double traceStartUs = 0;  ///< wall-clock trace stamp at admission.
        double dt = 0;            ///< seconds since previous frame.
        double egoSpeed = 0;      ///< ego speed for the controller.
        double timeS = 0;         ///< mission clock at this frame (s).
        Image image;              ///< owned copy (async mode only).
        const Image* frame = nullptr; ///< input after SENSE.
        Image corrupted;          ///< corrupted copy when a fault fired.
        FaultPlan fault;          ///< this frame's fault draws.
        FramePlan plan;           ///< governor actuation plan.
        detect::DetectorTimings detTimings;
        track::PoolTimings traTimings;
        FrameOutput out;          ///< the result under construction.
        bool locStaleExceeded = false; ///< LOC blew the staleness bound.
        std::vector<sensors::OdometryReading> odom; ///< buffered input.
    };

    /** Sensor corruption (pixel faults) ahead of DET/LOC. */
    void stageSense(FrameJob& job);
    /** (1a) Object detection, with stale-detection fallback. */
    void stageDet(FrameJob& job);
    /** (1b) Localization, with dead-reckoning fallback. */
    void stageLoc(FrameJob& job);
    /** (1c) Object tracking (update, coast, or blind-coast). */
    void stageTra(FrameJob& job);
    /** (2) Fusion onto the world coordinate space. */
    void stageFusion(FrameJob& job);
    /** (3)(4)(5) Mission check, motion planning, vehicle control. */
    void stagePlan(FrameJob& job);

    /**
     * Frame-ordered epilogue: safe-stop escalation, cycle and latency
     * aggregation, deadline/governor feedback, flight recorder and
     * metrics. @p timing is the executor's virtual-timeline record
     * (null on the serial path, which re-derives the serial layout).
     */
    void commitJob(FrameJob& job,
                   const FrameGraphExecutor::FrameTiming* timing);

    /** Declare the stage DAG over this pipeline's stage methods. */
    FrameGraph buildGraph();

    /** (Re)create the executor and pre-stage the first plans. */
    void setupExecutor();

    PipelineParams params_;
    const sensors::Camera* camera_;
    detect::YoloDetector detector_;
    /** Warm standby at degraded input scale (governor enabled only). */
    std::optional<detect::YoloDetector> degradedDetector_;
    track::TrackerPool trackerPool_;
    slam::Localizer localizer_;
    fusion::FusionEngine fusion_;
    std::optional<planning::MissionPlanner> mission_;
    planning::VehicleController controller_;
    std::optional<FaultInjector> faults_;
    std::optional<DegradationGovernor> governor_;

    /** Fallback state: last good results + bounded staleness ages. */
    std::vector<detect::Detection> lastDetections_;
    Pose2 lastLocPose_;
    Vec2 lastLocVelocity_{0, 0};
    int detStaleFrames_ = 0;
    int locStaleFrames_ = 0;

    LatencyRecorder detRec_;
    LatencyRecorder traRec_;
    LatencyRecorder locRec_;
    LatencyRecorder fusionRec_;
    LatencyRecorder motRec_;
    LatencyRecorder e2eRec_;
    LatencyRecorder pipelinedRec_;
    CycleBreakdown cycles_;
    obs::DeadlineMonitor deadline_;
    double time_ = 0;
    std::int64_t frameIndex_ = 0;
    /** Governor transitions already copied to the flight recorder. */
    std::size_t govTransitionsSeen_ = 0;

    // --- Async frame-graph state (unused on the serial path). ---
    int depth_ = 1;               ///< clamped pipeline.depth.
    std::vector<FrameJob> jobs_;  ///< ring, indexed frame % depth.
    /**
     * Staged governor plans: commit of frame j computes the plan for
     * frame j + depth (after observing j), and frame admission pops
     * the front. At depth 1 this reproduces the serial plan stream
     * exactly; at depth D the plan lags D-1 frames of feedback but is
     * schedule-independent either way.
     */
    std::deque<FramePlan> planQueue_;
    std::vector<sensors::OdometryReading> pendingOdom_;
    const Image* pendingImage_ = nullptr; ///< staged for admission.
    double pendingDt_ = 0;
    double pendingSpeed_ = 0;
    std::mutex readyMutex_;          ///< guards ready_ only.
    std::deque<FrameOutput> ready_;  ///< committed, not yet collected.
    int senseStage_ = -1, detStage_ = -1, locStage_ = -1;
    int traStage_ = -1, fusionStage_ = -1, planStage_ = -1;
    /**
     * The executor; declared last so it is destroyed (and drained)
     * before any state its in-flight stage tasks touch.
     */
    std::unique_ptr<FrameGraphExecutor> exec_;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_PIPELINE_HH
