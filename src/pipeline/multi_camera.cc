#include "pipeline/multi_camera.hh"

#include <algorithm>

#include <string>

#include "common/logging.hh"
#include "common/time.hh"
#include "obs/trace.hh"

namespace ad::pipeline {

MultiCameraParams
MultiCameraParams::fanRig(int cameras, double fovSpreadRad)
{
    if (cameras <= 0)
        fatal("fanRig: camera count must be positive");
    MultiCameraParams p;
    p.mounts.reserve(cameras);
    // Forward camera first (it feeds localization), remaining heads
    // fanned symmetrically across the spread.
    p.mounts.push_back({0.0, sensors::Resolution::HHD});
    for (int i = 1; i < cameras; ++i) {
        const int side = (i % 2) ? 1 : -1;
        const int ring = (i + 1) / 2;
        const double yaw = side * fovSpreadRad * ring /
                           std::max(1, (cameras - 1));
        p.mounts.push_back({yaw, sensors::Resolution::HHD});
    }
    return p;
}

MultiCameraRig::MultiCameraRig(const slam::PriorMap* map,
                               const MultiCameraParams& params)
    : params_(params)
{
    if (params.mounts.empty())
        fatal("MultiCameraRig: at least one camera mount required");
    for (std::size_t i = 0; i < params.mounts.size(); ++i) {
        cameras_.push_back(std::make_unique<sensors::Camera>(
            params.mounts[i].resolution));
        detect::DetectorParams dp = params.detector;
        dp.seed = params.detector.seed + i;
        detectors_.push_back(std::make_unique<detect::YoloDetector>(dp));
        track::PoolParams tp = params.trackerPool;
        tp.tracker.seed = params.trackerPool.tracker.seed + 100 * i;
        trackerPools_.push_back(std::make_unique<track::TrackerPool>(tp));
        fusions_.push_back(std::make_unique<fusion::FusionEngine>(
            cameras_.back().get()));
    }
    localizer_ = std::make_unique<slam::Localizer>(
        map, cameras_[0].get(), params.localizer);
}

void
MultiCameraRig::reset(const Pose2& pose, const Vec2& velocity)
{
    localizer_->reset(pose, velocity);
    time_ = 0;
}

RigOutput
MultiCameraRig::step(const sensors::World& world, const Pose2& egoTruth,
                     double dt)
{
    RigOutput out;
    time_ += dt;
    const std::int64_t frameId = frameIndex_++;
    auto& tracerRef = obs::tracer();
    if (tracerRef.enabled())
        tracerRef.setFrame(frameId);
    obs::TraceSpan frameSpan(tracerRef, "RIG_FRAME", "frame", frameId);

    // Render every head from its mounted pose.
    std::vector<sensors::Frame> frames;
    frames.reserve(cameras_.size());
    std::vector<Pose2> headPoses;
    for (std::size_t i = 0; i < cameras_.size(); ++i) {
        const Pose2 head(egoTruth.pos,
                         wrapAngle(egoTruth.theta +
                                   params_.mounts[i].yawOffset));
        headPoses.push_back(head);
        frames.push_back(cameras_[i]->render(world, head));
    }

    // LOC on the forward camera (runs in parallel with detection).
    {
        obs::TraceSpan span(tracerRef, "LOC", "rig");
        Stopwatch watch;
        out.localization = localizer_->localize(frames[0].image, dt);
        out.locMs = watch.elapsedMs();
    }

    // Per-camera DET + TRA replicas. Executed sequentially here but
    // timed per replica: the modeled deployment runs them on parallel
    // engine copies, so perception latency is the per-camera maximum.
    out.detectionsPerCamera.resize(cameras_.size(), 0);
    double maxPerCameraMs = 0;
    std::vector<std::vector<track::TrackedObject>> tracksPerCamera(
        cameras_.size());
    for (std::size_t i = 0; i < cameras_.size(); ++i) {
        obs::TraceSpan span(tracerRef,
                            "CAM" + std::to_string(i) + ".det+tra",
                            "rig");
        Stopwatch watch;
        const auto detections =
            detectors_[i]->detect(frames[i].image);
        trackerPools_[i]->update(frames[i].image, detections);
        tracksPerCamera[i] = trackerPools_[i]->tracks();
        out.detectionsPerCamera[i] =
            static_cast<int>(detections.size());
        maxPerCameraMs = std::max(maxPerCameraMs, watch.elapsedMs());
    }
    out.perceptionMs = maxPerCameraMs;

    // Fusion: project every camera's tracks through its own head pose
    // (derived from the *estimated* ego pose) into one scene.
    {
        obs::TraceSpan span(tracerRef, "FUSION", "rig");
        Stopwatch watch;
        out.scene.egoPose = out.localization.pose;
        out.scene.timestamp = time_;
        for (std::size_t i = 0; i < cameras_.size(); ++i) {
            const Pose2 estHead(
                out.localization.pose.pos,
                wrapAngle(out.localization.pose.theta +
                          params_.mounts[i].yawOffset));
            const auto scene = fusions_[i]->fuse(
                tracksPerCamera[i], estHead, dt, time_);
            for (const auto& obj : scene.objects)
                out.scene.objects.push_back(obj);
        }
        out.fusionMs = watch.elapsedMs();
    }

    out.endToEndMs =
        std::max(out.locMs, out.perceptionMs) + out.fusionMs;
    e2eRec_.record(out.endToEndMs);
    return out;
}

} // namespace ad::pipeline
