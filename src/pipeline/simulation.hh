/**
 * @file
 * Closed-loop simulation harness: world + camera + the end-to-end
 * pipeline + vehicle dynamics in one stepping loop. The pipeline's own
 * control commands drive the (bicycle-model) ego vehicle, wheel
 * odometry feeds the localizer, and the harness accumulates the
 * driving-quality metrics (lane keeping, clearances, localization
 * health) that complement the paper's latency-centric evaluation --
 * the "functional aspects" of predictability its Section 2.4.2 defers.
 */

#ifndef AD_PIPELINE_SIMULATION_HH
#define AD_PIPELINE_SIMULATION_HH

#include "pipeline/pipeline.hh"
#include "planning/control.hh"
#include "sensors/odometry.hh"
#include "sensors/scenario.hh"
#include "slam/mapping.hh"

namespace ad::pipeline {

/** Harness knobs. */
struct SimulationParams
{
    PipelineParams pipeline;
    double dt = 0.1;              ///< frame period (10 fps).
    bool useOdometry = true;      ///< feed wheel odometry to LOC.
    double collisionRadius = 1.6; ///< ego-center to actor-center (m).
    std::uint64_t odometrySeed = 5;
    sensors::RenderConditions conditions;
};

/** Accumulated driving-quality metrics. */
struct SimulationMetrics
{
    int frames = 0;
    int localizedFrames = 0;
    int relocalizations = 0;
    int collisionFrames = 0;   ///< frames inside an actor's radius.
    int missionReplans = 0;
    double distanceTraveled = 0;
    double maxLaneError = 0;   ///< |y - lane center| maximum.
    double maxLocalizationError = 0; ///< vs ground truth.
    double minActorClearance = 1e9;
    double meanSpeed = 0;
};

/**
 * Owns a copy of the scenario world and drives it closed loop. The
 * prior map and camera are borrowed and must outlive the simulation.
 */
class Simulation
{
  public:
    /**
     * @param scenario scenario to run (world copied, ego start used).
     * @param map prior map for localization.
     * @param camera camera for rendering and perception.
     * @param roadGraph optional mission road network.
     * @param params harness knobs.
     */
    Simulation(const sensors::Scenario& scenario,
               const slam::PriorMap* map, const sensors::Camera* camera,
               const planning::RoadGraph* roadGraph,
               const SimulationParams& params);

    /** Advance one frame; returns that frame's pipeline output. */
    FrameOutput step();

    /** Run n frames. */
    void run(int frames);

    const SimulationMetrics& metrics() const { return metrics_; }
    const planning::VehicleState& ego() const { return ego_; }
    const sensors::World& world() const { return world_; }
    Pipeline& pipeline() { return pipeline_; }

  private:
    SimulationParams params_;
    sensors::World world_;
    const sensors::Camera* camera_;
    Pipeline pipeline_;
    planning::VehicleState ego_;
    sensors::WheelOdometry odometry_;
    double laneCenterY_;
    SimulationMetrics metrics_;
    double speedSum_ = 0;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_SIMULATION_HH
