#include "pipeline/scheduler.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace ad::pipeline {

ScheduleStats
simulateSchedule(const std::function<double()>& sampler, int frames,
                 const SchedulerParams& params)
{
    if (params.framePeriodMs <= 0 || params.deadlineMs <= 0 ||
        params.queueDepth < 0)
        fatal("simulateSchedule: invalid parameters");

    ScheduleStats stats;
    LatencyRecorder responses(static_cast<std::size_t>(frames));

    double engineFreeAt = 0.0; // time the engine finishes current work
    std::deque<double> queue;  // arrival times of waiting frames
    double lastCompletion = 0.0;

    for (int i = 0; i < frames; ++i) {
        const double arrival = i * params.framePeriodMs;
        ++stats.framesArrived;

        // Drain every queued frame the engine finished before this
        // arrival.
        while (!queue.empty() && engineFreeAt <= arrival) {
            const double start =
                std::max(queue.front(), engineFreeAt);
            const double completion = start + sampler();
            engineFreeAt = completion;
            lastCompletion = completion;
            const double response = completion - queue.front();
            responses.record(response);
            ++stats.framesProcessed;
            stats.deadlineMisses += response > params.deadlineMs;
            queue.pop_front();
        }

        // The queue holds only waiting frames (the in-service frame's
        // arrival was already popped); queueDepth bounds the waiters.
        if (static_cast<int>(queue.size()) >= params.queueDepth &&
            engineFreeAt > arrival) {
            // Saturated: this camera frame is never examined -- the
            // system is driving on stale information.
            ++stats.framesDropped;
            continue;
        }
        queue.push_back(arrival);
    }

    // Drain the tail.
    while (!queue.empty()) {
        const double start = std::max(queue.front(), engineFreeAt);
        const double completion = start + sampler();
        engineFreeAt = completion;
        lastCompletion = completion;
        const double response = completion - queue.front();
        responses.record(response);
        ++stats.framesProcessed;
        stats.deadlineMisses += response > params.deadlineMs;
        queue.pop_front();
    }

    stats.responseTime = responses.summary();
    if (lastCompletion > 0)
        stats.achievedFps =
            1000.0 * stats.framesProcessed / lastCompletion;

    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("scheduler.frames_arrived")
            .add(static_cast<std::uint64_t>(stats.framesArrived));
        reg.counter("scheduler.frames_processed")
            .add(static_cast<std::uint64_t>(stats.framesProcessed));
        reg.counter("scheduler.frames_dropped")
            .add(static_cast<std::uint64_t>(stats.framesDropped));
        reg.counter("scheduler.deadline_misses")
            .add(static_cast<std::uint64_t>(stats.deadlineMisses));
        reg.histogram("scheduler.response_ms").mergeFrom(responses);
    }
    return stats;
}

} // namespace ad::pipeline
