/**
 * @file
 * The design-constraint checker (Section 2.4): given a whole-system
 * assessment, verdicts for each of the paper's constraint classes --
 * performance (<=100 ms tail at >=10 fps), predictability (tail
 * amplification), storage (on-vehicle prior map), thermal (cabin
 * placement and cooling capacity) and power (driving-range impact).
 */

#ifndef AD_PIPELINE_CONSTRAINTS_HH
#define AD_PIPELINE_CONSTRAINTS_HH

#include <string>
#include <vector>

#include "pipeline/system_model.hh"
#include "vehicle/storage.hh"
#include "vehicle/thermal.hh"

namespace ad::pipeline {

/** One constraint verdict. */
struct ConstraintVerdict
{
    std::string constraint; ///< e.g.\ "performance".
    bool satisfied = false;
    std::string detail;     ///< human-readable explanation.
};

/** Constraint thresholds (paper defaults). */
struct ConstraintParams
{
    double latencyBudgetMs = 100.0;   ///< Section 2.4.1.
    double minFrameRateHz = 10.0;     ///< Section 2.4.1.
    double tailAmplificationMax = 3.0; ///< predictability gate.
    double storageBudgetTb = 50.0;    ///< on-vehicle disk budget.
    double rangeReductionMaxPct = 5.0; ///< Section 5.3 guidance.
};

/** Evaluates the full Section 2.4 constraint set. */
class ConstraintChecker
{
  public:
    explicit ConstraintChecker(const ConstraintParams& params = {});

    /**
     * Check every constraint class against an assessment.
     *
     * Frame-rate note: engines process streams frame by frame, so the
     * sustainable frame rate is bounded by the mean end-to-end
     * latency; the performance constraint requires both the 100 ms
     * tail and a >=10 Hz sustainable rate.
     */
    std::vector<ConstraintVerdict> check(
        const SystemAssessment& assessment) const;

    /** True iff every verdict in check() is satisfied. */
    bool allSatisfied(const SystemAssessment& assessment) const;

    const ConstraintParams& params() const { return params_; }

  private:
    ConstraintParams params_;
    vehicle::CabinThermalModel thermal_;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_CONSTRAINTS_HH
