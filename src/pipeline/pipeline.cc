#include "pipeline/pipeline.hh"

#include "common/time.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sensors/corruption.hh"

namespace ad::pipeline {

namespace {

/**
 * Fan the pipeline-wide nn.threads / nn.precision / nn.fuse /
 * nn.arena overrides out to the engines.
 */
PipelineParams
applyNnOverrides(PipelineParams p)
{
    if (p.nnThreads != 0) {
        p.detector.threads = p.nnThreads;
        p.trackerPool.tracker.threads = p.nnThreads;
        p.localizer.threads = p.nnThreads;
    }
    if (p.nnPrecision != nn::Precision::Fp32) {
        p.detector.precision = p.nnPrecision;
        p.trackerPool.tracker.precision = p.nnPrecision;
    }
    p.detector.fuse = p.nnFuse;
    p.trackerPool.tracker.fuse = p.nnFuse;
    p.detector.arena = p.nnArena;
    p.trackerPool.tracker.arena = p.nnArena;
    return p;
}

/** Virtual spike milliseconds injected on one stage this frame. */
double
spikeOn(const FaultPlan& fault, obs::Stage stage)
{
    return fault.spikeMs[static_cast<std::size_t>(stage)];
}

} // namespace

Pipeline::Pipeline(const slam::PriorMap* map,
                   const sensors::Camera* camera,
                   const planning::RoadGraph* roadGraph,
                   const PipelineParams& params)
    : params_(applyNnOverrides(params)), camera_(camera),
      detector_(params_.detector), trackerPool_(params_.trackerPool),
      localizer_(map, camera, params_.localizer), fusion_(camera),
      controller_(params_.control), deadline_(params_.deadline)
{
    if (roadGraph)
        mission_.emplace(roadGraph, params_.mission);
    if (params_.faults.enabled)
        faults_.emplace(params_.faults);
    if (params_.governor.enabled) {
        governor_.emplace(params_.governor);
        // Warm standby detector at degraded scale: built now so
        // DEGRADED-mode frames never pay construction cost (the
        // tracker-pool warm-start rule, Section 3.1.2).
        degradedDetector_.emplace(params_.detector.scaledInput(
            params_.governor.degradedDetScale));
    }
}

void
Pipeline::reset(const Pose2& pose, const Vec2& velocity,
                const Vec2& destination)
{
    localizer_.reset(pose, velocity);
    if (mission_)
        mission_->plan(pose.pos, destination);
    controller_.reset();
    time_ = 0;
    lastLocPose_ = pose;
    lastLocVelocity_ = velocity;
    lastDetections_.clear();
    detStaleFrames_ = 0;
    locStaleFrames_ = 0;
}

FrameOutput
Pipeline::processFrame(const Image& image, double dt, double egoSpeed)
{
    FrameOutput out;
    time_ += dt;
    const std::int64_t frameId = frameIndex_++;
    auto& tracerRef = obs::tracer();
    if (tracerRef.enabled())
        tracerRef.setFrame(frameId);
    obs::TraceSpan frameSpan(tracerRef, "FRAME", "frame", frameId);

    // Fault plan for this frame (a fixed number of seeded draws) and
    // the governor's actuation plan. With both subsystems disabled
    // this degenerates to "run everything", the pre-governor flow.
    const FaultPlan fault =
        faults_ ? faults_->planFrame() : FaultPlan{};
    const FramePlan plan = governor_ ? governor_->plan(frameId)
                                     : FramePlan{};
    out.mode = plan.mode;
    out.frameDropped = fault.dropFrame;

    // Sensor corruption reaches the engines through the pixels; the
    // frame is copied only when a corruption fault actually fired.
    const Image* frame = &image;
    Image corrupted;
    if (!fault.dropFrame &&
        (fault.blackout || fault.noiseSigma > 0)) {
        corrupted = image;
        if (fault.blackout) {
            sensors::blackout(corrupted);
        } else {
            Rng noiseRng(fault.noiseSeed);
            sensors::addPixelNoise(corrupted, noiseRng,
                                   fault.noiseSigma);
        }
        frame = &corrupted;
    }

    // --- (1a) Object detection. ---
    detect::DetectorTimings detTimings;
    const int maxStale = params_.governor.maxStaleFrames;
    const bool wantDet = plan.runDet && !fault.dropFrame;
    if (wantDet && !fault.detFail) {
        obs::TraceSpan span(tracerRef, "DET");
        detect::YoloDetector& det =
            plan.degradedDet && degradedDetector_ ? *degradedDetector_
                                                  : detector_;
        out.detections = det.detect(*frame, &detTimings);
        out.detRan = true;
        lastDetections_ = out.detections;
        detStaleFrames_ = 0;
    } else if (wantDet) {
        // Transient DET failure: reuse the last good detections while
        // they are fresh enough (timeout-with-fallback).
        ++detStaleFrames_;
        if (detStaleFrames_ <= maxStale) {
            out.detections = lastDetections_;
            out.detFellBack = true;
        }
    }
    out.latencies.detMs =
        detTimings.totalMs + spikeOn(fault, obs::Stage::Det);
    cycles_.detDnnMs += detTimings.dnnMs;
    cycles_.detOtherMs += detTimings.decodeMs;

    // --- (1b) Localization (logically parallel with DET). ---
    if (!fault.dropFrame && !fault.locFail) {
        obs::TraceSpan span(tracerRef, "LOC");
        out.localization = localizer_.localize(*frame, dt);
        if (out.localization.ok) {
            if (dt > 0)
                lastLocVelocity_ =
                    (out.localization.pose.pos - lastLocPose_.pos) *
                    (1.0 / dt);
            lastLocPose_ = out.localization.pose;
            locStaleFrames_ = 0;
        }
    } else {
        // LOC never ran: dead-reckon from the last good pose under
        // the bounded-staleness contract; blowing the bound forces
        // SAFE_STOP (docs/OPERATING_MODES.md).
        lastLocPose_.pos += lastLocVelocity_ * dt;
        out.localization.pose = lastLocPose_;
        out.localization.ok = false;
        out.localization.lost = true;
        out.locFellBack = true;
        ++locStaleFrames_;
        if (governor_ && locStaleFrames_ > maxStale)
            governor_->forceSafeStop(frameId, "stale:LOC");
    }
    out.latencies.locMs = out.localization.timings.totalMs +
                          spikeOn(fault, obs::Stage::Loc);
    cycles_.locFeMs += out.localization.timings.feMs;
    cycles_.locOtherMs +=
        out.localization.timings.totalMs - out.localization.timings.feMs;

    // --- (1c) Object tracking. ---
    track::PoolTimings traTimings;
    {
        obs::TraceSpan span(tracerRef, "TRA");
        if (fault.dropFrame || fault.traFail) {
            trackerPool_.coastBlind(&traTimings);
            out.traCoasted = true;
        } else if (!plan.runDet) {
            // Deliberately skipped detection (interval stretching /
            // TRACKING_ONLY): GOTURN coasting without miss counting.
            trackerPool_.coast(*frame, &traTimings);
            out.traCoasted = true;
        } else {
            trackerPool_.update(*frame, out.detections, &traTimings);
        }
    }
    out.tracks = trackerPool_.tracks();
    out.latencies.traMs =
        traTimings.totalMs + spikeOn(fault, obs::Stage::Tra);
    cycles_.traDnnMs += traTimings.tracker.dnnMs;
    cycles_.traOtherMs += traTimings.totalMs - traTimings.tracker.dnnMs;

    // --- (2) Fusion onto the world coordinate space. ---
    {
        obs::TraceSpan span(tracerRef, "FUSION");
        out.scene = fusion_.fuse(out.tracks, out.localization.pose, dt,
                                 time_);
    }
    out.latencies.fusionMs =
        fusion_.lastFuseMs() + spikeOn(fault, obs::Stage::Fusion);

    // --- (4) Mission planning: only on deviation. ---
    if (mission_)
        out.missionReplanned =
            mission_->checkDeviation(out.localization.pose.pos);

    // --- (3) Motion planning on the fused scene. ---
    {
        obs::TraceSpan span(tracerRef, "MOTPLAN");
        Stopwatch watch;
        std::vector<planning::PredictedObstacle> obstacles;
        obstacles.reserve(out.scene.objects.size());
        for (const auto& obj : out.scene.objects)
            obstacles.push_back(
                {obj.worldPos, obj.worldVelocity, 1.6});
        out.trajectory = planning::planConformal(
            out.localization.pose, params_.laneCenterY, obstacles,
            params_.motionPlanner);
        out.latencies.motPlanMs = watch.elapsedMs();
    }
    out.latencies.motPlanMs += spikeOn(fault, obs::Stage::MotPlan);

    // --- (5) Vehicle control. ---
    planning::VehicleState state;
    state.pose = out.localization.pose;
    state.speed = egoSpeed;
    out.command = controller_.control(state, out.trajectory, dt);
    if (plan.safeStop) {
        // SAFE_STOP actuation: hold the wheel straight and brake at
        // the controller's limit until the governor recovers.
        out.command.steering = 0.0;
        out.command.acceleration = -params_.control.maxBrake;
    }

    detRec_.record(out.latencies.detMs);
    traRec_.record(out.latencies.traMs);
    locRec_.record(out.latencies.locMs);
    fusionRec_.record(out.latencies.fusionMs);
    motRec_.record(out.latencies.motPlanMs);
    e2eRec_.record(out.latencies.endToEndMs());

    // Deadline watchdog: every frame, whatever the obs switches say
    // (observe() is a few comparisons and mutates nothing the engines
    // read). Injected virtual spikes are included in the sample, so
    // the watchdog and governor see faults exactly as they would see
    // real stalls.
    const obs::FrameLatencySample sample{
        out.latencies.detMs, out.latencies.traMs, out.latencies.locMs,
        out.latencies.fusionMs, out.latencies.motPlanMs};
    deadline_.observe(frameId, sample);
    if (governor_)
        governor_->observe(frameId, sample);

    // Flight recorder: the frame's history on the pipeline's virtual
    // timeline (ms of simulated time), so a deterministic run yields
    // a deterministic post-mortem. Purely observational -- nothing
    // the engines read is touched.
    auto& fl = obs::flight();
    if (fl.enabled()) {
        const double t0 = time_ * 1000.0;
        const double e2e = out.latencies.endToEndMs();
        const double perception = std::max(
            out.latencies.locMs,
            out.latencies.detMs + out.latencies.traMs);
        // DET->TRA chain on track 1, LOC on track 2: the parallel
        // perception branches partially overlap on the shared
        // timeline, so each branch nests on its own track.
        const struct
        {
            const char* name;
            double start;
            double dur;
            int track;
        } spans[] = {
            {"FRAME", t0, e2e, 0},
            {"DET", t0, out.latencies.detMs, 1},
            {"TRA", t0 + out.latencies.detMs, out.latencies.traMs, 1},
            {"LOC", t0, out.latencies.locMs, 2},
            {"FUSION", t0 + perception, out.latencies.fusionMs, 0},
            {"MOTPLAN", t0 + perception + out.latencies.fusionMs,
             out.latencies.motPlanMs, 0},
        };
        const bool perfOn = tracerRef.perfSpansEnabled();
        for (const auto& sp : spans) {
            fl.recordSpan(0, sp.name, frameId, sp.start, sp.dur,
                          sp.track);
            // Re-emit the wall-clock perf delta sampled over this
            // stage's trace span at the stage's virtual position.
            if (perfOn)
                if (const obs::PerfDelta* d =
                        obs::latestPerfDelta(sp.name))
                    fl.recordPerf(0, sp.name, frameId, sp.start,
                                  sp.dur, *d);
        }
        fl.recordMetric(0, "e2e_ms", frameId, t0, e2e);
        if (fault.dropFrame)
            fl.noteFault(0, "drop_frame", frameId, t0);
        if (fault.detFail)
            fl.noteFault(0, "det_fail", frameId, t0);
        if (fault.locFail)
            fl.noteFault(0, "loc_fail", frameId, t0);
        if (fault.traFail)
            fl.noteFault(0, "tra_fail", frameId, t0);
        if (fault.blackout)
            fl.noteFault(0, "blackout", frameId, t0);
        if (fault.noiseSigma > 0)
            fl.noteFault(0, "pixel_noise", frameId, t0);
        if (governor_) {
            const auto& tx = governor_->transitions();
            for (; govTransitionsSeen_ < tx.size();
                 ++govTransitionsSeen_) {
                const auto& t = tx[govTransitionsSeen_];
                fl.recordTransition(0, t.reason.c_str(), t.frame, t0,
                                    static_cast<int>(t.from),
                                    static_cast<int>(t.to),
                                    modeName(t.from), modeName(t.to));
                if (t.to == OperatingMode::SafeStop)
                    fl.noteSafeStop(0, t.frame, t0);
            }
        }
        if (e2e > params_.deadline.budgetMs)
            fl.noteDeadlineMiss(0, frameId, t0 + e2e, e2e,
                                e2e - params_.deadline.budgetMs);
    }

    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("pipeline.frames").add();
        reg.histogram("pipeline.det_ms").record(out.latencies.detMs);
        reg.histogram("pipeline.tra_ms").record(out.latencies.traMs);
        reg.histogram("pipeline.loc_ms").record(out.latencies.locMs);
        reg.histogram("pipeline.fusion_ms")
            .record(out.latencies.fusionMs);
        reg.histogram("pipeline.motplan_ms")
            .record(out.latencies.motPlanMs);
        reg.histogram("pipeline.e2e_ms")
            .record(out.latencies.endToEndMs());
        reg.counter("pipeline.mission_replans")
            .add(out.missionReplanned ? 1 : 0);
        reg.counter("pipeline.frames_dropped")
            .add(out.frameDropped ? 1 : 0);
        reg.counter("pipeline.det_skipped")
            .add(!plan.runDet ? 1 : 0);
        reg.counter("pipeline.det_fallback")
            .add(out.detFellBack ? 1 : 0);
        reg.counter("pipeline.loc_fallback")
            .add(out.locFellBack ? 1 : 0);
        reg.counter("pipeline.tra_coasted")
            .add(out.traCoasted ? 1 : 0);
    }
    return out;
}

} // namespace ad::pipeline
