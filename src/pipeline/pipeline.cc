#include "pipeline/pipeline.hh"

#include "common/time.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sensors/corruption.hh"

namespace ad::pipeline {

namespace {

/**
 * Fan the pipeline-wide nn.threads / nn.precision / nn.fuse /
 * nn.arena overrides out to the engines.
 */
PipelineParams
applyNnOverrides(PipelineParams p)
{
    if (p.nnThreads != 0) {
        p.detector.threads = p.nnThreads;
        p.trackerPool.tracker.threads = p.nnThreads;
        p.localizer.threads = p.nnThreads;
    }
    if (p.nnPrecision != nn::Precision::Fp32) {
        p.detector.precision = p.nnPrecision;
        p.trackerPool.tracker.precision = p.nnPrecision;
    }
    p.detector.fuse = p.nnFuse;
    p.trackerPool.tracker.fuse = p.nnFuse;
    p.detector.arena = p.nnArena;
    p.trackerPool.tracker.arena = p.nnArena;
    return p;
}

/** Virtual spike milliseconds injected on one stage this frame. */
double
spikeOn(const FaultPlan& fault, obs::Stage stage)
{
    return fault.spikeMs[static_cast<std::size_t>(stage)];
}

} // namespace

Pipeline::Pipeline(const slam::PriorMap* map,
                   const sensors::Camera* camera,
                   const planning::RoadGraph* roadGraph,
                   const PipelineParams& params)
    : params_(applyNnOverrides(params)), camera_(camera),
      detector_(params_.detector), trackerPool_(params_.trackerPool),
      localizer_(map, camera, params_.localizer), fusion_(camera),
      controller_(params_.control), deadline_(params_.deadline)
{
    if (roadGraph)
        mission_.emplace(roadGraph, params_.mission);
    if (params_.faults.enabled)
        faults_.emplace(params_.faults);
    if (params_.governor.enabled) {
        governor_.emplace(params_.governor);
        // Warm standby detector at degraded scale: built now so
        // DEGRADED-mode frames never pay construction cost (the
        // tracker-pool warm-start rule, Section 3.1.2).
        degradedDetector_.emplace(params_.detector.scaledInput(
            params_.governor.degradedDetScale));
    }
    if (params_.async)
        setupExecutor();
}

void
Pipeline::reset(const Pose2& pose, const Vec2& velocity,
                const Vec2& destination)
{
    if (exec_) {
        exec_->drain();
        exec_.reset();
        std::lock_guard<std::mutex> lock(readyMutex_);
        ready_.clear();
    }
    pendingOdom_.clear();
    localizer_.reset(pose, velocity);
    if (mission_)
        mission_->plan(pose.pos, destination);
    controller_.reset();
    time_ = 0;
    lastLocPose_ = pose;
    lastLocVelocity_ = velocity;
    lastDetections_.clear();
    detStaleFrames_ = 0;
    locStaleFrames_ = 0;
    if (params_.async)
        setupExecutor();
}

void
Pipeline::feedOdometry(const sensors::OdometryReading& odometry)
{
    if (exec_) {
        // Applied by the next submitted frame's LOC stage, in frame
        // order, so async runs see the readings exactly where a
        // serial run would.
        pendingOdom_.push_back(odometry);
        return;
    }
    localizer_.feedOdometry(odometry);
}

FrameGraph
Pipeline::buildGraph()
{
    // The Figure 1 dataflow: DET and LOC consume the (possibly
    // corrupted) frame in parallel, TRA consumes DET, FUSION joins
    // TRA with LOC, and planning consumes the fused scene plus the
    // pose. Each stage fn returns its virtual cost so the executor's
    // timeline composes exactly like endToEndMs().
    auto job = [this](std::int64_t f) -> FrameJob& {
        return jobs_[static_cast<std::size_t>(f % depth_)];
    };
    FrameGraph g;
    senseStage_ = g.addStage("SENSE", {}, [this, job](std::int64_t f) {
        stageSense(job(f));
        return 0.0;
    });
    detStage_ =
        g.addStage("DET", {"SENSE"}, [this, job](std::int64_t f) {
            FrameJob& j = job(f);
            stageDet(j);
            return j.out.latencies.detMs;
        });
    locStage_ =
        g.addStage("LOC", {"SENSE"}, [this, job](std::int64_t f) {
            FrameJob& j = job(f);
            stageLoc(j);
            return j.out.latencies.locMs;
        });
    traStage_ = g.addStage("TRA", {"SENSE", "DET"},
                           [this, job](std::int64_t f) {
                               FrameJob& j = job(f);
                               stageTra(j);
                               return j.out.latencies.traMs;
                           });
    fusionStage_ = g.addStage("FUSION", {"TRA", "LOC"},
                              [this, job](std::int64_t f) {
                                  FrameJob& j = job(f);
                                  stageFusion(j);
                                  return j.out.latencies.fusionMs;
                              });
    planStage_ = g.addStage("MOTPLAN", {"FUSION", "LOC"},
                            [this, job](std::int64_t f) {
                                FrameJob& j = job(f);
                                stagePlan(j);
                                return j.out.latencies.motPlanMs;
                            });
    return g;
}

void
Pipeline::setupExecutor()
{
    depth_ = std::max(1, params_.asyncDepth);
    jobs_ = std::vector<FrameJob>(static_cast<std::size_t>(depth_));
    planQueue_.clear();
    // Pre-stage the first `depth` plans from the governor's current
    // (fully observed, nothing in flight) state; commits keep the
    // queue topped up from then on.
    if (governor_)
        for (int i = 0; i < depth_; ++i)
            planQueue_.push_back(governor_->plan(frameIndex_ + i));

    FrameGraphExecutor::Params ep;
    ep.depth = depth_;
    ep.scheduleSeed = params_.scheduleSeed;
    exec_ = std::make_unique<FrameGraphExecutor>(
        buildGraph(), ep,
        // Admission (submit order, under the executor lock): draw the
        // frame's fault plan and pop its staged governor plan -- the
        // seeded draws happen in frame order whatever the workers do.
        [this](std::int64_t execFrame) {
            FrameJob& job =
                jobs_[static_cast<std::size_t>(execFrame % depth_)];
            job = FrameJob{};
            job.id = frameIndex_++;
            job.dt = pendingDt_;
            job.egoSpeed = pendingSpeed_;
            job.timeS = time_;
            job.image = *pendingImage_;
            job.frame = &job.image;
            job.odom = std::move(pendingOdom_);
            pendingOdom_.clear();
            job.fault = faults_ ? faults_->planFrame() : FaultPlan{};
            if (governor_) {
                job.plan = planQueue_.front();
                planQueue_.pop_front();
            }
            job.out.frameId = job.id;
            job.out.mode = job.plan.mode;
            job.out.frameDropped = job.fault.dropFrame;
            if (obs::tracer().enabled())
                job.traceStartUs = obs::tracer().nowUs();
        },
        // Commit (frame order, under the executor lock): the shared
        // epilogue plus staging the plan for frame id + depth.
        [this](std::int64_t execFrame,
               const FrameGraphExecutor::FrameTiming& timing) {
            FrameJob& job =
                jobs_[static_cast<std::size_t>(execFrame % depth_)];
            commitJob(job, &timing);
            std::lock_guard<std::mutex> lock(readyMutex_);
            ready_.push_back(std::move(job.out));
        });
}

FrameOutput
Pipeline::processFrame(const Image& image, double dt, double egoSpeed)
{
    FrameJob job;
    time_ += dt;
    job.id = frameIndex_++;
    job.dt = dt;
    job.egoSpeed = egoSpeed;
    job.timeS = time_;
    job.frame = &image;
    job.out.frameId = job.id;
    auto& tracerRef = obs::tracer();
    if (tracerRef.enabled())
        tracerRef.setFrame(job.id);
    obs::TraceSpan frameSpan(tracerRef, "FRAME", "frame", job.id);

    // Fault plan for this frame (a fixed number of seeded draws) and
    // the governor's actuation plan. With both subsystems disabled
    // this degenerates to "run everything", the pre-governor flow.
    job.fault = faults_ ? faults_->planFrame() : FaultPlan{};
    job.plan = governor_ ? governor_->plan(job.id) : FramePlan{};
    job.out.mode = job.plan.mode;
    job.out.frameDropped = job.fault.dropFrame;

    stageSense(job);
    stageDet(job);
    stageLoc(job);
    stageTra(job);
    stageFusion(job);
    stagePlan(job);
    commitJob(job, nullptr);
    return std::move(job.out);
}

std::vector<FrameOutput>
Pipeline::submitFrame(const Image& image, double dt, double egoSpeed)
{
    std::vector<FrameOutput> outs;
    if (!exec_) {
        outs.push_back(processFrame(image, dt, egoSpeed));
        return outs;
    }
    time_ += dt;
    pendingImage_ = &image;
    pendingDt_ = dt;
    pendingSpeed_ = egoSpeed;
    exec_->submit(time_ * 1000.0);
    std::lock_guard<std::mutex> lock(readyMutex_);
    while (!ready_.empty()) {
        outs.push_back(std::move(ready_.front()));
        ready_.pop_front();
    }
    return outs;
}

std::vector<FrameOutput>
Pipeline::drainAsync()
{
    std::vector<FrameOutput> outs;
    if (!exec_)
        return outs;
    exec_->drain();
    std::lock_guard<std::mutex> lock(readyMutex_);
    while (!ready_.empty()) {
        outs.push_back(std::move(ready_.front()));
        ready_.pop_front();
    }
    return outs;
}

void
Pipeline::stageSense(FrameJob& job)
{
    // Sensor corruption reaches the engines through the pixels; the
    // frame is copied only when a corruption fault actually fired.
    if (!job.fault.dropFrame &&
        (job.fault.blackout || job.fault.noiseSigma > 0)) {
        job.corrupted = *job.frame;
        if (job.fault.blackout) {
            sensors::blackout(job.corrupted);
        } else {
            Rng noiseRng(job.fault.noiseSeed);
            sensors::addPixelNoise(job.corrupted, noiseRng,
                                   job.fault.noiseSigma);
        }
        job.frame = &job.corrupted;
    }
}

void
Pipeline::stageDet(FrameJob& job)
{
    // --- (1a) Object detection. ---
    FrameOutput& out = job.out;
    const int maxStale = params_.governor.maxStaleFrames;
    const bool wantDet = job.plan.runDet && !job.fault.dropFrame;
    if (wantDet && !job.fault.detFail) {
        obs::TraceSpan span(obs::tracer(), "DET");
        detect::YoloDetector& det =
            job.plan.degradedDet && degradedDetector_
                ? *degradedDetector_
                : detector_;
        out.detections = det.detect(*job.frame, &job.detTimings);
        out.detRan = true;
        lastDetections_ = out.detections;
        detStaleFrames_ = 0;
    } else if (wantDet) {
        // Transient DET failure: reuse the last good detections while
        // they are fresh enough (timeout-with-fallback).
        ++detStaleFrames_;
        if (detStaleFrames_ <= maxStale) {
            out.detections = lastDetections_;
            out.detFellBack = true;
        }
    }
    out.latencies.detMs =
        job.detTimings.totalMs + spikeOn(job.fault, obs::Stage::Det);
}

void
Pipeline::stageLoc(FrameJob& job)
{
    // --- (1b) Localization (logically parallel with DET). ---
    FrameOutput& out = job.out;
    for (const auto& odo : job.odom)
        localizer_.feedOdometry(odo);
    if (!job.fault.dropFrame && !job.fault.locFail) {
        obs::TraceSpan span(obs::tracer(), "LOC");
        out.localization = localizer_.localize(*job.frame, job.dt);
        if (out.localization.ok) {
            if (job.dt > 0)
                lastLocVelocity_ =
                    (out.localization.pose.pos - lastLocPose_.pos) *
                    (1.0 / job.dt);
            lastLocPose_ = out.localization.pose;
            locStaleFrames_ = 0;
        }
    } else {
        // LOC never ran: dead-reckon from the last good pose under
        // the bounded-staleness contract; blowing the bound forces
        // SAFE_STOP at commit (docs/OPERATING_MODES.md).
        lastLocPose_.pos += lastLocVelocity_ * job.dt;
        out.localization.pose = lastLocPose_;
        out.localization.ok = false;
        out.localization.lost = true;
        out.locFellBack = true;
        ++locStaleFrames_;
        if (governor_ &&
            locStaleFrames_ > params_.governor.maxStaleFrames)
            job.locStaleExceeded = true;
    }
    out.latencies.locMs = out.localization.timings.totalMs +
                          spikeOn(job.fault, obs::Stage::Loc);
}

void
Pipeline::stageTra(FrameJob& job)
{
    // --- (1c) Object tracking. ---
    FrameOutput& out = job.out;
    {
        obs::TraceSpan span(obs::tracer(), "TRA");
        if (job.fault.dropFrame || job.fault.traFail) {
            trackerPool_.coastBlind(&job.traTimings);
            out.traCoasted = true;
        } else if (!job.plan.runDet) {
            // Deliberately skipped detection (interval stretching /
            // TRACKING_ONLY): GOTURN coasting without miss counting.
            trackerPool_.coast(*job.frame, &job.traTimings);
            out.traCoasted = true;
        } else {
            trackerPool_.update(*job.frame, out.detections,
                                &job.traTimings);
        }
    }
    out.tracks = trackerPool_.tracks();
    out.latencies.traMs =
        job.traTimings.totalMs + spikeOn(job.fault, obs::Stage::Tra);
}

void
Pipeline::stageFusion(FrameJob& job)
{
    // --- (2) Fusion onto the world coordinate space. ---
    FrameOutput& out = job.out;
    {
        obs::TraceSpan span(obs::tracer(), "FUSION");
        out.scene = fusion_.fuse(out.tracks, out.localization.pose,
                                 job.dt, job.timeS);
    }
    out.latencies.fusionMs =
        fusion_.lastFuseMs() + spikeOn(job.fault, obs::Stage::Fusion);
}

void
Pipeline::stagePlan(FrameJob& job)
{
    FrameOutput& out = job.out;

    // --- (4) Mission planning: only on deviation. ---
    if (mission_)
        out.missionReplanned =
            mission_->checkDeviation(out.localization.pose.pos);

    // --- (3) Motion planning on the fused scene. ---
    {
        obs::TraceSpan span(obs::tracer(), "MOTPLAN");
        Stopwatch watch;
        std::vector<planning::PredictedObstacle> obstacles;
        obstacles.reserve(out.scene.objects.size());
        for (const auto& obj : out.scene.objects)
            obstacles.push_back(
                {obj.worldPos, obj.worldVelocity, 1.6});
        out.trajectory = planning::planConformal(
            out.localization.pose, params_.laneCenterY, obstacles,
            params_.motionPlanner);
        out.latencies.motPlanMs = watch.elapsedMs();
    }
    out.latencies.motPlanMs += spikeOn(job.fault, obs::Stage::MotPlan);

    // --- (5) Vehicle control. ---
    planning::VehicleState state;
    state.pose = out.localization.pose;
    state.speed = job.egoSpeed;
    out.command = controller_.control(state, out.trajectory, job.dt);
    if (job.plan.safeStop) {
        // SAFE_STOP actuation: hold the wheel straight and brake at
        // the controller's limit until the governor recovers.
        out.command.steering = 0.0;
        out.command.acceleration = -params_.control.maxBrake;
    }
}

void
Pipeline::commitJob(FrameJob& job,
                    const FrameGraphExecutor::FrameTiming* timing)
{
    FrameOutput& out = job.out;
    const std::int64_t frameId = job.id;

    // Async mode has no enclosing TraceSpan (stages record their own
    // spans from pool threads); emit the wall-clock
    // admission-to-commit FRAME span here instead.
    if (timing) {
        auto& tracerRef = obs::tracer();
        if (tracerRef.enabled())
            tracerRef.record("FRAME", "frame", job.traceStartUs,
                             tracerRef.nowUs() - job.traceStartUs,
                             frameId);
    }

    // Bounded-staleness escalation surfaced by the LOC stage; raised
    // here so the transition lands before this frame's observe(),
    // exactly where the serial flow raised it.
    if (governor_ && job.locStaleExceeded)
        governor_->forceSafeStop(frameId, "stale:LOC");

    cycles_.detDnnMs += job.detTimings.dnnMs;
    cycles_.detOtherMs += job.detTimings.decodeMs;
    cycles_.locFeMs += out.localization.timings.feMs;
    cycles_.locOtherMs += out.localization.timings.totalMs -
                          out.localization.timings.feMs;
    cycles_.traDnnMs += job.traTimings.tracker.dnnMs;
    cycles_.traOtherMs +=
        job.traTimings.totalMs - job.traTimings.tracker.dnnMs;

    detRec_.record(out.latencies.detMs);
    traRec_.record(out.latencies.traMs);
    locRec_.record(out.latencies.locMs);
    fusionRec_.record(out.latencies.fusionMs);
    motRec_.record(out.latencies.motPlanMs);
    e2eRec_.record(out.latencies.endToEndMs());
    out.pipelinedMs = timing ? timing->commitMs - timing->arrivalMs
                             : out.latencies.endToEndMs();
    pipelinedRec_.record(out.pipelinedMs);

    // Deadline watchdog: every frame, whatever the obs switches say
    // (observe() is a few comparisons and mutates nothing the engines
    // read). Injected virtual spikes are included in the sample, so
    // the watchdog and governor see faults exactly as they would see
    // real stalls. Both consume the *composition* latency -- the
    // per-frame cost independent of pipelining -- so their decisions
    // are identical across execution modes.
    const obs::FrameLatencySample sample{
        out.latencies.detMs, out.latencies.traMs, out.latencies.locMs,
        out.latencies.fusionMs, out.latencies.motPlanMs};
    deadline_.observe(frameId, sample);
    if (governor_)
        governor_->observe(frameId, sample);

    // Flight recorder: the frame's history on the pipeline's virtual
    // timeline (ms of simulated time), so a deterministic run yields
    // a deterministic post-mortem. Purely observational -- nothing
    // the engines read is touched. The async path emits the same six
    // spans per frame (event conservation), positioned at the
    // executor's virtual stage times instead of the serial layout.
    auto& fl = obs::flight();
    if (fl.enabled()) {
        auto& tracerRef = obs::tracer();
        const double t0 = job.timeS * 1000.0;
        const double e2e = out.latencies.endToEndMs();
        const double perception = std::max(
            out.latencies.locMs,
            out.latencies.detMs + out.latencies.traMs);
        // DET->TRA chain on track 1, LOC on track 2: the parallel
        // perception branches partially overlap on the shared
        // timeline, so each branch nests on its own track.
        struct SpanRow
        {
            const char* name;
            double start;
            double dur;
            int track;
        };
        SpanRow spans[] = {
            {"FRAME", t0, e2e, 0},
            {"DET", t0, out.latencies.detMs, 1},
            {"TRA", t0 + out.latencies.detMs, out.latencies.traMs, 1},
            {"LOC", t0, out.latencies.locMs, 2},
            {"FUSION", t0 + perception, out.latencies.fusionMs, 0},
            {"MOTPLAN", t0 + perception + out.latencies.fusionMs,
             out.latencies.motPlanMs, 0},
        };
        if (timing) {
            // Executor placement: admission shift plus cross-frame
            // stage contention, the actual pipelined schedule.
            auto at = [&](int stage) {
                return timing->stages[static_cast<std::size_t>(stage)];
            };
            spans[0].start = timing->admitMs;
            spans[0].dur = timing->commitMs - timing->admitMs;
            spans[1].start = at(detStage_).startMs;
            spans[1].dur = at(detStage_).durMs;
            spans[2].start = at(traStage_).startMs;
            spans[2].dur = at(traStage_).durMs;
            spans[3].start = at(locStage_).startMs;
            spans[3].dur = at(locStage_).durMs;
            spans[4].start = at(fusionStage_).startMs;
            spans[4].dur = at(fusionStage_).durMs;
            spans[5].start = at(planStage_).startMs;
            spans[5].dur = at(planStage_).durMs;
        }
        const bool perfOn = tracerRef.perfSpansEnabled();
        for (const auto& sp : spans) {
            fl.recordSpan(0, sp.name, frameId, sp.start, sp.dur,
                          sp.track);
            // Re-emit the wall-clock perf delta sampled over this
            // stage's trace span at the stage's virtual position.
            if (perfOn)
                if (const obs::PerfDelta* d =
                        obs::latestPerfDelta(sp.name))
                    fl.recordPerf(0, sp.name, frameId, sp.start,
                                  sp.dur, *d);
        }
        fl.recordMetric(0, "e2e_ms", frameId, t0, e2e);
        if (job.fault.dropFrame)
            fl.noteFault(0, "drop_frame", frameId, t0);
        if (job.fault.detFail)
            fl.noteFault(0, "det_fail", frameId, t0);
        if (job.fault.locFail)
            fl.noteFault(0, "loc_fail", frameId, t0);
        if (job.fault.traFail)
            fl.noteFault(0, "tra_fail", frameId, t0);
        if (job.fault.blackout)
            fl.noteFault(0, "blackout", frameId, t0);
        if (job.fault.noiseSigma > 0)
            fl.noteFault(0, "pixel_noise", frameId, t0);
        if (governor_) {
            const auto& tx = governor_->transitions();
            for (; govTransitionsSeen_ < tx.size();
                 ++govTransitionsSeen_) {
                const auto& t = tx[govTransitionsSeen_];
                fl.recordTransition(0, t.reason.c_str(), t.frame, t0,
                                    static_cast<int>(t.from),
                                    static_cast<int>(t.to),
                                    modeName(t.from), modeName(t.to));
                if (t.to == OperatingMode::SafeStop)
                    fl.noteSafeStop(0, t.frame, t0);
            }
        }
        if (e2e > params_.deadline.budgetMs)
            fl.noteDeadlineMiss(0, frameId, t0 + e2e, e2e,
                                e2e - params_.deadline.budgetMs);
    }

    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("pipeline.frames").add();
        reg.histogram("pipeline.det_ms").record(out.latencies.detMs);
        reg.histogram("pipeline.tra_ms").record(out.latencies.traMs);
        reg.histogram("pipeline.loc_ms").record(out.latencies.locMs);
        reg.histogram("pipeline.fusion_ms")
            .record(out.latencies.fusionMs);
        reg.histogram("pipeline.motplan_ms")
            .record(out.latencies.motPlanMs);
        reg.histogram("pipeline.e2e_ms")
            .record(out.latencies.endToEndMs());
        reg.histogram("pipeline.pipelined_ms").record(out.pipelinedMs);
        reg.counter("pipeline.mission_replans")
            .add(out.missionReplanned ? 1 : 0);
        reg.counter("pipeline.frames_dropped")
            .add(out.frameDropped ? 1 : 0);
        reg.counter("pipeline.det_skipped")
            .add(!job.plan.runDet ? 1 : 0);
        reg.counter("pipeline.det_fallback")
            .add(out.detFellBack ? 1 : 0);
        reg.counter("pipeline.loc_fallback")
            .add(out.locFellBack ? 1 : 0);
        reg.counter("pipeline.tra_coasted")
            .add(out.traCoasted ? 1 : 0);
    }

    // Stage the governor plan for the frame `depth` ahead, computed
    // with exactly the feedback available now (frames <= this one).
    if (timing && governor_)
        planQueue_.push_back(governor_->plan(frameId + depth_));
}

} // namespace ad::pipeline
