#include "pipeline/pipeline.hh"

#include "common/time.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::pipeline {

namespace {

/** Fan the pipeline-wide nn.threads override out to the engines. */
PipelineParams
applyNnThreads(PipelineParams p)
{
    if (p.nnThreads != 0) {
        p.detector.threads = p.nnThreads;
        p.trackerPool.tracker.threads = p.nnThreads;
        p.localizer.threads = p.nnThreads;
    }
    return p;
}

} // namespace

Pipeline::Pipeline(const slam::PriorMap* map,
                   const sensors::Camera* camera,
                   const planning::RoadGraph* roadGraph,
                   const PipelineParams& params)
    : params_(applyNnThreads(params)), camera_(camera),
      detector_(params_.detector), trackerPool_(params_.trackerPool),
      localizer_(map, camera, params_.localizer), fusion_(camera),
      controller_(params_.control), deadline_(params_.deadline)
{
    if (roadGraph)
        mission_.emplace(roadGraph, params_.mission);
}

void
Pipeline::reset(const Pose2& pose, const Vec2& velocity,
                const Vec2& destination)
{
    localizer_.reset(pose, velocity);
    if (mission_)
        mission_->plan(pose.pos, destination);
    controller_.reset();
    time_ = 0;
}

FrameOutput
Pipeline::processFrame(const Image& image, double dt, double egoSpeed)
{
    FrameOutput out;
    time_ += dt;
    const std::int64_t frameId = frameIndex_++;
    auto& tracerRef = obs::tracer();
    if (tracerRef.enabled())
        tracerRef.setFrame(frameId);
    obs::TraceSpan frameSpan(tracerRef, "FRAME", "frame", frameId);

    // --- (1a) Object detection. ---
    detect::DetectorTimings detTimings;
    {
        obs::TraceSpan span(tracerRef, "DET");
        out.detections = detector_.detect(image, &detTimings);
    }
    out.latencies.detMs = detTimings.totalMs;
    cycles_.detDnnMs += detTimings.dnnMs;
    cycles_.detOtherMs += detTimings.decodeMs;

    // --- (1b) Localization (logically parallel with DET). ---
    {
        obs::TraceSpan span(tracerRef, "LOC");
        out.localization = localizer_.localize(image, dt);
    }
    out.latencies.locMs = out.localization.timings.totalMs;
    cycles_.locFeMs += out.localization.timings.feMs;
    cycles_.locOtherMs +=
        out.localization.timings.totalMs - out.localization.timings.feMs;

    // --- (1c) Object tracking. ---
    track::PoolTimings traTimings;
    {
        obs::TraceSpan span(tracerRef, "TRA");
        trackerPool_.update(image, out.detections, &traTimings);
    }
    out.tracks = trackerPool_.tracks();
    out.latencies.traMs = traTimings.totalMs;
    cycles_.traDnnMs += traTimings.tracker.dnnMs;
    cycles_.traOtherMs += traTimings.totalMs - traTimings.tracker.dnnMs;

    // --- (2) Fusion onto the world coordinate space. ---
    {
        obs::TraceSpan span(tracerRef, "FUSION");
        out.scene = fusion_.fuse(out.tracks, out.localization.pose, dt,
                                 time_);
    }
    out.latencies.fusionMs = fusion_.lastFuseMs();

    // --- (4) Mission planning: only on deviation. ---
    if (mission_)
        out.missionReplanned =
            mission_->checkDeviation(out.localization.pose.pos);

    // --- (3) Motion planning on the fused scene. ---
    {
        obs::TraceSpan span(tracerRef, "MOTPLAN");
        Stopwatch watch;
        std::vector<planning::PredictedObstacle> obstacles;
        obstacles.reserve(out.scene.objects.size());
        for (const auto& obj : out.scene.objects)
            obstacles.push_back(
                {obj.worldPos, obj.worldVelocity, 1.6});
        out.trajectory = planning::planConformal(
            out.localization.pose, params_.laneCenterY, obstacles,
            params_.motionPlanner);
        out.latencies.motPlanMs = watch.elapsedMs();
    }

    // --- (5) Vehicle control. ---
    planning::VehicleState state;
    state.pose = out.localization.pose;
    state.speed = egoSpeed;
    out.command = controller_.control(state, out.trajectory, dt);

    detRec_.record(out.latencies.detMs);
    traRec_.record(out.latencies.traMs);
    locRec_.record(out.latencies.locMs);
    fusionRec_.record(out.latencies.fusionMs);
    motRec_.record(out.latencies.motPlanMs);
    e2eRec_.record(out.latencies.endToEndMs());

    // Deadline watchdog: every frame, whatever the obs switches say
    // (observe() is a few comparisons and mutates nothing the engines
    // read).
    deadline_.observe(frameId, {out.latencies.detMs,
                                out.latencies.traMs,
                                out.latencies.locMs,
                                out.latencies.fusionMs,
                                out.latencies.motPlanMs});

    if (obs::metricsEnabled()) {
        auto& reg = obs::metrics();
        reg.counter("pipeline.frames").add();
        reg.histogram("pipeline.det_ms").record(out.latencies.detMs);
        reg.histogram("pipeline.tra_ms").record(out.latencies.traMs);
        reg.histogram("pipeline.loc_ms").record(out.latencies.locMs);
        reg.histogram("pipeline.fusion_ms")
            .record(out.latencies.fusionMs);
        reg.histogram("pipeline.motplan_ms")
            .record(out.latencies.motPlanMs);
        reg.histogram("pipeline.e2e_ms")
            .record(out.latencies.endToEndMs());
        reg.counter("pipeline.mission_replans")
            .add(out.missionReplanned ? 1 : 0);
    }
    return out;
}

} // namespace ad::pipeline
