#include "pipeline/fault_injector.hh"

#include <algorithm>
#include <sstream>

#include "common/config.hh"

namespace ad::pipeline {

FaultInjectorParams
FaultInjectorParams::scaledMix(double intensity, std::uint64_t seed)
{
    intensity = std::clamp(intensity, 0.0, 1.0);
    FaultInjectorParams p;
    p.enabled = intensity > 0;
    p.seed = seed;
    p.dropProb = 0.05 * intensity;
    p.noiseProb = 0.20 * intensity;
    p.noiseSigma = 25.0;
    p.blackoutProb = 0.02 * intensity;
    p.spikeProb = 0.50 * intensity;
    p.spikeMs = 80.0;
    p.detFailProb = 0.05 * intensity;
    p.locFailProb = 0.05 * intensity;
    p.traFailProb = 0.02 * intensity;
    return p;
}

FaultInjectorParams
FaultInjectorParams::fromConfig(const Config& cfg)
{
    // Start from the intensity mix so `--faults=I` and individual
    // `fault.*` keys compose: explicit keys override the mix.
    FaultInjectorParams p =
        scaledMix(cfg.getDouble("faults", 0.0),
                  static_cast<std::uint64_t>(cfg.getInt("fault.seed", 42)));
    p.dropProb = cfg.getDouble("fault.drop_p", p.dropProb);
    p.noiseProb = cfg.getDouble("fault.noise_p", p.noiseProb);
    p.noiseSigma = cfg.getDouble("fault.noise_sigma", p.noiseSigma);
    p.blackoutProb = cfg.getDouble("fault.blackout_p", p.blackoutProb);
    p.spikeProb = cfg.getDouble("fault.spike_p", p.spikeProb);
    p.spikeMs = cfg.getDouble("fault.spike_ms", p.spikeMs);
    p.detFailProb = cfg.getDouble("fault.det_fail_p", p.detFailProb);
    p.locFailProb = cfg.getDouble("fault.loc_fail_p", p.locFailProb);
    p.traFailProb = cfg.getDouble("fault.tra_fail_p", p.traFailProb);
    p.enabled = p.dropProb > 0 || p.noiseProb > 0 || p.blackoutProb > 0 ||
                p.spikeProb > 0 || p.detFailProb > 0 ||
                p.locFailProb > 0 || p.traFailProb > 0;
    return p;
}

std::vector<std::string>
FaultInjectorParams::knownConfigKeys()
{
    return {"faults",
            "fault.seed",
            "fault.drop_p",
            "fault.noise_p",
            "fault.noise_sigma",
            "fault.blackout_p",
            "fault.spike_p",
            "fault.spike_ms",
            "fault.det_fail_p",
            "fault.loc_fail_p",
            "fault.tra_fail_p"};
}

bool
FaultPlan::any() const
{
    return dropFrame || blackout || noiseSigma > 0 || detFail ||
           locFail || traFail || totalSpikeMs() > 0;
}

double
FaultPlan::totalSpikeMs() const
{
    double total = 0;
    for (const double ms : spikeMs)
        total += ms;
    return total;
}

FaultInjector::FaultInjector(const FaultInjectorParams& params)
    : params_(params), rng_(params.seed)
{
}

FaultPlan
FaultInjector::planFrame()
{
    // Fixed draw count per frame: every Bernoulli and magnitude is
    // drawn whether or not the fault fires, so the schedule for frame
    // k is a pure function of (seed, k).
    FaultPlan plan;
    const bool drop = rng_.bernoulli(params_.dropProb);
    const bool noise = rng_.bernoulli(params_.noiseProb);
    const bool dark = rng_.bernoulli(params_.blackoutProb);
    const bool spike = rng_.bernoulli(params_.spikeProb);
    const int spikeStage =
        rng_.uniformInt(0, static_cast<int>(obs::kStageCount) - 1);
    // Spike magnitude: mean spikeMs, uniform in [0.5, 1.5] x mean so
    // bursts vary in severity without a heavy tail of their own.
    const double spikeMagnitude =
        params_.spikeMs * rng_.uniform(0.5, 1.5);
    const bool detFail = rng_.bernoulli(params_.detFailProb);
    const bool locFail = rng_.bernoulli(params_.locFailProb);
    const bool traFail = rng_.bernoulli(params_.traFailProb);
    const std::uint64_t noiseSeed = rng_();

    ++counts_.frames;
    if (!params_.enabled)
        return plan;

    plan.dropFrame = drop;
    // A dropped frame delivers no pixels, so corruption and per-stage
    // failures are moot; spikes still apply (the stall that dropped
    // the frame also delays the stages around it).
    if (!plan.dropFrame) {
        plan.blackout = dark;
        if (noise && !dark) {
            plan.noiseSigma = params_.noiseSigma;
            plan.noiseSeed = noiseSeed;
        }
        plan.detFail = detFail;
        plan.locFail = locFail;
        plan.traFail = traFail;
    }
    if (spike)
        plan.spikeMs[static_cast<std::size_t>(spikeStage)] =
            spikeMagnitude;

    counts_.drops += plan.dropFrame;
    counts_.noisy += plan.noiseSigma > 0;
    counts_.blackouts += plan.blackout;
    counts_.spikes += spike;
    counts_.detFails += plan.detFail;
    counts_.locFails += plan.locFail;
    counts_.traFails += plan.traFail;
    return plan;
}

std::string
FaultInjector::report() const
{
    std::ostringstream oss;
    oss << "fault injection (seed " << params_.seed << ", "
        << counts_.frames << " frames):\n"
        << "  drops     " << counts_.drops << '\n'
        << "  noise     " << counts_.noisy << '\n'
        << "  blackouts " << counts_.blackouts << '\n'
        << "  spikes    " << counts_.spikes << '\n'
        << "  DET fails " << counts_.detFails << '\n'
        << "  LOC fails " << counts_.locFails << '\n'
        << "  TRA fails " << counts_.traFails << '\n';
    return oss.str();
}

} // namespace ad::pipeline
