/**
 * @file
 * Graceful-degradation governor: the actuation half of the control
 * loop whose sensing half is the obs layer's DeadlineMonitor. The
 * paper's predictability constraint (Section 2.4.2) demands the
 * 99.99th-percentile frame latency stay under the 100 ms reaction
 * budget; when compounding stalls push frames over it, dropping work
 * beats dropping frames (Pylot's latency/accuracy knobs: smaller
 * detector input, tracking-only frames). The governor is an explicit
 * state machine over four operating modes,
 *
 *   NOMINAL -> DEGRADED -> TRACKING_ONLY -> SAFE_STOP,
 *
 * escalating one level after `escalateAfterMisses` consecutive budget
 * misses and de-escalating one level after a run of consecutive
 * on-budget frames (recovery hysteresis). Each failed recovery --
 * de-escalating and promptly missing again -- multiplies the required
 * clean run by `recoveryBackoff` (exponential backoff, capped), so
 * under sustained faults the governor stops oscillating instead of
 * re-buying the same deadline miss every probe.
 *
 * The mode-to-knob mapping (which detector scale, what detection
 * interval, when to brake) is specified field-by-field in
 * docs/OPERATING_MODES.md; the pipeline implements it against
 * FramePlan. The governor never reads the clock itself -- it consumes
 * the per-frame latency samples the pipeline already records -- so it
 * is equally at home driving the measured pipeline (Pipeline) and the
 * modeled fault sweep (bench_ext_fault_sweep).
 */

#ifndef AD_PIPELINE_GOVERNOR_HH
#define AD_PIPELINE_GOVERNOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/deadline.hh"

namespace ad {
class Config;
}

namespace ad::pipeline {

/** The four operating modes, ordered by escalation severity. */
enum class OperatingMode
{
    Nominal = 0,      ///< full detector, detection every frame.
    Degraded,         ///< downscaled detector, stretched interval.
    TrackingOnly,     ///< detector off; trackers and Kalman coast.
    SafeStop,         ///< perception minimal; controller brakes.
};

inline constexpr std::size_t kOperatingModeCount = 4;

/** Written-contract mode name ("NOMINAL", ..., "SAFE_STOP"). */
const char* modeName(OperatingMode mode);

/** Governor knobs (see docs/OPERATING_MODES.md for the contract). */
struct GovernorParams
{
    bool enabled = false;       ///< master switch.
    double budgetMs = 100.0;    ///< the paper's reaction budget.

    /** Consecutive budget misses before escalating one level. */
    int escalateAfterMisses = 2;

    /** Consecutive on-budget frames before de-escalating one level. */
    int recoverAfterFrames = 50;

    /**
     * After a failed recovery (de-escalate, then escalate again
     * before `backoffResetFactor x recoverAfterFrames` clean frames),
     * the required clean run multiplies by this factor, capped at
     * `maxRecoverAfterFrames`. A sustained clean run in NOMINAL
     * resets it to `recoverAfterFrames`.
     */
    double recoveryBackoff = 2.0;
    int maxRecoverAfterFrames = 51200;
    int backoffResetFactor = 4;

    /** DEGRADED: detector input scale and detection interval. */
    double degradedDetScale = 0.5;
    int degradedDetInterval = 2;

    /**
     * TRACKING_ONLY: detection interval (0 = detector fully off;
     * k > 0 = one downscaled detection every k frames to reseed the
     * track table).
     */
    int trackingOnlyDetInterval = 0;

    /**
     * Bounded staleness for per-stage fallback: how many consecutive
     * frames a stage may serve its last good result before the
     * governor forces SAFE_STOP.
     */
    int maxStaleFrames = 8;

    /**
     * Read the `--governor` switch and every `gov.*` config key;
     * `defaultBudgetMs` seeds the budget (tools pass the watchdog's,
     * so `--obs.budget_ms` governs both unless `gov.budget_ms` says
     * otherwise).
     */
    static GovernorParams fromConfig(const Config& cfg,
                                     double defaultBudgetMs = 100.0);

    /** Every config key fromConfig reads (for warnUnknownKeys). */
    static std::vector<std::string> knownConfigKeys();
};

/** The governor's actuation decisions for one frame. */
struct FramePlan
{
    OperatingMode mode = OperatingMode::Nominal;
    bool runDet = true;      ///< run the detection engine this frame.
    bool degradedDet = false; ///< use the downscaled standby detector.
    bool safeStop = false;   ///< controller must brake to a stop.
};

/** One recorded mode transition. */
struct ModeTransition
{
    std::int64_t frame = -1;
    OperatingMode from = OperatingMode::Nominal;
    OperatingMode to = OperatingMode::Nominal;
    std::string reason; ///< "miss", "recovered", "stale:LOC", ...
};

/**
 * The degradation state machine. Call plan() before processing a
 * frame (to learn what to run) and observe() after (to feed back the
 * frame's latency sample); both are a handful of comparisons. The
 * governor allocates only when a transition fires and never reads the
 * clock, so a governed run is deterministic given a deterministic
 * latency stream.
 */
class DegradationGovernor
{
  public:
    explicit DegradationGovernor(const GovernorParams& params = {});

    /** Actuation decisions for the given frame (no state change). */
    FramePlan plan(std::int64_t frame) const;

    /** Feed back one completed frame's latency sample. */
    void observe(std::int64_t frame,
                 const obs::FrameLatencySample& sample);

    /**
     * Force SAFE_STOP outside the latency feedback path -- e.g.\ a
     * stage exceeded the bounded-staleness contract. No-op when
     * already in SAFE_STOP.
     */
    void forceSafeStop(std::int64_t frame, const std::string& reason);

    /**
     * Externally requested escalation -- the serving layer's
     * admission controller sheds load by degrading the streams with
     * the most slack (src/serve/admission.hh). Transitions only
     * when `to` is a strict escalation of the current mode (a
     * request to de-escalate or stay is ignored: recovery always
     * rides the internal hysteresis). An escalation that lands
     * while a de-escalation probe is outstanding applies the same
     * recovery backoff as a latency miss would -- external pressure
     * that returns right after recovery is the same oscillation,
     * whoever reports it.
     */
    void requestEscalation(std::int64_t frame, OperatingMode to,
                           const std::string& reason);

    OperatingMode mode() const { return mode_; }

    /** Frames observed in each mode (index by OperatingMode). */
    const std::array<std::uint64_t, kOperatingModeCount>&
    framesInMode() const
    {
        return framesInMode_;
    }

    /** Every transition since construction, in order. */
    const std::vector<ModeTransition>& transitions() const
    {
        return transitions_;
    }

    /** The clean-frame run currently required to de-escalate. */
    int currentRecoverThreshold() const { return recoverThreshold_; }

    const GovernorParams& params() const { return params_; }

    /** Multi-line mode-residency and transition summary. */
    std::string report() const;

  private:
    void transitionTo(std::int64_t frame, OperatingMode to,
                      const std::string& reason);

    /** Grow the clean-run requirement after a failed recovery probe. */
    void applyProbeBackoff();

    GovernorParams params_;
    OperatingMode mode_ = OperatingMode::Nominal;
    int consecutiveMisses_ = 0;
    int cleanFrames_ = 0;
    int recoverThreshold_ = 0;
    /** True between a de-escalation and proof it held (backoff gate). */
    bool probing_ = false;
    std::array<std::uint64_t, kOperatingModeCount> framesInMode_{};
    std::vector<ModeTransition> transitions_;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_GOVERNOR_HH
