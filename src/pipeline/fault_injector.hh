/**
 * @file
 * Deterministic fault injection for the measured-mode pipeline. COLA
 * (Liu et al.) shows that tail violations in Level-4 stacks come from
 * rare *compounding* stalls, not from a single slow kernel; to prove a
 * degradation policy against that regime we need a fault model that
 * can reproduce exactly the same adverse schedule run after run. The
 * FaultInjector draws one FaultPlan per frame from a seeded xoshiro
 * stream (common/random.hh), consuming a fixed number of variates per
 * frame regardless of outcomes, so the fault schedule is a pure
 * function of (seed, frame index) -- independent of engine timing,
 * thread count or which faults actually fire.
 *
 * Fault classes (all probabilities are per frame, all independent):
 *  - frame drop: the camera delivers nothing; the pipeline coasts.
 *  - sensor corruption: additive pixel noise or blackout on the frame
 *    (sensors/corruption.hh) -- the engines see it through the pixels.
 *  - stage latency spikes: virtual milliseconds added to one stage's
 *    reported latency. Spikes are *virtual* -- they inflate the
 *    latency the watchdog and governor observe without burning real
 *    wall clock -- so faulted runs stay fast and bit-reproducible.
 *  - transient stage failures: DET/LOC/TRA produce no output for one
 *    frame; the pipeline falls back to its last good result subject to
 *    the governor's staleness bound.
 *
 * Configured via `fault.*` config keys (fromConfig) or the single
 * `--faults=<intensity>` knob in adrun which scales a representative
 * mix (scaledMix).
 */

#ifndef AD_PIPELINE_FAULT_INJECTOR_HH
#define AD_PIPELINE_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "obs/deadline.hh"

namespace ad {
class Config;
}

namespace ad::pipeline {

/** Fault-injection knobs; all probabilities are per frame. */
struct FaultInjectorParams
{
    bool enabled = false;        ///< master switch.
    std::uint64_t seed = 42;     ///< fault-stream seed.

    double dropProb = 0;         ///< frame never arrives.
    double noiseProb = 0;        ///< additive pixel noise.
    double noiseSigma = 25.0;    ///< noise stddev (intensity levels).
    double blackoutProb = 0;     ///< full-frame blackout.
    double spikeProb = 0;        ///< latency spike on one stage.
    double spikeMs = 80.0;       ///< mean spike magnitude (ms).
    double detFailProb = 0;      ///< DET returns nothing this frame.
    double locFailProb = 0;      ///< LOC returns nothing this frame.
    double traFailProb = 0;      ///< TRA cannot run this frame.

    /**
     * A representative fault mix scaled by one intensity knob in
     * [0, 1] (adrun's `--faults`): drops, corruption, spikes and
     * transient failures all grow linearly with intensity.
     */
    static FaultInjectorParams scaledMix(double intensity,
                                         std::uint64_t seed = 42);

    /** Read every `fault.*` config key (see docs/OPERATING_MODES.md). */
    static FaultInjectorParams fromConfig(const Config& cfg);

    /** Every config key fromConfig reads (for warnUnknownKeys). */
    static std::vector<std::string> knownConfigKeys();
};

/** The faults chosen for one frame. */
struct FaultPlan
{
    bool dropFrame = false;
    bool blackout = false;
    double noiseSigma = 0;   ///< 0 = no noise injected.
    /** Seed for the per-frame noise stream (always drawn, so the
     *  fault schedule never shifts with the noise probability). */
    std::uint64_t noiseSeed = 0;
    bool detFail = false;
    bool locFail = false;
    bool traFail = false;
    /** Virtual latency added to each stage's report (index by Stage). */
    std::array<double, obs::kStageCount> spikeMs{};

    /** Any fault at all this frame? */
    bool any() const;

    /** Total virtual spike milliseconds across all stages. */
    double totalSpikeMs() const;
};

/** Running counters of injected faults (for reports and metrics). */
struct FaultCounts
{
    std::uint64_t frames = 0;
    std::uint64_t drops = 0;
    std::uint64_t noisy = 0;
    std::uint64_t blackouts = 0;
    std::uint64_t spikes = 0;
    std::uint64_t detFails = 0;
    std::uint64_t locFails = 0;
    std::uint64_t traFails = 0;
};

/**
 * Per-frame fault scheduler. planFrame() must be called exactly once
 * per frame in frame order; the draw count per frame is fixed, so the
 * schedule for frame k depends only on (seed, k).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultInjectorParams& params = {});

    /** Draw the fault plan for the next frame. */
    FaultPlan planFrame();

    const FaultInjectorParams& params() const { return params_; }
    const FaultCounts& counts() const { return counts_; }

    /** Multi-line injected-fault summary table. */
    std::string report() const;

  private:
    FaultInjectorParams params_;
    Rng rng_;
    FaultCounts counts_;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_FAULT_INJECTOR_HH
