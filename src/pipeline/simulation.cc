#include "pipeline/simulation.hh"

#include <algorithm>
#include <cmath>

namespace ad::pipeline {

Simulation::Simulation(const sensors::Scenario& scenario,
                       const slam::PriorMap* map,
                       const sensors::Camera* camera,
                       const planning::RoadGraph* roadGraph,
                       const SimulationParams& params)
    : params_(params), world_(scenario.world), camera_(camera),
      pipeline_(map, camera, roadGraph, params.pipeline),
      odometry_(params.odometrySeed),
      laneCenterY_(params.pipeline.laneCenterY)
{
    ego_.pose = scenario.ego.pose;
    ego_.speed = scenario.ego.speed;
    pipeline_.reset(ego_.pose, {ego_.speed, 0},
                    {world_.road().length - 10.0, laneCenterY_});
}

FrameOutput
Simulation::step()
{
    const double dt = params_.dt;
    world_.step(dt);

    const sensors::Frame frame =
        camera_->render(world_, ego_.pose, params_.conditions);
    FrameOutput out = pipeline_.processFrame(frame.image, dt,
                                             ego_.speed);

    // Close the loop: the command drives the bicycle model; odometry
    // over the executed motion feeds the next frame's prediction.
    const Pose2 prevPose = ego_.pose;
    ego_ = planning::stepBicycleModel(ego_, out.command, dt);
    if (params_.useOdometry)
        pipeline_.feedOdometry(
            odometry_.measure(prevPose, ego_.pose, dt));

    // Metrics.
    ++metrics_.frames;
    metrics_.localizedFrames += out.localization.ok;
    metrics_.relocalizations += out.localization.relocalized;
    metrics_.missionReplans += out.missionReplanned;
    metrics_.distanceTraveled += (ego_.pose.pos - prevPose.pos).norm();
    metrics_.maxLaneError =
        std::max(metrics_.maxLaneError,
                 std::fabs(ego_.pose.pos.y - laneCenterY_));
    if (out.localization.ok)
        // Compare against the pose the frame was rendered from.
        metrics_.maxLocalizationError = std::max(
            metrics_.maxLocalizationError,
            out.localization.pose.distanceTo(prevPose));
    bool inCollision = false;
    for (const auto& actor : world_.actors()) {
        const double clearance =
            (actor.pose.pos - ego_.pose.pos).norm();
        metrics_.minActorClearance =
            std::min(metrics_.minActorClearance, clearance);
        inCollision |= clearance < params_.collisionRadius;
    }
    metrics_.collisionFrames += inCollision;
    speedSum_ += ego_.speed;
    metrics_.meanSpeed = speedSum_ / metrics_.frames;
    return out;
}

void
Simulation::run(int frames)
{
    for (int i = 0; i < frames; ++i)
        step();
}

} // namespace ad::pipeline
