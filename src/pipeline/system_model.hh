/**
 * @file
 * Modeled-mode system explorer: composes the accelerator platform
 * models, the vehicle power/range models and the end-to-end latency
 * structure into whole-system assessments -- the machinery behind the
 * paper's Figures 11 (end-to-end latency per platform assignment), 12
 * (power and driving range per configuration) and 13 (camera
 * resolution scalability).
 */

#ifndef AD_PIPELINE_SYSTEM_MODEL_HH
#define AD_PIPELINE_SYSTEM_MODEL_HH

#include <string>
#include <vector>

#include "accel/models.hh"
#include "vehicle/power.hh"
#include "vehicle/range.hh"

namespace ad::pipeline {

/** A platform assignment for the three bottleneck engines. */
struct SystemConfig
{
    accel::Platform det = accel::Platform::Gpu;
    accel::Platform tra = accel::Platform::Gpu;
    accel::Platform loc = accel::Platform::Gpu;
    int cameras = 8;              ///< Tesla-style camera count.
    double resolutionScale = 1.0; ///< pixels relative to KITTI.
    double storageTb = 41.0;      ///< on-vehicle prior-map size.
    /**
     * Kernel-layer threads on CPU-assigned engines (the `nn.threads`
     * knob in modeled mode). 1 keeps the paper's measured single-
     * socket anchors; more cores shrink CPU latencies by the
     * per-component Amdahl factor (accel::cpuParallelSpeedup).
     * Accelerated platforms are unaffected.
     */
    int cpuThreads = 1;

    /** e.g.\ "DET:GPU TRA:ASIC LOC:ASIC". */
    std::string name() const;
};

/** Full whole-system evaluation of one configuration. */
struct SystemAssessment
{
    SystemConfig config;
    LatencySummary endToEnd;      ///< sampled e2e latency (ms).
    double meanMs = 0;
    double tailMs = 0;            ///< 99.99th percentile.
    vehicle::PowerBreakdown power;
    double rangeReductionPct = 0;
    bool meetsLatencyConstraint = false;  ///< tail <= 100 ms.
    bool meetsLatencyOnMeanOnly = false;  ///< mean <= 100 but not tail
                                          ///  (the misleading-metric
                                          ///  cases of Section 5.2).
};

/** System-level evaluator. */
class SystemModel
{
  public:
    /** @param powerParams / evParams vehicle model knobs. */
    SystemModel(const vehicle::PowerParams& powerParams = {},
                const vehicle::EvParams& evParams = {});

    /**
     * Sample the end-to-end latency distribution of a configuration:
     * per frame, e2e = max(LOC, DET + TRA) + FUSION + MOTPLAN.
     */
    LatencySummary sampleEndToEnd(const SystemConfig& config,
                                  int samples, Rng& rng) const;

    /** Computing power across all camera replicas (W). */
    double computePowerW(const SystemConfig& config) const;

    /** Full assessment (latency + power + range + constraints). */
    SystemAssessment assess(const SystemConfig& config, int samples,
                            Rng& rng) const;

    /**
     * The paper's configuration sweep: all platform assignments of
     * (DET, TRA, LOC) over the four platforms.
     */
    static std::vector<SystemConfig> allConfigs(
        int cameras = 8, double resolutionScale = 1.0);

    const vehicle::EvRangeModel& rangeModel() const { return ev_; }
    const vehicle::VehiclePowerModel& powerModel() const
    {
        return power_;
    }

  private:
    vehicle::VehiclePowerModel power_;
    vehicle::EvRangeModel ev_;
};

} // namespace ad::pipeline

#endif // AD_PIPELINE_SYSTEM_MODEL_HH
