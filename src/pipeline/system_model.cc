#include "pipeline/system_model.hh"

#include <sstream>

namespace ad::pipeline {

using accel::Component;
using accel::Platform;
using accel::platformModel;

std::string
SystemConfig::name() const
{
    std::ostringstream oss;
    oss << "DET:" << accel::platformName(det)
        << " TRA:" << accel::platformName(tra)
        << " LOC:" << accel::platformName(loc);
    return oss.str();
}

SystemModel::SystemModel(const vehicle::PowerParams& powerParams,
                         const vehicle::EvParams& evParams)
    : power_(powerParams), ev_(evParams)
{
}

LatencySummary
SystemModel::sampleEndToEnd(const SystemConfig& config, int samples,
                            Rng& rng) const
{
    const accel::Workload w =
        accel::standardWorkloadRef().scaled(config.resolutionScale);
    // CPU-assigned engines shrink by the modeled multicore speedup of
    // the parallel kernel layer; accelerators are unaffected.
    const auto engineDist = [&](Platform p, Component c) {
        auto dist = platformModel(p).latency(c, w);
        if (p == Platform::Cpu && config.cpuThreads > 1)
            dist = dist.scaledBy(
                1.0 / accel::cpuParallelSpeedup(c, config.cpuThreads));
        return dist;
    };
    const auto detDist = engineDist(config.det, Component::Det);
    const auto traDist = engineDist(config.tra, Component::Tra);
    const auto locDist = engineDist(config.loc, Component::Loc);
    const auto fusionDist =
        platformModel(Platform::Cpu).latency(Component::Fusion, w);
    const auto motDist =
        platformModel(Platform::Cpu).latency(Component::MotPlan, w);

    LatencyRecorder rec(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
        // One congestion variate per physical platform per frame:
        // components sharing a platform see correlated slowdowns.
        double z[accel::kNumPlatforms];
        for (auto& v : z)
            v = rng.normal();
        const double det = detDist.sampleGivenBody(
            z[static_cast<int>(config.det)], rng);
        const double tra = traDist.sampleGivenBody(
            z[static_cast<int>(config.tra)], rng);
        const double loc = locDist.sampleGivenBody(
            z[static_cast<int>(config.loc)], rng);
        const double perception = std::max(loc, det + tra);
        rec.record(perception + fusionDist.sample(rng) +
                   motDist.sample(rng));
    }
    return rec.summary();
}

double
SystemModel::computePowerW(const SystemConfig& config) const
{
    // Each camera stream is served by a replica of all three engines
    // (Section 5.3).
    const double perCamera =
        platformModel(config.det).powerWatts(Component::Det) +
        platformModel(config.tra).powerWatts(Component::Tra) +
        platformModel(config.loc).powerWatts(Component::Loc);
    return perCamera * config.cameras;
}

SystemAssessment
SystemModel::assess(const SystemConfig& config, int samples,
                    Rng& rng) const
{
    SystemAssessment a;
    a.config = config;
    a.endToEnd = sampleEndToEnd(config, samples, rng);
    a.meanMs = a.endToEnd.mean;
    a.tailMs = a.endToEnd.p9999;
    a.power = power_.systemPower(computePowerW(config),
                                 config.storageTb);
    a.rangeReductionPct = ev_.rangeReductionPct(a.power.totalW());
    a.meetsLatencyConstraint = a.tailMs <= 100.0;
    a.meetsLatencyOnMeanOnly = a.meanMs <= 100.0 && a.tailMs > 100.0;
    return a;
}

std::vector<SystemConfig>
SystemModel::allConfigs(int cameras, double resolutionScale)
{
    std::vector<SystemConfig> configs;
    for (int d = 0; d < accel::kNumPlatforms; ++d) {
        for (int t = 0; t < accel::kNumPlatforms; ++t) {
            for (int l = 0; l < accel::kNumPlatforms; ++l) {
                SystemConfig c;
                c.det = static_cast<Platform>(d);
                c.tra = static_cast<Platform>(t);
                c.loc = static_cast<Platform>(l);
                c.cameras = cameras;
                c.resolutionScale = resolutionScale;
                configs.push_back(c);
            }
        }
    }
    return configs;
}

} // namespace ad::pipeline
