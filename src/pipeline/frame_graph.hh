/**
 * @file
 * Explicit stage DAG and pipelined executor for the perception
 * pipeline. The paper's end-to-end pipeline (Section 3.1) is a fixed
 * dataflow graph -- DET and LOC consume the camera frame in parallel,
 * TRA consumes DET, FUSION joins TRA with LOC, and the motion planner
 * consumes the fused scene -- and its tail-latency analysis (Section
 * 2.4.2) holds each *frame* to the 100 ms budget, not the whole
 * pipeline to one frame at a time. FrameGraph makes that dataflow
 * explicit (stages declare their input edges by name), and
 * FrameGraphExecutor schedules ready stages onto the shared worker
 * pool so DET of frame k can overlap TRA/LOC/FUSION of frame k+1,
 * raising throughput toward 1/max(stage) while each frame's latency
 * still composes exactly as in the serial pipeline.
 *
 * Determinism contract: all virtual-timeline arithmetic (stage start,
 * duration, commit time) depends only on submit order and the stage
 * cost functions, never on real thread scheduling; admit and commit
 * callbacks fire in strict frame order under the executor lock. Given
 * deterministic stage functions, every depth, worker count, and
 * schedule seed therefore produces bitwise-identical outputs -- the
 * same discipline the serve-mode MultiStreamServer uses (see
 * docs/DESIGN.md "Deterministic concurrency").
 */

#ifndef AD_PIPELINE_FRAME_GRAPH_HH
#define AD_PIPELINE_FRAME_GRAPH_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "common/bounded_queue.hh"

namespace ad {

class ThreadPool;

namespace pipeline {

/**
 * A directed acyclic graph of named pipeline stages.
 *
 * Stages are added with the names of the stages they consume; edges
 * are resolved by name so the graph can be declared in any order.
 * validate() reports duplicate names, dangling inputs, and cycles
 * before an executor will accept the graph.
 */
class FrameGraph
{
  public:
    /** Dense stage index, assigned in addStage() call order. */
    using StageId = int;

    /**
     * Stage body: runs the stage's work for @p frame and returns the
     * stage's *virtual* cost in milliseconds (the measured engine
     * latency the virtual timeline composes, exactly what the serial
     * pipeline feeds into endToEndMs()).
     */
    using StageFn = std::function<double(std::int64_t frame)>;

    /**
     * Add a stage.
     *
     * @param name unique stage name ("DET", "FUSION", ...).
     * @param inputs names of the stages whose outputs this stage
     *        consumes; empty for a root stage fed by frame admission.
     * @param fn stage body (see StageFn).
     * @return the id of the new stage.
     */
    StageId addStage(std::string name, std::vector<std::string> inputs,
                     StageFn fn);

    /**
     * Check the graph is executable.
     *
     * @return std::nullopt when the graph is a well-formed DAG,
     *         otherwise a diagnostic naming the duplicate stage,
     *         unresolved input edge, or cycle.
     */
    std::optional<std::string> validate() const;

    /**
     * Stage ids in a deterministic topological order (Kahn's
     * algorithm, ties broken by lowest stage id). Requires
     * validate() to have returned std::nullopt.
     */
    std::vector<StageId> topologicalOrder() const;

    /** Number of stages added so far. */
    std::size_t stageCount() const { return stages_.size(); }

    /** Name of stage @p id. */
    const std::string& stageName(StageId id) const
    {
        return stages_[static_cast<std::size_t>(id)].name;
    }

    /**
     * Resolved input stage ids of stage @p id, in declaration order.
     * Requires validate() to have returned std::nullopt.
     */
    const std::vector<StageId>& inputs(StageId id) const
    {
        return stages_[static_cast<std::size_t>(id)].inputIds;
    }

    /** Stage ids that consume the output of stage @p id. */
    std::vector<StageId> consumers(StageId id) const;

    /** Run the body of stage @p id for @p frame (exposed for tests). */
    double runStage(StageId id, std::int64_t frame) const
    {
        return stages_[static_cast<std::size_t>(id)].fn(frame);
    }

  private:
    /** One declared stage: name, named edges, resolved edges, body. */
    struct Stage
    {
        std::string name;                    ///< unique stage name.
        std::vector<std::string> inputNames; ///< declared input edges.
        std::vector<StageId> inputIds;       ///< resolved by validate().
        StageFn fn;                          ///< stage body.
    };

    /** Resolve input names to ids; false when an edge is dangling. */
    bool resolveEdges() const;

    mutable std::vector<Stage> stages_;
};

/**
 * Pipelined executor: runs a FrameGraph over a stream of frames with
 * up to `depth` frames in flight, scheduling every ready stage onto a
 * shared ThreadPool.
 *
 * Each graph edge carries a bounded FIFO of frame ids (capacity =
 * depth); a stage is *ready* when every input edge has its next frame
 * available, and processes frames strictly in order. Virtual time for
 * a stage run starts at max(frame admission time, the stage's
 * previous end, all input ends) -- the standard pipelined-latency
 * recurrence -- and a frame commits at the max end over its stages.
 * Admission applies backpressure: submit() blocks while `depth`
 * frames are in flight, and a frame's virtual admission also waits
 * for the virtual commit of the frame `depth` positions earlier, so
 * the virtual and real pipelines agree on occupancy.
 *
 * Ordering guarantees (the determinism backbone): the admit callback
 * runs in submit order on the submitting thread; the commit callback
 * runs in frame order on whichever worker completes the frame; both
 * run under the executor lock, so all cross-stage shared state that
 * is mutated only in admit/commit is updated in a schedule-independent
 * order.
 */
class FrameGraphExecutor
{
  public:
    /** Executor configuration. */
    struct Params
    {
        /** Max frames in flight (>= 1); 1 degenerates to serial. */
        int depth = 2;
        /**
         * Seed for the dispatch-order shuffle. 0 dispatches ready
         * stages in (frame, topological index) order; any other value
         * perturbs the real dispatch order (never the virtual
         * timeline) so tests can prove schedule independence.
         */
        std::uint64_t scheduleSeed = 0;
        /** Worker pool; nullptr uses ad::sharedWorkerPool(). */
        ThreadPool* pool = nullptr;
    };

    /** Virtual-timeline placement of one stage run. */
    struct StageTiming
    {
        double startMs = 0; ///< virtual start (ms on the mission clock).
        double durMs = 0;   ///< virtual cost returned by the stage fn.
        double endMs = 0;   ///< startMs + durMs.
    };

    /** Complete virtual-timeline record of one committed frame. */
    struct FrameTiming
    {
        std::int64_t frame = -1; ///< frame id (submit order).
        double arrivalMs = 0;    ///< submit-provided arrival time.
        double admitMs = 0;      ///< max(arrival, commit of frame-depth).
        double commitMs = 0;     ///< max stage end; pipeline latency is
                                 ///< commitMs - arrivalMs.
        std::vector<StageTiming> stages; ///< indexed by StageId.
    };

    /** Called in submit order, under the executor lock. */
    using AdmitFn = std::function<void(std::int64_t frame)>;

    /** Called in frame order, under the executor lock. */
    using CommitFn =
        std::function<void(std::int64_t frame, const FrameTiming&)>;

    /**
     * Build an executor over @p graph.
     *
     * @param graph the stage DAG; must pass FrameGraph::validate().
     * @param params depth / seed / pool configuration.
     * @param admit per-frame admission hook (may be empty).
     * @param commit per-frame commit hook (may be empty).
     * @throws std::invalid_argument when the graph fails validation.
     */
    FrameGraphExecutor(FrameGraph graph, Params params, AdmitFn admit,
                       CommitFn commit);

    /** Drains all in-flight frames, then destroys the executor. */
    ~FrameGraphExecutor();

    FrameGraphExecutor(const FrameGraphExecutor&) = delete;
    FrameGraphExecutor& operator=(const FrameGraphExecutor&) = delete;

    /**
     * Submit the next frame, blocking while `depth` frames are in
     * flight. Runs the admit hook, then enqueues the frame at every
     * root stage.
     *
     * @param arrivalMs the frame's arrival on the virtual mission
     *        clock, in milliseconds; must be non-decreasing.
     * @return the id assigned to the frame (0, 1, 2, ...).
     */
    std::int64_t submit(double arrivalMs);

    /** Block until every submitted frame has committed. */
    void drain();

    /** Frames committed so far. */
    std::int64_t framesCommitted() const;

    /** Virtual commit time of the most recently committed frame. */
    double lastCommitVirtualMs() const;

    /** Stage bodies that threw (each contributes zero virtual cost). */
    std::size_t stageErrorCount() const;

    /** Configured pipeline depth. */
    int depth() const { return params_.depth; }

  private:
    /** In-flight bookkeeping for one frame slot (frame % depth). */
    struct InFlight
    {
        std::int64_t frame = -1;
        double arrivalMs = 0;
        double admitMs = 0;
        std::vector<StageTiming> stages;
        std::size_t stagesDone = 0;
    };

    /** Run stage body outside the lock, then record completion. */
    void runStage(int stage, std::int64_t frame);

    /** Record a finished stage run and advance the graph. */
    void taskDone(int stage, std::int64_t frame, double durMs);

    /**
     * Dispatch every ready stage to the pool. Tasks the pool refuses
     * (shutdown) are appended to @p overflow for inline execution by
     * the caller after releasing the lock.
     */
    void dispatchReadyLocked(
        std::vector<std::pair<int, std::int64_t>>& overflow);

    /** Commit finished frames in order; notifies waiters. */
    void commitFinishedLocked();

    FrameGraph graph_;
    Params params_;
    AdmitFn admit_;
    CommitFn commit_;
    ThreadPool* pool_ = nullptr;

    std::vector<int> topo_;       ///< stage ids in topological order.
    std::vector<int> topoIndex_;  ///< stage id -> topological rank.
    std::vector<std::vector<int>> consumers_; ///< stage -> consumers.
    /**
     * inQueues_[s][j]: frame ids delivered on stage s's j-th input
     * edge (a single admission queue when s is a root). All queues of
     * a stage advance in lockstep -- a frame is popped from every
     * input at once when the stage dispatches -- so their fronts
     * always agree. std::deque as the container because BoundedQueue
     * is neither movable nor copyable.
     */
    std::vector<std::deque<BoundedQueue<std::int64_t>>> inQueues_;

    mutable std::mutex mutex_;
    std::condition_variable slotFree_; ///< signaled on commit.
    std::condition_variable drained_;  ///< signaled when idle.
    std::vector<InFlight> slots_;      ///< ring, indexed frame % depth.
    std::vector<char> stageBusy_;      ///< stage id -> running now.
    std::vector<double> stageFreeMs_;  ///< stage id -> virtual free time.
    /** Virtual commit time of the frame last occupying each slot. */
    std::vector<double> slotCommitMs_;
    std::int64_t admitted_ = 0;  ///< frames submitted.
    std::int64_t committed_ = 0; ///< frames committed.
    double lastCommitMs_ = 0;
    std::size_t stageErrors_ = 0;
    std::mt19937_64 shuffleRng_;
};

} // namespace pipeline
} // namespace ad

#endif // AD_PIPELINE_FRAME_GRAPH_HH
