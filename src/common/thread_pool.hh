/**
 * @file
 * Fixed-size worker pool used by the object-tracking engine: the paper
 * (Section 3.1.2) launches a pool of trackers at startup so that
 * incoming tracking requests never pay initialization cost. The pool
 * also parallelizes the DET and LOC engines' frame processing in
 * measured mode.
 */

#ifndef AD_COMMON_THREAD_POOL_HH
#define AD_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ad {

/**
 * A simple fixed-size thread pool with a FIFO task queue and a
 * completion barrier (waitIdle).
 */
class ThreadPool
{
  public:
    /** Spawn the given number of workers (at least 1). */
    explicit ThreadPool(std::size_t workers);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    std::size_t workerCount() const { return threads_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

} // namespace ad

#endif // AD_COMMON_THREAD_POOL_HH
