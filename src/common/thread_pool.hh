/**
 * @file
 * Fixed-size worker pool shared by the compute engines: the paper
 * (Section 3.1.2) launches a pool of trackers at startup so that
 * incoming tracking requests never pay initialization cost, and the
 * parallel NN kernel layer (nn/kernel_context.hh) shards GEMM,
 * convolution and sparse-FC row ranges across the same workers via
 * parallelFor (common/parallel_for.hh).
 */

#ifndef AD_COMMON_THREAD_POOL_HH
#define AD_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ad {

/**
 * A simple fixed-size thread pool with a FIFO task queue and a
 * completion barrier (waitIdle).
 *
 * Tasks that throw are caught inside the worker loop (logged and
 * counted via failedTaskCount()) so one failing kernel shard can
 * neither terminate the process nor leave waitIdle() blocked on a
 * never-decremented active count.
 */
class ThreadPool
{
  public:
    /** Spawn the given number of workers (at least 1). */
    explicit ThreadPool(std::size_t workers);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue a task for asynchronous execution.
     *
     * @return false (task dropped, with a warning) when the pool is
     *         shutting down -- enqueuing after shutdown()/destruction
     *         begins would otherwise race the worker join.
     */
    bool submit(std::function<void()> task);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    /**
     * Drain the queue and join all workers; further submit() calls are
     * rejected. Idempotent; the destructor calls it.
     */
    void shutdown();

    std::size_t workerCount() const { return threads_.size(); }

    /** Tasks that terminated by throwing, since construction. */
    std::size_t failedTaskCount() const { return failedTasks_.load(); }

    /** Tasks executed to completion (including throwing ones). */
    std::size_t executedTaskCount() const
    {
        return executedTasks_.load();
    }

    /**
     * High-water mark of the task queue (waiting tasks observed at
     * submit time); the observability layer reports it as a saturation
     * signal for the shared kernel pool.
     */
    std::size_t peakQueueDepth() const { return peakQueue_.load(); }

    /**
     * True when the calling thread is a worker of *any* ThreadPool.
     * Kept as a diagnostic for code that must behave differently on
     * a worker (parallelFor no longer needs it: its claim-based
     * chunk table lets worker-thread callers fork safely, running
     * every unclaimed chunk themselves if no other worker is free).
     */
    static bool insideWorker();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::atomic<std::size_t> failedTasks_{0};
    std::atomic<std::size_t> executedTasks_{0};
    std::atomic<std::size_t> peakQueue_{0};
};

} // namespace ad

#endif // AD_COMMON_THREAD_POOL_HH
