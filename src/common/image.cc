#include "common/image.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ad {

Image::Image(int width, int height, std::uint8_t fill)
    : width_(width), height_(height)
{
    if (width < 0 || height < 0)
        panic("Image: negative dimensions ", width, "x", height);
    data_.assign(static_cast<std::size_t>(width) * height, fill);
}

std::uint8_t
Image::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

void
Image::fill(std::uint8_t value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Image::fillRect(const BBox& rect, std::uint8_t value)
{
    const int x0 = std::max(0, static_cast<int>(std::floor(rect.x)));
    const int y0 = std::max(0, static_cast<int>(std::floor(rect.y)));
    const int x1 = std::min(width_, static_cast<int>(std::ceil(rect.xmax())));
    const int y1 = std::min(height_,
                            static_cast<int>(std::ceil(rect.ymax())));
    for (int y = y0; y < y1; ++y)
        std::fill(row(y) + x0, row(y) + x1, value);
}

double
Image::sampleBilinear(double x, double y) const
{
    x = std::clamp(x, 0.0, static_cast<double>(width_ - 1));
    y = std::clamp(y, 0.0, static_cast<double>(height_ - 1));
    const int x0 = static_cast<int>(x);
    const int y0 = static_cast<int>(y);
    const int x1 = std::min(x0 + 1, width_ - 1);
    const int y1 = std::min(y0 + 1, height_ - 1);
    const double fx = x - x0;
    const double fy = y - y0;
    const double top = at(x0, y0) * (1 - fx) + at(x1, y0) * fx;
    const double bot = at(x0, y1) * (1 - fx) + at(x1, y1) * fx;
    return top * (1 - fy) + bot * fy;
}

Image
Image::resized(int newWidth, int newHeight) const
{
    Image out(newWidth, newHeight);
    if (empty() || newWidth <= 0 || newHeight <= 0)
        return out;
    const double sx = static_cast<double>(width_) / newWidth;
    const double sy = static_cast<double>(height_) / newHeight;
    for (int y = 0; y < newHeight; ++y) {
        const double srcY = (y + 0.5) * sy - 0.5;
        for (int x = 0; x < newWidth; ++x) {
            const double srcX = (x + 0.5) * sx - 0.5;
            out.at(x, y) = static_cast<std::uint8_t>(
                std::clamp(sampleBilinear(srcX, srcY), 0.0, 255.0));
        }
    }
    return out;
}

Image
Image::cropResized(const BBox& rect, int outW, int outH) const
{
    Image out(outW, outH);
    if (empty() || rect.empty())
        return out;
    for (int y = 0; y < outH; ++y) {
        const double srcY = rect.y + (y + 0.5) / outH * rect.h - 0.5;
        for (int x = 0; x < outW; ++x) {
            const double srcX = rect.x + (x + 0.5) / outW * rect.w - 0.5;
            out.at(x, y) = static_cast<std::uint8_t>(
                std::clamp(sampleBilinear(srcX, srcY), 0.0, 255.0));
        }
    }
    return out;
}

Image
Image::boxFiltered(int radius) const
{
    if (radius <= 0 || empty())
        return *this;
    IntegralImage integral(*this);
    Image out(width_, height_);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            const int x0 = std::max(0, x - radius);
            const int y0 = std::max(0, y - radius);
            const int x1 = std::min(width_, x + radius + 1);
            const int y1 = std::min(height_, y + radius + 1);
            const std::uint64_t sum = integral.rectSum(x0, y0, x1, y1);
            const std::uint64_t area =
                static_cast<std::uint64_t>(x1 - x0) * (y1 - y0);
            out.at(x, y) = static_cast<std::uint8_t>(sum / area);
        }
    }
    return out;
}

double
Image::meanIntensity() const
{
    if (empty())
        return 0.0;
    std::uint64_t sum = 0;
    for (const auto v : data_)
        sum += v;
    return static_cast<double>(sum) / static_cast<double>(data_.size());
}

IntegralImage::IntegralImage(const Image& img)
    : width_(img.width()), height_(img.height())
{
    sums_.assign(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0);
    for (int y = 0; y < height_; ++y) {
        std::uint64_t rowSum = 0;
        const std::uint8_t* src = img.row(y);
        std::uint64_t* cur = sums_.data() +
            static_cast<std::size_t>(y + 1) * (width_ + 1);
        const std::uint64_t* prev = sums_.data() +
            static_cast<std::size_t>(y) * (width_ + 1);
        for (int x = 0; x < width_; ++x) {
            rowSum += src[x];
            cur[x + 1] = prev[x + 1] + rowSum;
        }
    }
}

std::uint64_t
IntegralImage::rectSum(int x0, int y0, int x1, int y1) const
{
    x0 = std::clamp(x0, 0, width_);
    y0 = std::clamp(y0, 0, height_);
    x1 = std::clamp(x1, 0, width_);
    y1 = std::clamp(y1, 0, height_);
    if (x1 <= x0 || y1 <= y0)
        return 0;
    const auto stride = static_cast<std::size_t>(width_ + 1);
    return sums_[y1 * stride + x1] - sums_[y0 * stride + x1] -
           sums_[y1 * stride + x0] + sums_[y0 * stride + x0];
}

} // namespace ad
