/**
 * @file
 * Status-message and error-reporting helpers, modeled after the gem5
 * logging interface: inform() and warn() report conditions without
 * stopping execution, fatal() aborts on user error (bad configuration),
 * and panic() aborts on internal invariant violations (library bugs).
 */

#ifndef AD_COMMON_LOGGING_HH
#define AD_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace ad {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Global log-level accessor. Defaults to Info. */
LogLevel logLevel();

/** Set the global log level (e.g.\ Silent for benchmark runs). */
void setLogLevel(LogLevel level);

namespace detail {

/** Concatenate a parameter pack into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit a tagged line to the given stream. */
void emit(std::ostream& os, std::string_view tag, const std::string& msg);

[[noreturn]] void abortWith(std::string_view tag, const std::string& msg);

} // namespace detail

/**
 * Report normal operating status the user should know but not worry
 * about.
 */
template <typename... Args>
void
inform(Args&&... args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit(std::clog, "info", detail::concat(args...));
}

/** Report suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args&&... args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit(std::clog, "warn", detail::concat(args...));
}

/**
 * Terminate because of a user-correctable condition (bad configuration,
 * invalid arguments). Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::abortWith("fatal", detail::concat(args...));
}

/**
 * Terminate because an internal invariant was violated; this indicates a
 * bug in the library itself, never a user error.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::abortWith("panic", detail::concat(args...));
}

} // namespace ad

#endif // AD_COMMON_LOGGING_HH
