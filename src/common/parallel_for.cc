#include "common/parallel_for.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_pool.hh"

namespace ad {

namespace {

/**
 * Shared state of one fork: the static chunk table behind an atomic
 * claim cursor, plus a completion latch and first-exception capture.
 *
 * Chunks are claimed (not pre-assigned): the calling thread and the
 * pool helper tasks all pull from `next` until it passes `chunks`.
 * Claim order varies with scheduling, chunk boundaries never do, and
 * the parallelFor determinism contract (disjoint outputs per index)
 * makes the order unobservable. Helpers that arrive after the table
 * is drained claim nothing and finish immediately, which is what
 * makes nested forks starvation-free: a worker-thread caller whose
 * helpers are all stuck behind busy workers just claims every chunk
 * inline.
 *
 * Heap-allocated (shared_ptr) because late helper tasks can outlive
 * the parallelFor call that spawned them: the caller returns once all
 * *chunks* are done, not once all helpers have run.
 */
struct ForkState
{
    std::atomic<std::size_t> next{0}; ///< claim cursor over chunks.
    std::size_t chunks = 0;
    std::size_t begin = 0;
    std::size_t base = 0; ///< chunk size floor (range / chunks).
    std::size_t rem = 0;  ///< chunks carrying one extra index.
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;

    std::mutex mutex;
    std::condition_variable done;
    std::size_t completed = 0;
    std::exception_ptr error;

    /** Static bounds of chunk i (depend only on range and chunks). */
    std::pair<std::size_t, std::size_t>
    chunkBounds(std::size_t i) const
    {
        const std::size_t lo =
            begin + i * base + std::min<std::size_t>(i, rem);
        return {lo, lo + base + (i < rem ? 1 : 0)};
    }

    /**
     * Claim and run chunks until the table is drained.
     * @return chunks this call completed.
     */
    std::size_t
    claimAndRun()
    {
        std::size_t ran = 0;
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= chunks)
                return ran;
            std::exception_ptr e;
            try {
                const auto [lo, hi] = chunkBounds(i);
                (*fn)(lo, hi);
            } catch (...) {
                e = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (e && !error)
                error = std::move(e);
            if (++completed == chunks)
                done.notify_all();
            ++ran;
        }
    }
};

} // namespace

void
parallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
            std::size_t grain,
            const std::function<void(std::size_t, std::size_t)>& fn,
            std::size_t maxThreads)
{
    if (end <= begin)
        return;
    const std::size_t range = end - begin;
    if (grain == 0)
        grain = 1;

    std::size_t limit = maxThreads;
    if (limit == 0)
        limit = pool ? pool->workerCount() + 1 : 1;
    const std::size_t chunks =
        std::min(limit, (range + grain - 1) / grain);

    if (!pool || chunks <= 1) {
        fn(begin, end);
        return;
    }

    auto state = std::make_shared<ForkState>();
    state->chunks = chunks;
    state->begin = begin;
    state->base = range / chunks;
    state->rem = range % chunks;
    state->fn = &fn;

    // One helper per chunk beyond the caller's first claim. A helper
    // that finds the table drained exits without touching fn, so
    // over-submitting costs nothing and a shutting-down pool that
    // refuses helpers just leaves more chunks for the caller.
    for (std::size_t i = 1; i < chunks; ++i)
        if (!pool->submit([state] { state->claimAndRun(); }))
            break;

    state->claimAndRun();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock,
                     [&] { return state->completed == state->chunks; });
    if (state->error)
        std::rethrow_exception(state->error);
}

ThreadPool&
sharedWorkerPool()
{
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 1 ? hw - 1 : 1);
    }());
    return pool;
}

} // namespace ad
