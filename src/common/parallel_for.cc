#include "common/parallel_for.hh"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/thread_pool.hh"

namespace ad {

namespace {

/** Completion latch + first-exception capture shared by the chunks. */
struct ForkState
{
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;

    void
    finish(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (e && !error)
            error = std::move(e);
        if (--remaining == 0)
            done.notify_all();
    }
};

} // namespace

void
parallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
            std::size_t grain,
            const std::function<void(std::size_t, std::size_t)>& fn,
            std::size_t maxThreads)
{
    if (end <= begin)
        return;
    const std::size_t range = end - begin;
    if (grain == 0)
        grain = 1;

    std::size_t limit = maxThreads;
    if (limit == 0)
        limit = pool ? pool->workerCount() + 1 : 1;
    const std::size_t chunks =
        std::min(limit, (range + grain - 1) / grain);

    if (!pool || chunks <= 1 || ThreadPool::insideWorker()) {
        fn(begin, end);
        return;
    }

    // Static even split: chunk i covers base indices plus one extra for
    // the first `rem` chunks. Boundaries depend only on (range, chunks).
    const std::size_t base = range / chunks;
    const std::size_t rem = range % chunks;
    const auto chunkBounds = [&](std::size_t i) {
        const std::size_t lo =
            begin + i * base + std::min<std::size_t>(i, rem);
        return std::pair<std::size_t, std::size_t>(
            lo, lo + base + (i < rem ? 1 : 0));
    };

    ForkState state;
    state.remaining = chunks - 1;
    std::size_t submitted = 0;
    for (std::size_t i = 1; i < chunks; ++i) {
        const auto [lo, hi] = chunkBounds(i);
        const bool accepted = pool->submit([&fn, &state, lo, hi] {
            std::exception_ptr e;
            try {
                fn(lo, hi);
            } catch (...) {
                e = std::current_exception();
            }
            state.finish(std::move(e));
        });
        if (!accepted)
            break; // pool shutting down; run the rest inline below
        ++submitted;
    }

    // The caller executes chunk 0 (and any chunks a shutting-down pool
    // refused) instead of idling on the latch.
    std::exception_ptr callerError;
    try {
        const auto [lo, hi] = chunkBounds(0);
        fn(lo, hi);
        for (std::size_t i = submitted + 1; i < chunks; ++i) {
            const auto [l2, h2] = chunkBounds(i);
            fn(l2, h2);
        }
    } catch (...) {
        callerError = std::current_exception();
    }

    if (submitted > 0) {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.remaining -= chunks - 1 - submitted; // never-submitted
        state.done.wait(lock, [&state] { return state.remaining == 0; });
    }
    if (callerError)
        std::rethrow_exception(callerError);
    if (state.error)
        std::rethrow_exception(state.error);
}

ThreadPool&
sharedWorkerPool()
{
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 1 ? hw - 1 : 1);
    }());
    return pool;
}

} // namespace ad
