#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace ad {

std::string
LatencySummary::toString(const std::string& unit) const
{
    std::ostringstream oss;
    oss << "n=" << count
        << " mean=" << mean << unit
        << " p50=" << p50 << unit
        << " p95=" << p95 << unit
        << " p99=" << p99 << unit
        << " p99.99=" << p9999 << unit
        << " worst=" << worst << unit;
    return oss.str();
}

LatencyRecorder::LatencyRecorder(std::size_t expected)
{
    samples_.reserve(expected);
}

void
LatencyRecorder::record(double value)
{
    samples_.push_back(value);
    sortedValid_ = false;
}

void
LatencyRecorder::merge(const LatencyRecorder& other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sortedValid_ = false;
}

double
LatencyRecorder::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

void
LatencyRecorder::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
LatencyRecorder::percentile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (q < 0.0 || q > 1.0)
        panic("percentile: quantile ", q, " outside [0, 1]");
    ensureSorted();
    // Nearest-rank: the smallest value such that at least ceil(q * n)
    // samples are <= it.
    const auto n = sorted_.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted_[rank - 1];
}

double
LatencyRecorder::worst() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
LatencyRecorder::best() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

LatencySummary
LatencyRecorder::summary() const
{
    LatencySummary s;
    s.count = samples_.size();
    if (!s.count)
        return s;
    s.mean = mean();
    s.p50 = percentile(0.50);
    s.p95 = percentile(0.95);
    s.p99 = percentile(0.99);
    s.p9999 = percentile(0.9999);
    s.worst = worst();
    s.best = best();
    return s;
}

std::optional<LatencySummary>
LatencyRecorder::summaryIfAny() const
{
    if (samples_.empty())
        return std::nullopt;
    return summary();
}

void
LatencyRecorder::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

WindowedLatencyRecorder::WindowedLatencyRecorder(std::size_t capacity)
{
    if (capacity < 1)
        panic("WindowedLatencyRecorder: capacity must be >= 1");
    ring_.resize(capacity, 0.0);
    scratch_.resize(capacity, 0.0);
}

void
WindowedLatencyRecorder::record(double value)
{
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = value;
    ++total_;
}

std::size_t
WindowedLatencyRecorder::count() const
{
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
}

std::size_t
WindowedLatencyRecorder::minSamplesFor(double q)
{
    if (q < 0.0 || q > 1.0)
        panic("minSamplesFor: quantile ", q, " outside [0, 1]");
    if (q >= 1.0)
        return 1; // the maximum is resolvable from any sample.
    // Nudge below the quotient before rounding up: 1/(1-0.9) lands at
    // 10.000000000000002 in binary, which would demand an 11th sample.
    return static_cast<std::size_t>(
        std::ceil(1.0 / (1.0 - q) - 1e-9));
}

bool
WindowedLatencyRecorder::resolvable(double q) const
{
    return count() >= minSamplesFor(q);
}

double
WindowedLatencyRecorder::percentile(double q) const
{
    const std::size_t n = count();
    if (n < minSamplesFor(q))
        return kInsufficientSamples;
    std::copy(ring_.begin(),
              ring_.begin() + static_cast<std::ptrdiff_t>(n),
              scratch_.begin());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    std::nth_element(scratch_.begin(),
                     scratch_.begin() +
                         static_cast<std::ptrdiff_t>(rank - 1),
                     scratch_.begin() + static_cast<std::ptrdiff_t>(n));
    return scratch_[rank - 1];
}

double
WindowedLatencyRecorder::mean() const
{
    const std::size_t n = count();
    if (!n)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        sum += ring_[i];
    return sum / static_cast<double>(n);
}

double
WindowedLatencyRecorder::worst() const
{
    const std::size_t n = count();
    if (!n)
        return 0.0;
    return *std::max_element(
        ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(n));
}

std::size_t
WindowedLatencyRecorder::countAbove(double threshold) const
{
    const std::size_t n = count();
    std::size_t above = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (ring_[i] > threshold)
            ++above;
    return above;
}

void
WindowedLatencyRecorder::clear()
{
    total_ = 0;
}

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace ad
