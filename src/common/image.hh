/**
 * @file
 * Grayscale image container and the pixel-level operations shared by the
 * synthetic camera, the ORB feature-extraction substrate, and the
 * DNN front ends: bilinear resize, cropping, box filtering, integral
 * images and normalization to float tensor input.
 */

#ifndef AD_COMMON_IMAGE_HH
#define AD_COMMON_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/geometry.hh"

namespace ad {

/**
 * 8-bit grayscale image with row-major storage. The camera substrate
 * renders into this type and all vision algorithms consume it.
 */
class Image
{
  public:
    Image() = default;

    /** Allocate a width x height image filled with the given value. */
    Image(int width, int height, std::uint8_t fill = 0);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /** Unchecked pixel access. */
    std::uint8_t at(int x, int y) const { return data_[idx(x, y)]; }
    std::uint8_t& at(int x, int y) { return data_[idx(x, y)]; }

    /** Clamped-border pixel access (reads outside return the edge). */
    std::uint8_t atClamped(int x, int y) const;

    const std::uint8_t* data() const { return data_.data(); }
    std::uint8_t* data() { return data_.data(); }
    const std::uint8_t* row(int y) const { return data_.data() + idx(0, y); }
    std::uint8_t* row(int y) { return data_.data() + idx(0, y); }

    /** Fill the whole image with one value. */
    void fill(std::uint8_t value);

    /** Fill an axis-aligned rectangle, clipped to the image. */
    void fillRect(const BBox& rect, std::uint8_t value);

    /** Bilinear sample at a real-valued position (clamped). */
    double sampleBilinear(double x, double y) const;

    /** Bilinear resize to the given dimensions. */
    Image resized(int newWidth, int newHeight) const;

    /**
     * Crop the given rectangle (clamped at borders) and resize the result
     * to outW x outH; the GOTURN-style tracker uses this for its target
     * and search-region inputs.
     */
    Image cropResized(const BBox& rect, int outW, int outH) const;

    /** Box-filter smoothing with the given radius. */
    Image boxFiltered(int radius) const;

    /** Mean pixel intensity. */
    double meanIntensity() const;

  private:
    std::size_t idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * width_ + x;
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> data_;
};

/**
 * Summed-area table over an Image, supporting O(1) rectangle sums. Used
 * by the oFAST orientation computation and the box filter.
 */
class IntegralImage
{
  public:
    explicit IntegralImage(const Image& img);

    /** Sum of pixels in [x0, x1) x [y0, y1), clamped to the image. */
    std::uint64_t rectSum(int x0, int y0, int x1, int y1) const;

    int width() const { return width_; }
    int height() const { return height_; }

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint64_t> sums_; ///< (width+1) x (height+1).
};

} // namespace ad

#endif // AD_COMMON_IMAGE_HH
