/**
 * @file
 * Deterministic data-parallel loop primitive on top of ad::ThreadPool.
 *
 * parallelFor splits an index range into contiguous chunks and runs
 * each chunk as one pool task (the calling thread executes the first
 * chunk itself).
 *
 * Determinism contract: the body receives a half-open [begin, end)
 * sub-range and must compute each index's result independently of how
 * the range was chunked -- disjoint outputs, no cross-index
 * accumulation across chunk boundaries. Under that contract the
 * overall result is bitwise-identical for every worker count,
 * including fully serial execution, which is what lets the NN kernels
 * reproduce paper figures exactly regardless of `nn.threads`. The
 * kernels uphold it by sharding only over output rows while keeping
 * each row's reduction order fixed.
 */

#ifndef AD_COMMON_PARALLEL_FOR_HH
#define AD_COMMON_PARALLEL_FOR_HH

#include <cstddef>
#include <functional>

namespace ad {

class ThreadPool;

/**
 * Run fn over [begin, end) in parallel chunks.
 *
 * The range is split into at most min(maxThreads, workers + 1) chunks
 * of at least `grain` indices each (static partitioning; chunk
 * boundaries depend only on the range and chunk count). Runs inline
 * when pool is null, the range fits one grain, or only one chunk
 * would result.
 *
 * Chunk *boundaries* are static but chunk *assignment* is dynamic:
 * chunks sit behind an atomic cursor that the calling thread and a
 * set of pool helper tasks claim from until the list is exhausted.
 * Under the determinism contract the claim order is unobservable, and
 * the scheme makes nested forks safe without serializing them: a
 * caller that is itself a pool worker (a frame-graph stage task
 * running an NN kernel) claims chunks like anyone else, idle workers
 * steal what they can, and when every worker is busy the caller
 * simply claims the whole list inline -- the pre-claiming behavior --
 * so a fork can never deadlock the pool however deep it nests.
 *
 * Exceptions thrown by fn are caught per chunk; the first one is
 * rethrown on the calling thread after every chunk has finished, so a
 * failing shard can never leave the pool deadlocked.
 *
 * @param pool worker pool, or nullptr for serial execution.
 * @param begin first index.
 * @param end one past the last index.
 * @param grain minimum indices per chunk (0 is treated as 1).
 * @param fn body invoked as fn(chunkBegin, chunkEnd).
 * @param maxThreads cap on concurrent chunks; 0 means workers + 1.
 */
void parallelFor(ThreadPool* pool, std::size_t begin, std::size_t end,
                 std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t maxThreads = 0);

/**
 * Lazily created process-wide worker pool for kernel sharding, sized
 * hardware_concurrency - 1 (the calling thread is the extra worker in
 * every parallelFor). Never use it for tasks that block on other
 * shared-pool tasks.
 */
ThreadPool& sharedWorkerPool();

} // namespace ad

#endif // AD_COMMON_PARALLEL_FOR_HH
