/**
 * @file
 * 2D geometry primitives shared by the sensing, localization, fusion and
 * planning subsystems: vectors, rigid poses (SE(2)), and axis-aligned
 * bounding boxes with the IoU operations used for detection/tracking
 * association.
 *
 * The world model is planar (x forward/east, y left/north, heading theta
 * counter-clockwise from +x), which matches how the paper's pipeline
 * fuses detections and vehicle location onto one coordinate space.
 */

#ifndef AD_COMMON_GEOMETRY_HH
#define AD_COMMON_GEOMETRY_HH

#include <cmath>
#include <string>

namespace ad {

/** 2D vector / point. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2() = default;
    Vec2(double x_, double y_) : x(x_), y(y_) {}

    Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double s) const { return {x * s, y * s}; }
    Vec2 operator/(double s) const { return {x / s, y / s}; }
    Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
    Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }

    double dot(const Vec2& o) const { return x * o.x + y * o.y; }
    /** z-component of the 3D cross product. */
    double cross(const Vec2& o) const { return x * o.y - y * o.x; }
    double norm() const { return std::hypot(x, y); }
    double squaredNorm() const { return x * x + y * y; }
    /** Unit vector; returns (0,0) for the zero vector. */
    Vec2 normalized() const;
    /** Rotate counter-clockwise by angle (radians). */
    Vec2 rotated(double angle) const;
};

/** Wrap an angle to (-pi, pi]. */
double wrapAngle(double angle);

/**
 * Rigid 2D pose: translation plus heading, i.e.\ an element of SE(2).
 * Used for the ego vehicle, landmarks-relative transforms, and the
 * fusion engine's camera-to-world projection.
 */
struct Pose2
{
    Vec2 pos;
    double theta = 0.0; ///< heading, radians, CCW from +x.

    Pose2() = default;
    Pose2(double x, double y, double theta_) : pos(x, y), theta(theta_) {}
    Pose2(const Vec2& p, double theta_) : pos(p), theta(theta_) {}

    /** Map a point from this pose's local frame into the world frame. */
    Vec2 transform(const Vec2& local) const;

    /** Map a world point into this pose's local frame. */
    Vec2 inverseTransform(const Vec2& world) const;

    /** Compose: first apply other in this frame, then this. */
    Pose2 compose(const Pose2& other) const;

    /** The pose mapping world coordinates into this local frame. */
    Pose2 inverse() const;

    /** Euclidean distance between positions. */
    double distanceTo(const Pose2& other) const;

    std::string toString() const;
};

/**
 * Axis-aligned bounding box in image (pixel) or world coordinates.
 * Stored as min corner plus size; empty boxes have non-positive extent.
 */
struct BBox
{
    double x = 0.0; ///< min-x corner.
    double y = 0.0; ///< min-y corner.
    double w = 0.0;
    double h = 0.0;

    BBox() = default;
    BBox(double x_, double y_, double w_, double h_)
        : x(x_), y(y_), w(w_), h(h_) {}

    /** Construct from a center point and size. */
    static BBox fromCenter(double cx, double cy, double w, double h);

    double area() const { return w > 0 && h > 0 ? w * h : 0.0; }
    bool empty() const { return w <= 0 || h <= 0; }
    double cx() const { return x + w / 2; }
    double cy() const { return y + h / 2; }
    double xmax() const { return x + w; }
    double ymax() const { return y + h; }

    bool contains(double px, double py) const;

    /** Intersection box (possibly empty). */
    BBox intersect(const BBox& o) const;

    /** Intersection-over-union in [0, 1]. */
    double iou(const BBox& o) const;

    /** Box grown by the given margin on every side. */
    BBox inflated(double margin) const;

    /** Box clipped to [0,width) x [0,height). */
    BBox clipped(double width, double height) const;

    std::string toString() const;
};

} // namespace ad

#endif // AD_COMMON_GEOMETRY_HH
