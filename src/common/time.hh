/**
 * @file
 * Wall-clock timing helpers for measured-mode characterization (the
 * paper's Figure 6/7 methodology): a steady-clock stopwatch returning
 * milliseconds, and a scoped timer that accumulates into a double.
 */

#ifndef AD_COMMON_TIME_HH
#define AD_COMMON_TIME_HH

#include <chrono>

namespace ad {

/** Steady-clock stopwatch; all readings are in milliseconds. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }

    /** Restart timing from now. */
    void reset() { start_ = Clock::now(); }

    /** Milliseconds elapsed since construction or the last reset. */
    double
    elapsedMs() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double, std::milli>(d).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * RAII timer accumulating the scope's duration (ms) into a target.
 * Used to attribute cycles to phases (e.g.\ DNN vs. decode inside DET)
 * for the Figure 7 cycle-breakdown measurement.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(double& accumulatorMs)
        : accumulator_(accumulatorMs) {}

    ~ScopedTimer() { accumulator_ += watch_.elapsedMs(); }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    double& accumulator_;
    Stopwatch watch_;
};

} // namespace ad

#endif // AD_COMMON_TIME_HH
