#include "common/logging.hh"

#include <atomic>

namespace ad {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Info};

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

namespace detail {

void
emit(std::ostream& os, std::string_view tag, const std::string& msg)
{
    os << tag << ": " << msg << '\n';
}

void
abortWith(std::string_view tag, const std::string& msg)
{
    std::cerr << tag << ": " << msg << std::endl;
    if (tag == "panic")
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace ad
