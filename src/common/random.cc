#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad {

namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the 64-bit seed into 256 bits of state; xoshiro requires a
    // nonzero state, which SplitMix64 guarantees with overwhelming
    // probability (and we re-seed on the pathological all-zero case).
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    if (lo > hi)
        panic("uniformInt: empty range [", lo, ", ", hi, "]");
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>((*this)() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 is kept away from zero to avoid log(0).
    double u1 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

} // namespace ad
