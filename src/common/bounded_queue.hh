/**
 * @file
 * Fixed-capacity MPMC queue used to carry frames across asynchronous
 * stage boundaries. The frame-graph executor (pipeline/frame_graph.hh)
 * gives every stage-to-stage edge one bounded queue sized to the
 * pipeline depth, so backpressure is structural: a producer stage can
 * never run more than `capacity` frames ahead of its consumer, and a
 * full edge is a bug in the admission gate rather than an unbounded
 * buffer quietly absorbing it.
 *
 * Two usage modes:
 *  - non-blocking (tryPush / tryPop / peek): what the executor uses
 *    under its own scheduling lock, where a full or empty queue is a
 *    scheduling fact, not something to wait on;
 *  - blocking (push / pop / close): a conventional producer/consumer
 *    channel for callers that do want to wait, with close() releasing
 *    both sides for shutdown.
 */

#ifndef AD_COMMON_BOUNDED_QUEUE_HH
#define AD_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ad {

/**
 * Fixed-capacity FIFO queue, safe for concurrent producers and
 * consumers. Capacity is set at construction and never grows; all
 * operations are O(1) amortized and hold one short mutex.
 */
template <typename T> class BoundedQueue
{
  public:
    /** @param capacity maximum queued items (at least 1). */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /** Items the queue can hold. */
    std::size_t capacity() const { return capacity_; }

    /** Items currently queued. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** True when nothing is queued. */
    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.empty();
    }

    /**
     * Enqueue without blocking.
     * @return false when the queue is full or closed.
     */
    bool
    tryPush(T value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(value));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue without blocking.
     * @return nullopt when the queue is empty.
     */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return out;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return out;
    }

    /** Copy of the oldest queued item; nullopt when empty. */
    std::optional<T>
    peek() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        return items_.front();
    }

    /**
     * Enqueue, waiting while the queue is full.
     * @return false when the queue was closed before space appeared.
     */
    bool
    push(T value)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(value));
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue, waiting while the queue is empty.
     * @return nullopt only after close() with the queue drained.
     */
    std::optional<T>
    pop()
    {
        std::optional<T> out;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return out; // closed and drained
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return out;
    }

    /**
     * Close the queue: push() fails from now on, pop() drains what
     * remains and then returns nullopt, and every waiter wakes.
     * Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    const std::size_t capacity_;      ///< fixed at construction.
    mutable std::mutex mutex_;        ///< guards items_ and closed_.
    std::condition_variable notEmpty_; ///< wakes pop() waiters.
    std::condition_variable notFull_;  ///< wakes push() waiters.
    std::deque<T> items_;             ///< FIFO storage (never resized
                                      ///< beyond capacity_).
    bool closed_ = false;             ///< set by close().
};

} // namespace ad

#endif // AD_COMMON_BOUNDED_QUEUE_HH
