#include "common/config.hh"

#include <cstdlib>
#include <string_view>

#include "common/logging.hh"

namespace ad {

Config
Config::fromArgs(int argc, char** argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (!arg.starts_with("--"))
            fatal("unexpected positional argument '", arg,
                  "'; use --key=value");
        arg.remove_prefix(2);
        const auto eq = arg.find('=');
        if (eq != std::string_view::npos) {
            cfg.set(std::string(arg.substr(0, eq)),
                    std::string(arg.substr(eq + 1)));
        } else if (i + 1 < argc &&
                   !std::string_view(argv[i + 1]).starts_with("--")) {
            cfg.set(std::string(arg), argv[i + 1]);
            ++i;
        } else {
            cfg.set(std::string(arg), "true");
        }
    }
    return cfg;
}

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string& key, const std::string& def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

int
Config::getInt(const std::string& key, int def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second, "' is not an int");
    return static_cast<int>(v);
}

double
Config::getDouble(const std::string& key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second,
              "' is not a number");
    return v;
}

bool
Config::getBool(const std::string& key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "': '", v, "' is not a bool");
}

} // namespace ad
