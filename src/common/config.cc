#include "common/config.hh"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/logging.hh"

namespace ad {

namespace {

/** Classic two-row Levenshtein distance. */
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // namespace

Config
Config::fromArgs(int argc, char** argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg(argv[i]);
        if (!arg.starts_with("--"))
            fatal("unexpected positional argument '", arg,
                  "'; use --key=value");
        arg.remove_prefix(2);
        const auto eq = arg.find('=');
        if (eq != std::string_view::npos) {
            cfg.set(std::string(arg.substr(0, eq)),
                    std::string(arg.substr(eq + 1)));
        } else if (i + 1 < argc &&
                   !std::string_view(argv[i + 1]).starts_with("--")) {
            cfg.set(std::string(arg), argv[i + 1]);
            ++i;
        } else {
            cfg.set(std::string(arg), "true");
        }
    }
    return cfg;
}

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string& key, const std::string& def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

int
Config::getInt(const std::string& key, int def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second, "' is not an int");
    return static_cast<int>(v);
}

double
Config::getDouble(const std::string& key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '", key, "': '", it->second,
              "' is not a number");
    return v;
}

int
Config::warnUnknownKeys(const std::vector<std::string>& known) const
{
    int unknown = 0;
    for (const auto& [key, value] : values_) {
        if (std::find(known.begin(), known.end(), key) != known.end())
            continue;
        ++unknown;
        const std::string* best = nullptr;
        std::size_t bestDist = 0;
        for (const auto& candidate : known) {
            const std::size_t d = editDistance(key, candidate);
            if (!best || d < bestDist) {
                best = &candidate;
                bestDist = d;
            }
        }
        if (best && bestDist <= std::max<std::size_t>(2, key.size() / 3))
            warn("unknown config key '--", key, "'; did you mean '--",
                 *best, "'?");
        else
            warn("unknown config key '--", key, "' (ignored)");
    }
    return unknown;
}

bool
Config::getBool(const std::string& key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key '", key, "': '", v, "' is not a bool");
}

} // namespace ad
