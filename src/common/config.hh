/**
 * @file
 * Minimal key=value configuration store with typed getters and a
 * command-line parser (--key=value / --key value / --flag). Examples and
 * bench harnesses use this for parameter sweeps instead of bespoke
 * argument handling.
 */

#ifndef AD_COMMON_CONFIG_HH
#define AD_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace ad {

/** String-keyed configuration with typed, defaulted lookups. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse command-line arguments of the form --key=value, --key value,
     * or bare --flag (stored as "true"). Unrecognized positional
     * arguments cause a fatal() since every tool here is flag-driven.
     */
    static Config fromArgs(int argc, char** argv);

    /** Set (or overwrite) a key. */
    void set(const std::string& key, const std::string& value);

    bool has(const std::string& key) const;

    /** Typed getters with defaults; fatal() on unconvertible values. */
    std::string getString(const std::string& key,
                          const std::string& def = "") const;
    int getInt(const std::string& key, int def) const;
    double getDouble(const std::string& key, double def) const;
    bool getBool(const std::string& key, bool def) const;

    const std::map<std::string, std::string>& entries() const
    {
        return values_;
    }

    /**
     * Warn (stderr) about every stored key absent from `known`,
     * suggesting the nearest known key by edit distance when one is
     * plausibly a typo (distance <= max(2, len/3)). Catches silently
     * ignored misspellings like --fault.drop-p for --fault.drop_p.
     * Returns the number of unknown keys.
     */
    int warnUnknownKeys(const std::vector<std::string>& known) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace ad

#endif // AD_COMMON_CONFIG_HH
