/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * simulation. Implements xoshiro256** (Blackman & Vigna), a fast
 * high-quality generator, plus distribution helpers used throughout the
 * library (uniform, normal, lognormal, Bernoulli).
 *
 * The library never uses std::random_device or global generator state;
 * every stochastic component takes an explicit Rng so that whole-system
 * runs are bit-reproducible from a single seed.
 */

#ifndef AD_COMMON_RANDOM_HH
#define AD_COMMON_RANDOM_HH

#include <cstdint>

namespace ad {

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * distributions, although the built-in helpers below are preferred for
 * reproducibility across standard-library implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal sample: exp(N(mu, sigma)). Note mu/sigma parameterize the
     * underlying normal, matching std::lognormal_distribution.
     */
    double lognormal(double mu, double sigma);

    /** True with probability p. */
    bool bernoulli(double p);

    /**
     * Split off an independent child generator. Used to give each
     * subsystem its own stream so adding draws in one subsystem does not
     * perturb another.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace ad

#endif // AD_COMMON_RANDOM_HH
