/**
 * @file
 * Latency statistics used throughout the reproduction. The paper's
 * predictability constraint (Section 2.4.2) mandates evaluating
 * autonomous-driving systems by tail latency (99th-, 99.99th-percentile)
 * rather than mean latency; LatencyRecorder computes exact quantiles over
 * recorded samples, and LatencySummary carries the standard set the paper
 * reports (mean, p50, p95, p99, p99.99, worst case).
 */

#ifndef AD_COMMON_STATS_HH
#define AD_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ad {

/** The quantile summary the paper reports for every experiment. */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p9999 = 0.0; ///< 99.99th percentile, the paper's tail metric.
    double worst = 0.0;
    double best = 0.0;

    /** One-line human-readable rendering (values in the stored unit). */
    std::string toString(const std::string& unit = "ms") const;
};

/**
 * Accumulates latency samples and computes exact empirical quantiles.
 *
 * Samples are stored (not sketched): figure-regeneration runs record at
 * most a few hundred thousand samples, where exactness matters more than
 * memory. Quantiles use the nearest-rank definition on the sorted sample,
 * matching how the paper reports measured percentiles.
 */
class LatencyRecorder
{
  public:
    LatencyRecorder() = default;

    /** Pre-allocate for n samples. */
    explicit LatencyRecorder(std::size_t expected);

    /** Record one sample (any unit; the recorder is unit-agnostic). */
    void record(double value);

    /** Merge all samples from another recorder. */
    void merge(const LatencyRecorder& other);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    /** True if no samples have been recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /**
     * Exact empirical quantile via nearest-rank on the sorted samples.
     * @param q quantile in [0, 1]; e.g.\ 0.9999 for the paper's tail.
     */
    double percentile(double q) const;

    /** Largest recorded sample; 0 when empty. */
    double worst() const;

    /** Smallest recorded sample; 0 when empty. */
    double best() const;

    /** Compute the full summary in one pass over the sorted samples. */
    LatencySummary summary() const;

    /**
     * summary() guarded for the empty case: nullopt when no samples
     * have been recorded, so report writers can distinguish "all
     * quantiles are zero" from "this stage never ran" instead of
     * printing a misleading n=0 row of zeros.
     */
    std::optional<LatencySummary> summaryIfAny() const;

    /** Drop all samples. */
    void clear();

    /** Read-only access to the raw samples (unsorted, insertion order). */
    const std::vector<double>& samples() const { return samples_; }

  private:
    /** Sort the scratch copy if new samples arrived since the last sort. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/**
 * Fixed-capacity rolling-window quantile recorder for SLO accounting.
 *
 * Keeps the last `capacity` samples in a preallocated ring and
 * computes nearest-rank quantiles over the window with nth_element on
 * a preallocated scratch buffer, so record() and percentile() never
 * allocate after construction -- safe on the serving hot path.
 *
 * A quantile is only *resolvable* when the window holds enough
 * samples for its nearest rank to be distinguishable from the
 * maximum: ceil(1 / (1 - q)) samples (p99 needs 100, p99.9 needs
 * 1000). Below that, percentile() returns kInsufficientSamples
 * instead of an arbitrary high sample masquerading as a tail --
 * reporting a p99.9 off 50 samples would be noise presented as
 * signal.
 */
class WindowedLatencyRecorder
{
  public:
    /** Returned by percentile() when the window cannot resolve q. */
    static constexpr double kInsufficientSamples = -1.0;

    /** @param capacity window size in samples (>= 1). */
    explicit WindowedLatencyRecorder(std::size_t capacity);

    /** Record one sample, evicting the oldest when full. */
    void record(double value);

    /** Window capacity fixed at construction. */
    std::size_t capacity() const { return ring_.size(); }

    /** Samples currently in the window (<= capacity). */
    std::size_t count() const;

    /** Lifetime samples recorded (including evicted ones). */
    std::uint64_t totalRecorded() const { return total_; }

    /** Samples needed before quantile q is resolvable. */
    static std::size_t minSamplesFor(double q);

    /** True when the window can resolve quantile q. */
    bool resolvable(double q) const;

    /**
     * Nearest-rank quantile over the current window, consistent with
     * LatencyRecorder::percentile; kInsufficientSamples when the
     * window holds fewer than minSamplesFor(q) samples.
     */
    double percentile(double q) const;

    /** Mean over the current window; 0 when empty. */
    double mean() const;

    /** Largest sample in the window; 0 when empty. */
    double worst() const;

    /** Window samples strictly greater than `threshold`. */
    std::size_t countAbove(double threshold) const;

    /** Forget all samples (capacity is retained). */
    void clear();

  private:
    std::vector<double> ring_;
    mutable std::vector<double> scratch_;
    std::uint64_t total_ = 0;
};

/**
 * Online mean/variance accumulator (Welford) for cheap streaming stats
 * where full quantiles are not needed (e.g.\ per-layer profiling).
 */
class RunningStat
{
  public:
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

} // namespace ad

#endif // AD_COMMON_STATS_HH
