#include "common/thread_pool.hh"

#include <exception>
#include <utility>

#include "common/logging.hh"

namespace ad {

namespace {

/// Set for the duration of workerLoop on pool worker threads.
thread_local bool tlsInsideWorker = false;

} // namespace

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto& t : threads_)
        if (t.joinable())
            t.join();
}

bool
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            warn("ThreadPool: task submitted after shutdown; dropped");
            return false;
        }
        queue_.push_back(std::move(task));
        if (queue_.size() > peakQueue_.load(std::memory_order_relaxed))
            peakQueue_.store(queue_.size(), std::memory_order_relaxed);
    }
    taskReady_.notify_one();
    return true;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    tlsInsideWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_ && queue_.empty())
                break;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        // A throwing task must not unwind out of the worker (that would
        // std::terminate) nor skip the active count bookkeeping below
        // (that would deadlock every waitIdle forever after).
        try {
            task();
        } catch (const std::exception& e) {
            failedTasks_.fetch_add(1, std::memory_order_relaxed);
            warn("ThreadPool: task threw: ", e.what());
        } catch (...) {
            failedTasks_.fetch_add(1, std::memory_order_relaxed);
            warn("ThreadPool: task threw a non-std exception");
        }
        executedTasks_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
    tlsInsideWorker = false;
}

} // namespace ad
