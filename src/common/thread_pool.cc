#include "common/thread_pool.hh"

#include <utility>

namespace ad {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    taskReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace ad
