#include "common/geometry.hh"

#include <algorithm>
#include <sstream>

namespace ad {

Vec2
Vec2::normalized() const
{
    const double n = norm();
    if (n <= 0.0)
        return {0.0, 0.0};
    return {x / n, y / n};
}

Vec2
Vec2::rotated(double angle) const
{
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
}

double
wrapAngle(double angle)
{
    while (angle > M_PI)
        angle -= 2.0 * M_PI;
    while (angle <= -M_PI)
        angle += 2.0 * M_PI;
    return angle;
}

Vec2
Pose2::transform(const Vec2& local) const
{
    return pos + local.rotated(theta);
}

Vec2
Pose2::inverseTransform(const Vec2& world) const
{
    return (world - pos).rotated(-theta);
}

Pose2
Pose2::compose(const Pose2& other) const
{
    return Pose2(transform(other.pos), wrapAngle(theta + other.theta));
}

Pose2
Pose2::inverse() const
{
    const Vec2 p = (Vec2{0, 0} - pos).rotated(-theta);
    return Pose2(p, wrapAngle(-theta));
}

double
Pose2::distanceTo(const Pose2& other) const
{
    return (pos - other.pos).norm();
}

std::string
Pose2::toString() const
{
    std::ostringstream oss;
    oss << "(" << pos.x << ", " << pos.y << ", " << theta << " rad)";
    return oss.str();
}

BBox
BBox::fromCenter(double cx, double cy, double w, double h)
{
    return BBox(cx - w / 2, cy - h / 2, w, h);
}

bool
BBox::contains(double px, double py) const
{
    return px >= x && px < x + w && py >= y && py < y + h;
}

BBox
BBox::intersect(const BBox& o) const
{
    const double ix = std::max(x, o.x);
    const double iy = std::max(y, o.y);
    const double ix2 = std::min(xmax(), o.xmax());
    const double iy2 = std::min(ymax(), o.ymax());
    return BBox(ix, iy, ix2 - ix, iy2 - iy);
}

double
BBox::iou(const BBox& o) const
{
    const double inter = intersect(o).area();
    const double uni = area() + o.area() - inter;
    if (uni <= 0.0)
        return 0.0;
    return inter / uni;
}

BBox
BBox::inflated(double margin) const
{
    return BBox(x - margin, y - margin, w + 2 * margin, h + 2 * margin);
}

BBox
BBox::clipped(double width, double height) const
{
    const double nx = std::clamp(x, 0.0, width);
    const double ny = std::clamp(y, 0.0, height);
    const double nx2 = std::clamp(xmax(), 0.0, width);
    const double ny2 = std::clamp(ymax(), 0.0, height);
    return BBox(nx, ny, nx2 - nx, ny2 - ny);
}

std::string
BBox::toString() const
{
    std::ostringstream oss;
    oss << "[" << x << ", " << y << "; " << w << " x " << h << "]";
    return oss.str();
}

} // namespace ad
