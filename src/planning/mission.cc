#include "planning/mission.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/logging.hh"

namespace ad::planning {

int
RoadGraph::addNode(const Vec2& pos)
{
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back({id, pos});
    adjacency_.emplace_back();
    return id;
}

void
RoadGraph::addEdge(int from, int to, double speedLimit, double length)
{
    if (from < 0 || to < 0 ||
        from >= static_cast<int>(nodes_.size()) ||
        to >= static_cast<int>(nodes_.size()))
        panic("RoadGraph::addEdge: bad node id ", from, " -> ", to);
    RoadEdge e;
    e.from = from;
    e.to = to;
    e.speedLimit = speedLimit;
    e.length = length > 0 ? length
                          : (nodes_[to].pos - nodes_[from].pos).norm();
    adjacency_[from].push_back(e);
}

void
RoadGraph::addBidirectional(int a, int b, double speedLimit)
{
    addEdge(a, b, speedLimit);
    addEdge(b, a, speedLimit);
}

int
RoadGraph::nearestNode(const Vec2& pos) const
{
    int best = -1;
    double bestDist = std::numeric_limits<double>::max();
    for (const auto& n : nodes_) {
        const double d = (n.pos - pos).squaredNorm();
        if (d < bestDist) {
            bestDist = d;
            best = n.id;
        }
    }
    return best;
}

MissionPlanner::MissionPlanner(const RoadGraph* graph,
                               const MissionParams& params)
    : graph_(graph), params_(params)
{
    if (!graph)
        fatal("MissionPlanner: graph must be non-null");
}

Route
MissionPlanner::dijkstra(int src, int dst) const
{
    const auto n = graph_->nodeCount();
    std::vector<double> dist(n, std::numeric_limits<double>::max());
    std::vector<int> prev(n, -1);
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        open;
    dist[src] = 0;
    open.push({0.0, src});
    while (!open.empty()) {
        const auto [d, u] = open.top();
        open.pop();
        if (d > dist[u])
            continue;
        if (u == dst)
            break;
        for (const auto& e : graph_->edgesFrom(u)) {
            // Rule-based cost: travel time at the limit plus a turn
            // penalty whenever the route changes direction.
            double cost = e.length / e.speedLimit;
            if (prev[u] >= 0) {
                const Vec2 inDir =
                    (graph_->node(u).pos - graph_->node(prev[u]).pos)
                        .normalized();
                const Vec2 outDir =
                    (graph_->node(e.to).pos - graph_->node(u).pos)
                        .normalized();
                if (inDir.dot(outDir) < 0.7)
                    cost += params_.turnPenalty;
            }
            if (dist[u] + cost < dist[e.to]) {
                dist[e.to] = dist[u] + cost;
                prev[e.to] = u;
                open.push({dist[e.to], e.to});
            }
        }
    }

    Route route;
    if (dist[dst] == std::numeric_limits<double>::max())
        return route;
    route.travelTime = dist[dst];
    for (int v = dst; v != -1; v = prev[v])
        route.nodeIds.push_back(v);
    std::reverse(route.nodeIds.begin(), route.nodeIds.end());
    return route;
}

Route
MissionPlanner::plan(const Vec2& from, const Vec2& to)
{
    const int src = graph_->nearestNode(from);
    const int dst = graph_->nearestNode(to);
    if (src < 0 || dst < 0)
        fatal("MissionPlanner::plan: empty road graph");
    route_ = dijkstra(src, dst);
    destination_ = to;
    hasRoute_ = !route_.empty();
    return route_;
}

double
MissionPlanner::distanceToRoute(const Vec2& pos) const
{
    if (!hasRoute_ || route_.nodeIds.size() < 2)
        return hasRoute_ && !route_.nodeIds.empty()
                   ? (graph_->node(route_.nodeIds[0]).pos - pos).norm()
                   : std::numeric_limits<double>::max();
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 1; i < route_.nodeIds.size(); ++i) {
        const Vec2 a = graph_->node(route_.nodeIds[i - 1]).pos;
        const Vec2 b = graph_->node(route_.nodeIds[i]).pos;
        const Vec2 ab = b - a;
        const double len2 = ab.squaredNorm();
        double t = len2 > 0 ? (pos - a).dot(ab) / len2 : 0.0;
        t = std::clamp(t, 0.0, 1.0);
        best = std::min(best, (pos - (a + ab * t)).norm());
    }
    return best;
}

bool
MissionPlanner::checkDeviation(const Vec2& pos)
{
    if (!hasRoute_)
        return false;
    if (distanceToRoute(pos) <= params_.deviationThreshold)
        return false;
    ++replanCount_;
    plan(pos, destination_);
    return true;
}

} // namespace ad::planning
