#include "planning/trajectory.hh"

#include <algorithm>
#include <limits>

namespace ad::planning {

double
Trajectory::length() const
{
    double total = 0;
    for (std::size_t i = 1; i < points.size(); ++i)
        total += (points[i].pos - points[i - 1].pos).norm();
    return total;
}

std::size_t
Trajectory::closestIndex(const Vec2& pos) const
{
    std::size_t best = 0;
    double bestDist = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double d = (points[i].pos - pos).squaredNorm();
        if (d < bestDist) {
            bestDist = d;
            best = i;
        }
    }
    return best;
}

double
Trajectory::distanceTo(const Vec2& pos) const
{
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 1; i < points.size(); ++i) {
        const Vec2 a = points[i - 1].pos;
        const Vec2 b = points[i].pos;
        const Vec2 ab = b - a;
        const double len2 = ab.squaredNorm();
        double t = len2 > 0 ? (pos - a).dot(ab) / len2 : 0.0;
        t = std::clamp(t, 0.0, 1.0);
        const Vec2 proj = a + ab * t;
        best = std::min(best, (pos - proj).norm());
    }
    if (points.size() == 1)
        best = (points[0].pos - pos).norm();
    return best;
}

} // namespace ad::planning
