#include "planning/lattice.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace ad::planning {

namespace {

/** Discretized search state. */
struct Key
{
    std::int32_t x;
    std::int32_t y;
    std::int32_t h;

    bool operator==(const Key&) const = default;
};

struct KeyHash
{
    std::size_t
    operator()(const Key& k) const
    {
        std::size_t h = static_cast<std::uint32_t>(k.x) * 73856093u;
        h ^= static_cast<std::uint32_t>(k.y) * 19349663u;
        h ^= static_cast<std::uint32_t>(k.h) * 83492791u;
        return h;
    }
};

struct Node
{
    Pose2 pose;
    double g = 0;       ///< cost so far.
    double f = 0;       ///< g + heuristic.
    Key parent{0, 0, -1};
    bool hasParent = false;
};

struct QueueEntry
{
    double f;
    Key key;
    bool operator>(const QueueEntry& o) const { return f > o.f; }
};

bool
collides(const Vec2& pos, const std::vector<Obstacle>& obstacles,
         double margin)
{
    for (const auto& o : obstacles) {
        const double r = o.radius + margin;
        if ((pos - o.pos).squaredNorm() < r * r)
            return true;
    }
    return false;
}

} // namespace

Trajectory
planLattice(const Pose2& start, const Vec2& goal,
            const std::vector<Obstacle>& obstacles,
            const LatticeParams& params, LatticeStats* stats)
{
    Trajectory result;
    LatticeStats localStats;

    const double headingStep = 2.0 * M_PI / params.headingBins;
    const auto keyOf = [&](const Pose2& p) {
        const int hb = static_cast<int>(
            std::lround(wrapAngle(p.theta) / headingStep));
        return Key{
            static_cast<std::int32_t>(std::floor(p.pos.x /
                                                 params.cellSize)),
            static_cast<std::int32_t>(std::floor(p.pos.y /
                                                 params.cellSize)),
            static_cast<std::int32_t>((hb % params.headingBins +
                                       params.headingBins) %
                                      params.headingBins)};
    };
    const auto heuristic = [&](const Vec2& p) {
        return (goal - p).norm();
    };

    std::unordered_map<Key, Node, KeyHash> nodes;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>> open;

    const Key startKey = keyOf(start);
    nodes[startKey] = {start, 0.0, heuristic(start.pos), {}, false};
    open.push({heuristic(start.pos), startKey});

    // Motion primitives: straight, gentle left, gentle right -- each
    // advancing stepLength of arc while turning one heading bin.
    const double turn = headingStep;
    Key goalKey{0, 0, -1};
    bool found = false;

    while (!open.empty() &&
           localStats.expansions < params.maxExpansions) {
        const QueueEntry top = open.top();
        open.pop();
        const auto it = nodes.find(top.key);
        if (it == nodes.end() || top.f > it->second.f + 1e-9)
            continue; // stale entry
        const Node current = it->second;
        ++localStats.expansions;

        if ((current.pose.pos - goal).norm() <= params.goalTolerance) {
            found = true;
            goalKey = top.key;
            localStats.cost = current.g;
            break;
        }

        for (const double dTheta : {0.0, turn, -turn}) {
            const double newTheta =
                wrapAngle(current.pose.theta + dTheta);
            // Integrate the primitive in two half steps for a smoother
            // arc approximation.
            const double midTheta =
                wrapAngle(current.pose.theta + dTheta / 2);
            Vec2 pos = current.pose.pos;
            pos += Vec2{std::cos(midTheta), std::sin(midTheta)} *
                   (params.stepLength / 2);
            if (collides(pos, obstacles, params.obstacleMargin))
                continue;
            pos += Vec2{std::cos(newTheta), std::sin(newTheta)} *
                   (params.stepLength / 2);
            if (collides(pos, obstacles, params.obstacleMargin))
                continue;

            const Pose2 next(pos, newTheta);
            const double cost = current.g + params.stepLength +
                (dTheta != 0.0 ? params.turnPenalty : 0.0);
            const Key key = keyOf(next);
            const auto existing = nodes.find(key);
            if (existing != nodes.end() && existing->second.g <= cost)
                continue;
            Node node;
            node.pose = next;
            node.g = cost;
            node.f = cost + heuristic(pos);
            node.parent = top.key;
            node.hasParent = true;
            nodes[key] = node;
            open.push({node.f, key});
        }
    }

    localStats.found = found;
    if (stats)
        *stats = localStats;
    if (!found)
        return result;

    // Reconstruct the path.
    std::vector<Pose2> poses;
    Key k = goalKey;
    for (;;) {
        const Node& n = nodes[k];
        poses.push_back(n.pose);
        if (!n.hasParent)
            break;
        k = n.parent;
    }
    std::reverse(poses.begin(), poses.end());

    double t = 0;
    for (std::size_t i = 0; i < poses.size(); ++i) {
        if (i > 0)
            t += params.stepLength / std::max(0.1, params.cruiseSpeed);
        result.points.push_back({poses[i].pos, poses[i].theta,
                                 params.cruiseSpeed, t});
    }
    return result;
}

} // namespace ad::planning
