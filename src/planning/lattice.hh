/**
 * @file
 * State-lattice A* motion planner for unstructured areas. Following the
 * paper's motion-planning engine (Section 3.1.5 / Autoware), a
 * graph-search-based approach finds the minimum-cost path in a state
 * lattice when the vehicle is in a large opening area such as a parking
 * lot or rural area (Pivtoraiko et al.).
 *
 * States are (x, y, heading-bin) nodes; edges are kinematically
 * feasible motion primitives (straight, left arc, right arc); obstacles
 * are inflated discs.
 */

#ifndef AD_PLANNING_LATTICE_HH
#define AD_PLANNING_LATTICE_HH

#include <vector>

#include "common/geometry.hh"
#include "planning/trajectory.hh"

namespace ad::planning {

/** A disc obstacle in world coordinates. */
struct Obstacle
{
    Vec2 pos;
    double radius = 1.0;
};

/** Lattice planner knobs. */
struct LatticeParams
{
    double cellSize = 1.0;        ///< spatial resolution (m).
    int headingBins = 8;
    double stepLength = 2.0;      ///< primitive arc length (m).
    double turnPenalty = 0.5;     ///< extra cost per heading change.
    double obstacleMargin = 0.5;  ///< inflation added to radii (m).
    double goalTolerance = 1.5;   ///< accept radius around goal (m).
    int maxExpansions = 200000;   ///< search budget.
    double cruiseSpeed = 3.0;     ///< m/s assigned to the result.
};

/** Search statistics for benches/tests. */
struct LatticeStats
{
    int expansions = 0;
    bool found = false;
    double cost = 0.0;
};

/**
 * Plan a path from start to goal through the obstacle field.
 *
 * @param start start pose.
 * @param goal goal position (heading free).
 * @param obstacles inflated-disc obstacles.
 * @param params knobs.
 * @param stats optional search statistics.
 * @return empty trajectory when no path exists within the budget.
 */
Trajectory planLattice(const Pose2& start, const Vec2& goal,
                       const std::vector<Obstacle>& obstacles,
                       const LatticeParams& params = {},
                       LatticeStats* stats = nullptr);

} // namespace ad::planning

#endif // AD_PLANNING_LATTICE_HH
