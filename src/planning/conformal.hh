/**
 * @file
 * Conformal spatiotemporal lattice planner for structured roads
 * (Section 3.1.5 of the paper / McNaughton et al.): candidate paths are
 * laid out *conformal* to the lane centerline -- stations along the
 * road, lateral offsets across it -- and evaluated spatio-temporally
 * against predicted obstacle motion, so a slower lead vehicle induces a
 * lane change or a speed reduction rather than a collision.
 */

#ifndef AD_PLANNING_CONFORMAL_HH
#define AD_PLANNING_CONFORMAL_HH

#include <vector>

#include "common/geometry.hh"
#include "planning/trajectory.hh"

namespace ad::planning {

/** A moving obstacle with a constant-velocity prediction. */
struct PredictedObstacle
{
    Vec2 pos;
    Vec2 velocity;
    double radius = 1.5;
};

/** Conformal lattice knobs. */
struct ConformalParams
{
    double stationSpacing = 5.0;  ///< longitudinal step (m).
    int stations = 10;            ///< planning horizon in steps.
    int lateralSamples = 7;       ///< offsets across the corridor.
    double corridorHalfWidth = 3.5; ///< max |offset| from centerline.
    double offsetWeight = 0.3;    ///< stay-near-centerline cost.
    double smoothWeight = 2.0;    ///< lateral-change cost.
    double obstacleWeight = 30.0; ///< proximity cost scale.
    double safeDistance = 3.0;    ///< distance at which cost vanishes.
    double collisionDistance = 1.2; ///< hard-blocked distance.
    double cruiseSpeed = 25.0;    ///< desired speed (m/s).
    /**
     * Longitudinal adaptation (car following): cap each station's
     * commanded speed by the time-headway law v = gap / headway
     * against the nearest leading obstacle in the chosen corridor, so
     * the vehicle slows behind a lead it cannot (cheaply) pass
     * instead of tailgating at cruise speed.
     */
    bool adaptSpeed = true;
    double timeHeadway = 1.5;     ///< seconds of following gap.
    double standoffGap = 5.0;     ///< bumper-to-bumper floor (m).
};

/** Planner diagnostics. */
struct ConformalStats
{
    double cost = 0.0;
    bool blocked = false;  ///< every corridor cell was in collision.
    double minClearance = 1e9;
    /**
     * Cruise-speed factor of the accepted plan. 1.0 means full-speed
     * station timing worked; smaller values mean the temporal
     * dimension of the lattice had to act -- the corridor only opens
     * if the vehicle travels slower (e.g.\ behind a traffic cluster).
     */
    double speedFactor = 1.0;
};

/**
 * Plan a trajectory conformal to a straight lane centerline.
 *
 * The centerline is the line y = centerY in world coordinates starting
 * at startX (matching the synthetic road, which runs along +x); the
 * planner emits stations at cruiseSpeed timing and picks the
 * minimum-cost lateral offset profile by dynamic programming.
 *
 * @param start ego pose (projected onto the corridor).
 * @param centerY lane-centerline y.
 * @param obstacles predicted obstacle motions.
 * @param params knobs.
 * @param stats optional diagnostics.
 */
Trajectory planConformal(const Pose2& start, double centerY,
                         const std::vector<PredictedObstacle>& obstacles,
                         const ConformalParams& params = {},
                         ConformalStats* stats = nullptr);

} // namespace ad::planning

#endif // AD_PLANNING_CONFORMAL_HH
