/**
 * @file
 * The mission-planning engine (MISPLAN, Section 3.1.6): a rule-based
 * router over a road-network graph, following the Autoware policy the
 * paper adopts. The route is computed once at the start of a drive and
 * recomputed *only when the vehicle deviates from the planned route*,
 * which is why the paper excludes MISPLAN from the per-frame latency
 * characterization.
 */

#ifndef AD_PLANNING_MISSION_HH
#define AD_PLANNING_MISSION_HH

#include <string>
#include <vector>

#include "common/geometry.hh"

namespace ad::planning {

/** Road-network node (an intersection or waypoint). */
struct RoadNode
{
    int id = 0;
    Vec2 pos;
};

/** Directed road-network edge. */
struct RoadEdge
{
    int from = 0;
    int to = 0;
    double length = 0.0;     ///< meters.
    double speedLimit = 13.9; ///< m/s (50 km/h default).
};

/** A road network graph. */
class RoadGraph
{
  public:
    /** Add a node at a position; returns its id. */
    int addNode(const Vec2& pos);

    /** Add a directed edge; length defaults to the node distance. */
    void addEdge(int from, int to, double speedLimit = 13.9,
                 double length = -1.0);

    /** Add edges in both directions. */
    void addBidirectional(int a, int b, double speedLimit = 13.9);

    std::size_t nodeCount() const { return nodes_.size(); }
    const RoadNode& node(int id) const { return nodes_[id]; }
    const std::vector<RoadEdge>& edgesFrom(int id) const
    {
        return adjacency_[id];
    }

    /** Nearest node to a position. */
    int nearestNode(const Vec2& pos) const;

  private:
    std::vector<RoadNode> nodes_;
    std::vector<std::vector<RoadEdge>> adjacency_;
};

/** A routed path through the graph. */
struct Route
{
    std::vector<int> nodeIds;
    double travelTime = 0.0; ///< seconds at the speed limits.

    bool empty() const { return nodeIds.empty(); }
};

/** Mission-planner knobs. */
struct MissionParams
{
    double deviationThreshold = 8.0; ///< meters off-route -> replan.
    double turnPenalty = 5.0;        ///< rule-based turn discouragement
                                     ///  (seconds added per turn).
};

/**
 * Rule-based mission planner: time-optimal routing (Dijkstra over
 * travel time plus turn penalties) with deviation-triggered replans.
 */
class MissionPlanner
{
  public:
    MissionPlanner(const RoadGraph* graph,
                   const MissionParams& params = {});

    /** Plan a route between the nodes nearest the given positions. */
    Route plan(const Vec2& from, const Vec2& to);

    /**
     * Per-frame check (step 4 of Figure 1): returns true (and replans
     * from the current position) iff the vehicle strayed more than the
     * deviation threshold from the current route.
     */
    bool checkDeviation(const Vec2& pos);

    const Route& route() const { return route_; }

    /** Replans performed since construction (excluding the first). */
    int replanCount() const { return replanCount_; }

    /** Distance from a position to the current route polyline. */
    double distanceToRoute(const Vec2& pos) const;

  private:
    Route dijkstra(int src, int dst) const;

    const RoadGraph* graph_;
    MissionParams params_;
    Route route_;
    Vec2 destination_;
    bool hasRoute_ = false;
    int replanCount_ = 0;
};

} // namespace ad::planning

#endif // AD_PLANNING_MISSION_HH
