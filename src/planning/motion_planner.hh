/**
 * @file
 * Motion-planning facade (MOTPLAN, Section 3.1.5): the paper's system
 * "leverages a graph-search based approach ... in space lattices when
 * the vehicle is in a large opening area like parking lot or rural
 * area" and "conformal lattices with spatial and temporal information"
 * in structured areas. This facade selects between the two planners
 * based on the declared driving area and presents one interface to
 * the pipeline.
 */

#ifndef AD_PLANNING_MOTION_PLANNER_HH
#define AD_PLANNING_MOTION_PLANNER_HH

#include "planning/conformal.hh"
#include "planning/lattice.hh"

namespace ad::planning {

/** The kind of area the vehicle is operating in. */
enum class DrivingArea
{
    Structured,  ///< lanes and traffic: conformal lattice.
    OpenArea,    ///< parking lot / rural: state-lattice search.
};

/** Facade parameters. */
struct MotionPlannerParams
{
    ConformalParams conformal;
    LatticeParams lattice;
    double laneCenterY = 5.25; ///< structured-corridor centerline.
};

/** Unified planning request. */
struct MotionRequest
{
    Pose2 start;
    DrivingArea area = DrivingArea::Structured;
    Vec2 goal;  ///< only used in open areas.
    std::vector<PredictedObstacle> obstacles;
};

/** Unified planning result. */
struct MotionResult
{
    Trajectory trajectory;
    DrivingArea areaUsed = DrivingArea::Structured;
    bool feasible = false;
    double costOrExpansions = 0; ///< planner-specific diagnostic.
};

/** The MOTPLAN engine facade. */
class MotionPlanner
{
  public:
    explicit MotionPlanner(const MotionPlannerParams& params = {});

    /** Plan a trajectory for the request. */
    MotionResult plan(const MotionRequest& request) const;

    const MotionPlannerParams& params() const { return params_; }

  private:
    MotionPlannerParams params_;
};

} // namespace ad::planning

#endif // AD_PLANNING_MOTION_PLANNER_HH
