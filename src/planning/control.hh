/**
 * @file
 * Vehicle control (step 5 of Figure 1): the engine that "simply follows
 * the planned paths and trajectories by operating the vehicle". Pure
 * pursuit for steering, a PI controller for speed, and a kinematic
 * bicycle model to integrate the ego state in simulation.
 */

#ifndef AD_PLANNING_CONTROL_HH
#define AD_PLANNING_CONTROL_HH

#include "common/geometry.hh"
#include "planning/trajectory.hh"

namespace ad::planning {

/** Ego vehicle kinematic state. */
struct VehicleState
{
    Pose2 pose;
    double speed = 0.0; ///< m/s.
};

/** Control outputs. */
struct ControlCommand
{
    double steering = 0.0;     ///< front-wheel angle (rad).
    double acceleration = 0.0; ///< m/s^2.
};

/** Controller knobs. */
struct ControlParams
{
    double wheelbase = 2.7;      ///< meters.
    double lookaheadBase = 4.0;  ///< minimum lookahead (m).
    double lookaheadGain = 0.5;  ///< lookahead per m/s of speed.
    double maxSteering = 0.5;    ///< rad.
    double speedKp = 1.2;
    double speedKi = 0.1;
    double maxAccel = 3.0;       ///< m/s^2.
    double maxBrake = 6.0;       ///< m/s^2.
};

/** Pure-pursuit steering + PI speed controller. */
class VehicleController
{
  public:
    explicit VehicleController(const ControlParams& params = {});

    /**
     * Compute the command following the trajectory from the current
     * state.
     */
    ControlCommand control(const VehicleState& state,
                           const Trajectory& trajectory, double dt);

    /** Reset the integral state (e.g.\ on a new trajectory). */
    void reset() { integral_ = 0; }

    const ControlParams& params() const { return params_; }

  private:
    ControlParams params_;
    double integral_ = 0.0;
};

/** Integrate the kinematic bicycle model one step. */
VehicleState stepBicycleModel(const VehicleState& state,
                              const ControlCommand& cmd, double dt,
                              double wheelbase = 2.7);

} // namespace ad::planning

#endif // AD_PLANNING_CONTROL_HH
