/**
 * @file
 * Trajectory types shared by the motion planners and the vehicle
 * controller.
 */

#ifndef AD_PLANNING_TRAJECTORY_HH
#define AD_PLANNING_TRAJECTORY_HH

#include <vector>

#include "common/geometry.hh"

namespace ad::planning {

/** One sample along a planned trajectory. */
struct TrajPoint
{
    Vec2 pos;
    double heading = 0.0; ///< radians.
    double speed = 0.0;   ///< m/s commanded at this point.
    double time = 0.0;    ///< seconds from plan start.
};

/** A time-parameterized path. */
struct Trajectory
{
    std::vector<TrajPoint> points;

    bool empty() const { return points.empty(); }

    /** Total arc length (sum of segment lengths). */
    double length() const;

    /** Closest point index to a position. */
    std::size_t closestIndex(const Vec2& pos) const;

    /** Lateral distance from a position to the polyline. */
    double distanceTo(const Vec2& pos) const;
};

} // namespace ad::planning

#endif // AD_PLANNING_TRAJECTORY_HH
