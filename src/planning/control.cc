#include "planning/control.hh"

#include <algorithm>
#include <cmath>

namespace ad::planning {

VehicleController::VehicleController(const ControlParams& params)
    : params_(params)
{
}

ControlCommand
VehicleController::control(const VehicleState& state,
                           const Trajectory& trajectory, double dt)
{
    ControlCommand cmd;
    if (trajectory.empty())
        return cmd;

    // --- Pure pursuit: chase a lookahead point along the path. ---
    const double lookahead =
        params_.lookaheadBase + params_.lookaheadGain * state.speed;
    const std::size_t nearest =
        trajectory.closestIndex(state.pose.pos);
    std::size_t target = nearest;
    double walked = 0;
    while (target + 1 < trajectory.points.size() && walked < lookahead) {
        walked += (trajectory.points[target + 1].pos -
                   trajectory.points[target].pos).norm();
        ++target;
    }
    const Vec2 local = state.pose.inverseTransform(
        trajectory.points[target].pos);
    const double d2 = local.squaredNorm();
    if (d2 > 1e-6 && local.x > 0) {
        // Pure-pursuit curvature: 2*y / L^2.
        const double curvature = 2.0 * local.y / d2;
        cmd.steering = std::clamp(
            std::atan(curvature * params_.wheelbase),
            -params_.maxSteering, params_.maxSteering);
    }

    // --- PI speed control toward the trajectory's commanded speed,
    // limited near the end of the path so the vehicle stops at the
    // final point instead of sailing past it. ---
    double remaining = (trajectory.points[target].pos -
                        state.pose.pos).norm();
    for (std::size_t i = target + 1; i < trajectory.points.size(); ++i)
        remaining += (trajectory.points[i].pos -
                      trajectory.points[i - 1].pos).norm();
    constexpr double comfortBrake = 2.0; // m/s^2
    const double endSpeedLimit =
        std::sqrt(2.0 * comfortBrake * std::max(0.0, remaining));
    double targetSpeed =
        std::min(trajectory.points[target].speed, endSpeedLimit);
    if (local.x <= 0)
        targetSpeed = 0.0; // path end is behind us: stop
    const double error = targetSpeed - state.speed;
    integral_ = std::clamp(integral_ + error * dt, -5.0, 5.0);
    cmd.acceleration = std::clamp(
        params_.speedKp * error + params_.speedKi * integral_,
        -params_.maxBrake, params_.maxAccel);
    return cmd;
}

VehicleState
stepBicycleModel(const VehicleState& state, const ControlCommand& cmd,
                 double dt, double wheelbase)
{
    VehicleState next = state;
    next.speed = std::max(0.0, state.speed + cmd.acceleration * dt);
    const double yawRate =
        next.speed * std::tan(cmd.steering) / wheelbase;
    next.pose.theta = wrapAngle(state.pose.theta + yawRate * dt);
    next.pose.pos += Vec2{std::cos(next.pose.theta),
                          std::sin(next.pose.theta)} * (next.speed * dt);
    return next;
}

} // namespace ad::planning
