#include "planning/conformal.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ad::planning {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

namespace {

/** One planning attempt at a fixed cruise speed (station timing). */
Trajectory
planConformalOnce(const Pose2& start, double centerY,
                  const std::vector<PredictedObstacle>& obstacles,
                  const ConformalParams& params, ConformalStats* stats)
{
    const int s = params.stations;
    const int l = params.lateralSamples;
    const double dt = params.stationSpacing /
                      std::max(1.0, params.cruiseSpeed);

    ConformalStats localStats;

    // Lateral offset of each sample row.
    std::vector<double> offsets(l);
    for (int j = 0; j < l; ++j)
        offsets[j] = -params.corridorHalfWidth +
            2.0 * params.corridorHalfWidth * j / (l - 1);

    // Node cost: offset preference + spatiotemporal obstacle cost.
    const auto nodeCost = [&](int station, int lat) {
        const double t = (station + 1) * dt;
        const Vec2 pos{start.pos.x + (station + 1) * params.stationSpacing,
                       centerY + offsets[lat]};
        double cost = params.offsetWeight * offsets[lat] * offsets[lat];
        for (const auto& o : obstacles) {
            const Vec2 predicted = o.pos + o.velocity * t;
            const double clearance =
                (pos - predicted).norm() - o.radius;
            localStats.minClearance =
                std::min(localStats.minClearance, clearance);
            if (clearance < params.collisionDistance)
                return kInf;
            if (clearance < params.safeDistance) {
                const double x = (params.safeDistance - clearance) /
                                 params.safeDistance;
                cost += params.obstacleWeight * x * x;
            }
        }
        return cost;
    };

    // DP over stations.
    std::vector<std::vector<double>> best(
        s, std::vector<double>(l, kInf));
    std::vector<std::vector<int>> from(s, std::vector<int>(l, -1));

    const double startOffset = start.pos.y - centerY;
    for (int j = 0; j < l; ++j) {
        const double c = nodeCost(0, j);
        if (c == kInf)
            continue;
        const double d = offsets[j] - startOffset;
        best[0][j] = c + params.smoothWeight * d * d;
        from[0][j] = j;
    }
    for (int i = 1; i < s; ++i) {
        for (int j = 0; j < l; ++j) {
            const double c = nodeCost(i, j);
            if (c == kInf)
                continue;
            for (int k = 0; k < l; ++k) {
                if (best[i - 1][k] == kInf)
                    continue;
                const double d = offsets[j] - offsets[k];
                const double total =
                    best[i - 1][k] + c + params.smoothWeight * d * d;
                if (total < best[i][j]) {
                    best[i][j] = total;
                    from[i][j] = k;
                }
            }
        }
    }

    // Pick the cheapest terminal node.
    int bestEnd = -1;
    double bestCost = kInf;
    for (int j = 0; j < l; ++j) {
        if (best[s - 1][j] < bestCost) {
            bestCost = best[s - 1][j];
            bestEnd = j;
        }
    }

    Trajectory result;
    if (bestEnd < 0) {
        // Fully blocked corridor: emit an emergency-stop trajectory in
        // the current lane.
        localStats.blocked = true;
        if (stats)
            *stats = localStats;
        TrajPoint stop;
        stop.pos = start.pos;
        stop.heading = start.theta;
        stop.speed = 0.0;
        stop.time = 0.0;
        result.points.push_back(stop);
        return result;
    }
    localStats.cost = bestCost;

    // Walk back the offset profile.
    std::vector<int> profile(s);
    int j = bestEnd;
    for (int i = s - 1; i >= 0; --i) {
        profile[i] = j;
        j = from[i][j];
    }

    // Station speeds: cruise, capped by the car-following law against
    // the nearest leading obstacle near the chosen lateral corridor.
    const auto stationSpeed = [&](const Vec2& pos, double t) {
        if (!params.adaptSpeed)
            return params.cruiseSpeed;
        double speed = params.cruiseSpeed;
        for (const auto& o : obstacles) {
            const Vec2 predicted = o.pos + o.velocity * t;
            const double ahead = predicted.x - pos.x;
            const double lateral = std::fabs(predicted.y - pos.y);
            if (ahead <= 0 || lateral > 1.8)
                continue; // behind us or out of our corridor
            const double gap = ahead - o.radius - params.standoffGap;
            // Time-headway law: close the gap over `timeHeadway`
            // seconds on top of matching the lead's forward speed.
            const double follow = std::max(0.0, gap) /
                                      params.timeHeadway +
                                  std::max(0.0, o.velocity.x);
            speed = std::min(speed, follow);
        }
        return speed;
    };

    result.points.push_back({start.pos, start.theta,
                             stationSpeed(start.pos, 0.0), 0.0});
    for (int i = 0; i < s; ++i) {
        TrajPoint p;
        p.pos = {start.pos.x + (i + 1) * params.stationSpacing,
                 centerY + offsets[profile[i]]};
        p.speed = stationSpeed(p.pos, (i + 1) * dt);
        p.time = (i + 1) * dt;
        const Vec2 prev = result.points.back().pos;
        p.heading = std::atan2(p.pos.y - prev.y, p.pos.x - prev.x);
        result.points.push_back(p);
    }
    if (stats)
        *stats = localStats;
    return result;
}

} // namespace

Trajectory
planConformal(const Pose2& start, double centerY,
              const std::vector<PredictedObstacle>& obstacles,
              const ConformalParams& params, ConformalStats* stats)
{
    // Temporal fallback: if full-speed station timing collides at
    // every lateral offset (a moving cluster occupies the corridor
    // exactly when we would arrive), retry with slower timing -- the
    // spatio-TEMPORAL dimension of the lattice. The commanded speeds
    // of the accepted plan carry the reduced cruise.
    constexpr double kFactors[] = {1.0, 0.6, 0.36, 0.2};
    ConformalStats attemptStats;
    for (const double factor : kFactors) {
        ConformalParams attempt = params;
        attempt.cruiseSpeed = params.cruiseSpeed * factor;
        attemptStats = ConformalStats{};
        Trajectory t = planConformalOnce(start, centerY, obstacles,
                                         attempt, &attemptStats);
        if (!attemptStats.blocked || !params.adaptSpeed ||
            factor == kFactors[3]) {
            attemptStats.speedFactor = factor;
            if (stats)
                *stats = attemptStats;
            return t;
        }
    }
    // Unreachable: the loop returns on its last iteration.
    if (stats)
        *stats = attemptStats;
    return Trajectory{};
}

} // namespace ad::planning
