#include "planning/motion_planner.hh"

namespace ad::planning {

MotionPlanner::MotionPlanner(const MotionPlannerParams& params)
    : params_(params)
{
}

MotionResult
MotionPlanner::plan(const MotionRequest& request) const
{
    MotionResult result;
    result.areaUsed = request.area;

    if (request.area == DrivingArea::Structured) {
        ConformalStats stats;
        result.trajectory =
            planConformal(request.start, params_.laneCenterY,
                          request.obstacles, params_.conformal, &stats);
        result.feasible = !stats.blocked;
        result.costOrExpansions = stats.cost;
        return result;
    }

    // Open area: the state lattice ignores obstacle velocities (the
    // vehicle moves slowly there); predicted obstacles convert to
    // static discs at their current positions.
    std::vector<Obstacle> discs;
    discs.reserve(request.obstacles.size());
    for (const auto& o : request.obstacles)
        discs.push_back({o.pos, o.radius});
    LatticeStats stats;
    result.trajectory = planLattice(request.start, request.goal, discs,
                                    params_.lattice, &stats);
    result.feasible = stats.found;
    result.costOrExpansions = stats.expansions;
    return result;
}

} // namespace ad::planning
