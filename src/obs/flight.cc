#include "obs/flight.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace ad::obs {

namespace {

/** Bounded copy into a fixed-size event field (always terminated). */
template <std::size_t N>
void
copyName(char (&dst)[N], const char* src)
{
    std::size_t i = 0;
    if (src)
        for (; src[i] && i + 1 < N; ++i)
            dst[i] = src[i];
    dst[i] = '\0';
}

/** Bounded append onto a terminated fixed-size event field. */
template <std::size_t N>
void
appendName(char (&dst)[N], const char* src)
{
    std::size_t len = 0;
    while (dst[len])
        ++len;
    if (src)
        for (std::size_t i = 0; src[i] && len + 1 < N; ++i, ++len)
            dst[len] = src[i];
    dst[len] = '\0';
}

/** Escape into a JSON string literal (names are plain ASCII). */
void
appendEscaped(std::ostream& os, const char* s)
{
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
}

} // namespace

const char*
flightKindName(FlightKind kind)
{
    switch (kind) {
    case FlightKind::Span:
        return "span";
    case FlightKind::Metric:
        return "metric";
    case FlightKind::Transition:
        return "transition";
    case FlightKind::Admission:
        return "admission";
    case FlightKind::Mark:
        return "mark";
    case FlightKind::Perf:
        return "perf";
    }
    return "?";
}

FlightRecorder::FlightRecorder()
    : epoch_(std::chrono::steady_clock::now())
{
}

FlightRecorder&
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::configure(const FlightParams& params)
{
    std::lock_guard<std::mutex> lock(configMutex_);
    params_ = params;
    if (params_.streams < 1)
        params_.streams = 1;
    if (params_.capacity < 1)
        params_.capacity = 1;
    rings_.clear();
    for (int i = 0; i < params_.streams; ++i) {
        auto ring = std::make_unique<Ring>();
        ring->buf.reserve(params_.capacity);
        rings_.push_back(std::move(ring));
    }
    dumpsWritten_.store(0, std::memory_order_relaxed);
    triggersSeen_.store(0, std::memory_order_relaxed);
    lastDumpPath_.clear();
}

void
FlightRecorder::ensureStreams(int streams)
{
    std::lock_guard<std::mutex> lock(configMutex_);
    while (static_cast<int>(rings_.size()) < streams) {
        auto ring = std::make_unique<Ring>();
        ring->buf.reserve(params_.capacity);
        rings_.push_back(std::move(ring));
    }
    if (streams > params_.streams)
        params_.streams = streams;
}

double
FlightRecorder::nowMs() const
{
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::milli>(d).count();
}

void
FlightRecorder::push(int stream, const FlightEvent& event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(configMutex_);
    if (rings_.empty())
        return;
    if (stream < 0 || stream >= static_cast<int>(rings_.size()))
        stream = 0; // out-of-range producers land in the first ring.
    Ring& ring = *rings_[static_cast<std::size_t>(stream)];
    std::lock_guard<std::mutex> ringLock(ring.mutex);
    if (ring.buf.size() < params_.capacity) {
        ring.buf.push_back(event); // within reserve: no allocation.
    } else {
        ring.buf[static_cast<std::size_t>(ring.total %
                                          params_.capacity)] = event;
    }
    ++ring.total;
}

void
FlightRecorder::recordSpan(int stream, const char* name,
                           std::int64_t frame, double tMs, double durMs,
                           int track)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Span;
    copyName(e.name, name);
    e.frame = frame;
    e.tMs = tMs;
    e.durMs = durMs;
    e.i0 = track;
    push(stream, e);
}

void
FlightRecorder::recordMetric(int stream, const char* name,
                             std::int64_t frame, double tMs,
                             double value)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Metric;
    copyName(e.name, name);
    e.frame = frame;
    e.tMs = tMs;
    e.a = value;
    push(stream, e);
}

void
FlightRecorder::recordTransition(int stream, const char* reason,
                                 std::int64_t frame, double tMs,
                                 int from, int to, const char* fromName,
                                 const char* toName)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Transition;
    copyName(e.name, reason);
    copyName(e.aux, fromName ? fromName : "?");
    appendName(e.aux, ">");
    appendName(e.aux, toName ? toName : "?");
    e.frame = frame;
    e.tMs = tMs;
    e.i0 = from;
    e.i1 = to;
    push(stream, e);
}

void
FlightRecorder::recordMigration(int stream, std::int64_t epoch,
                                double tMs, int fromShard, int toShard)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Transition;
    copyName(e.name, "fleet.migrate");
    copyName(e.aux, "shard");
    e.frame = epoch;
    e.tMs = tMs;
    e.i0 = fromShard;
    e.i1 = toShard;
    push(stream, e);
}

void
FlightRecorder::recordTileStall(int stream, std::int64_t frame,
                                double tMs, int tileX, int tileY)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Mark;
    copyName(e.name, "map.tile.stall");
    copyName(e.aux, "tile");
    e.frame = frame;
    e.tMs = tMs;
    e.i0 = tileX;
    e.i1 = tileY;
    push(stream, e);
}

void
FlightRecorder::recordAdmission(int stream, const char* action,
                                std::int64_t frame, double tMs,
                                double costScale, bool degraded)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Admission;
    copyName(e.name, action);
    e.frame = frame;
    e.tMs = tMs;
    e.a = costScale;
    e.i0 = degraded ? 1 : 0;
    push(stream, e);
}

void
FlightRecorder::recordMark(int stream, const char* name,
                           std::int64_t frame, double tMs, double value)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Mark;
    copyName(e.name, name);
    e.frame = frame;
    e.tMs = tMs;
    e.a = value;
    push(stream, e);
}

void
FlightRecorder::recordPerf(int stream, const char* name,
                           std::int64_t frame, double tMs, double durMs,
                           const PerfDelta& delta)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Perf;
    copyName(e.name, name);
    e.frame = frame;
    e.tMs = tMs;
    e.durMs = durMs;
    e.a = delta.taskClockMs;
    e.b = delta.cycles;
    e.c = delta.instructions;
    e.d = delta.llcMisses;
    e.i0 = delta.hardware ? 1 : 0;
    push(stream, e);
}

void
FlightRecorder::noteDeadlineMiss(int stream, std::int64_t frame,
                                 double tMs, double e2eMs,
                                 double overrunMs)
{
    if (!enabled())
        return;
    FlightEvent e;
    e.kind = FlightKind::Mark;
    copyName(e.name, "deadline.miss");
    e.frame = frame;
    e.tMs = tMs;
    e.a = e2eMs;
    e.b = overrunMs;
    push(stream, e);
    triggersSeen_.fetch_add(1, std::memory_order_relaxed);
    if (params_.dumpOnMiss)
        autoDump("deadline-miss", frame, stream);
}

void
FlightRecorder::noteSafeStop(int stream, std::int64_t frame, double tMs)
{
    if (!enabled())
        return;
    recordMark(stream, "safe_stop.entered", frame, tMs);
    triggersSeen_.fetch_add(1, std::memory_order_relaxed);
    if (params_.dumpOnSafeStop)
        autoDump("safe-stop", frame, stream);
}

void
FlightRecorder::noteFault(int stream, const char* kind,
                          std::int64_t frame, double tMs)
{
    if (!enabled())
        return;
    char name[sizeof(FlightEvent{}.name)];
    copyName(name, "fault.");
    appendName(name, kind ? kind : "?");
    recordMark(stream, name, frame, tMs);
    triggersSeen_.fetch_add(1, std::memory_order_relaxed);
    if (params_.dumpOnFault)
        autoDump("fault", frame, stream);
}

void
FlightRecorder::autoDump(const char* reason, std::int64_t frame,
                         int stream)
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(configMutex_);
        if (params_.dumpPath.empty())
            return;
        if (dumpsWritten_.load(std::memory_order_relaxed) >=
            params_.maxAutoDumps)
            return;
        path = params_.dumpPath;
    }
    dumpNow(path, reason, frame, stream);
}

std::string
FlightRecorder::dumpJson(const char* reason, std::int64_t triggerFrame,
                         int triggerStream) const
{
    std::ostringstream os;
    // Round-trip exact doubles: the validator recomputes span ends
    // from t_ms + dur_ms, so 6-digit default precision would break
    // the nesting invariant it checks.
    os.precision(17);
    os << "{\n  \"flight\": {\n"
       << "    \"version\": 1,\n"
       << "    \"reason\": \"";
    appendEscaped(os, reason ? reason : "on-demand");
    os << "\",\n    \"trigger_frame\": " << triggerFrame
       << ",\n    \"trigger_stream\": " << triggerStream
       << ",\n    \"streams\": [";

    std::lock_guard<std::mutex> lock(configMutex_);
    for (std::size_t s = 0; s < rings_.size(); ++s) {
        const Ring& ring = *rings_[s];
        std::lock_guard<std::mutex> ringLock(ring.mutex);
        // Reconstruct insertion order (oldest first), then order by
        // time with longer spans first so nested spans follow their
        // containers -- the dump validator leans on this.
        std::vector<FlightEvent> events;
        events.reserve(ring.buf.size());
        const std::size_t n = ring.buf.size();
        const std::size_t head = n < params_.capacity
                                     ? 0
                                     : static_cast<std::size_t>(
                                           ring.total %
                                           params_.capacity);
        for (std::size_t i = 0; i < n; ++i)
            events.push_back(ring.buf[(head + i) % n]);
        std::stable_sort(events.begin(), events.end(),
                         [](const FlightEvent& a, const FlightEvent& b) {
                             if (a.tMs != b.tMs)
                                 return a.tMs < b.tMs;
                             return a.durMs > b.durMs;
                         });
        const std::uint64_t dropped =
            ring.total - static_cast<std::uint64_t>(n);
        os << (s ? "," : "") << "\n      {\"stream\": " << s
           << ", \"recorded\": " << ring.total
           << ", \"dropped\": " << dropped << ", \"events\": [";
        for (std::size_t i = 0; i < events.size(); ++i) {
            const FlightEvent& e = events[i];
            os << (i ? "," : "") << "\n        {\"kind\": \""
               << flightKindName(e.kind) << "\", \"name\": \"";
            appendEscaped(os, e.name);
            os << "\", \"frame\": " << e.frame
               << ", \"t_ms\": " << e.tMs;
            switch (e.kind) {
            case FlightKind::Span:
                os << ", \"dur_ms\": " << e.durMs
                   << ", \"track\": " << e.i0;
                break;
            case FlightKind::Metric:
            case FlightKind::Mark:
                os << ", \"value\": " << e.a;
                if (e.b != 0.0)
                    os << ", \"overrun_ms\": " << e.b;
                break;
            case FlightKind::Transition:
                os << ", \"transition\": \"";
                appendEscaped(os, e.aux);
                os << "\", \"from\": " << e.i0 << ", \"to\": " << e.i1;
                break;
            case FlightKind::Admission:
                os << ", \"cost_scale\": " << e.a
                   << ", \"degraded\": " << e.i0;
                break;
            case FlightKind::Perf: {
                const double ipc = e.b > 0.0 ? e.c / e.b : 0.0;
                os << ", \"dur_ms\": " << e.durMs
                   << ", \"task_clock_ms\": " << e.a
                   << ", \"cycles\": " << e.b
                   << ", \"instructions\": " << e.c
                   << ", \"llc_misses\": " << e.d
                   << ", \"ipc\": " << ipc
                   << ", \"hardware\": " << e.i0;
                break;
            }
            }
            os << "}";
        }
        os << "\n      ]}";
    }
    os << "\n    ]\n  }\n}\n";
    return os.str();
}

bool
FlightRecorder::dumpNow(const std::string& path, const char* reason,
                        std::int64_t triggerFrame, int triggerStream)
{
    const std::string doc =
        dumpJson(reason, triggerFrame, triggerStream);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("FlightRecorder: cannot write dump '", tmp, "'");
            return false;
        }
        out << doc;
        if (!out) {
            warn("FlightRecorder: short write to '", tmp, "'");
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("FlightRecorder: cannot rename '", tmp, "' to '", path,
             "'");
        return false;
    }
    dumpsWritten_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(configMutex_);
        lastDumpPath_ = path;
    }
    std::fprintf(stderr,
                 "flight: dumped post-mortem (%s, frame %lld) to %s\n",
                 reason ? reason : "on-demand",
                 static_cast<long long>(triggerFrame), path.c_str());
    return true;
}

int
FlightRecorder::dumpsWritten() const
{
    return dumpsWritten_.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::triggersSeen() const
{
    return triggersSeen_.load(std::memory_order_relaxed);
}

std::string
FlightRecorder::lastDumpPath() const
{
    std::lock_guard<std::mutex> lock(configMutex_);
    return lastDumpPath_;
}

std::size_t
FlightRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(configMutex_);
    std::size_t n = 0;
    for (const auto& ring : rings_) {
        std::lock_guard<std::mutex> ringLock(ring->mutex);
        n += ring->buf.size();
    }
    return n;
}

std::uint64_t
FlightRecorder::droppedEvents(int stream) const
{
    std::lock_guard<std::mutex> lock(configMutex_);
    if (stream < 0 || stream >= static_cast<int>(rings_.size()))
        return 0;
    const Ring& ring = *rings_[static_cast<std::size_t>(stream)];
    std::lock_guard<std::mutex> ringLock(ring.mutex);
    return ring.total - static_cast<std::uint64_t>(ring.buf.size());
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(configMutex_);
    for (auto& ring : rings_) {
        std::lock_guard<std::mutex> ringLock(ring->mutex);
        ring->buf.clear();
        ring->total = 0;
    }
}

} // namespace ad::obs
