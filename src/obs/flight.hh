/**
 * @file
 * Flight recorder: always-on, bounded-memory post-mortem capture.
 *
 * The paper's 100 ms tail bound is only enforceable when a miss is
 * *diagnosable*: by the time a p99.99 outlier shows up in a summary,
 * the frame that caused it is long gone. The flight recorder keeps a
 * fixed-capacity ring of recent events per stream -- trace spans,
 * metric deltas, governor transitions, admission decisions, perf
 * samples -- and dumps them as JSON the moment something goes wrong
 * (deadline miss, SAFE_STOP entry, fault-injector event) or on
 * demand (`--flight-dump`). The dump holds exactly the context the
 * aggregate quantiles discard: what the missing frame's stages cost,
 * what mode the governor was in, what admission decided around it.
 *
 * Hot-path contract: events are fixed-size PODs (names copied into
 * inline char arrays), rings are preallocated at configure() time,
 * and record sites are gated on one relaxed atomic load -- recording
 * neither allocates nor touches anything the engines read, so
 * pipeline outputs are bitwise-identical with the recorder on or
 * off. Producers stamp events with their own timeline (the serving
 * layer's virtual clock, the pipeline's virtual frame timeline), so
 * dumps from deterministic runs are deterministic too.
 */

#ifndef AD_OBS_FLIGHT_HH
#define AD_OBS_FLIGHT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf.hh"

namespace ad::obs {

/** Event taxonomy of the flight ring. */
enum class FlightKind
{
    Span = 0,   ///< a completed span (mirrors a trace span).
    Metric,     ///< one scalar observation ("e2e_ms", ...).
    Transition, ///< a governor mode transition.
    Admission,  ///< an admission decision (admit/coast/shed).
    Mark,       ///< a point event (fault fired, deadline miss, ...).
    Perf,       ///< a perf-counter delta over a span.
};

/** Written-contract kind name ("span", ..., "perf"). */
const char* flightKindName(FlightKind kind);

/**
 * One ring entry. Fixed-size POD: pushing an event is two bounded
 * string copies and a struct store under the ring's mutex -- no
 * allocation ever. Field meaning varies by kind (see the JSON
 * schema in docs/TRACING.md).
 */
struct FlightEvent
{
    FlightKind kind = FlightKind::Mark;
    char name[24] = {};  ///< span/metric/mark name or decision.
    char aux[32] = {};   ///< transitions: "FROM>TO"; else unused.
    std::int64_t frame = -1; ///< frame / sequence number.
    double tMs = 0.0;    ///< event time on the producer's timeline.
    double durMs = 0.0;  ///< spans and perf: duration; else 0.
    double a = 0.0;      ///< kind-specific payload (value, cost...).
    double b = 0.0;      ///< kind-specific payload.
    double c = 0.0;      ///< kind-specific payload.
    double d = 0.0;      ///< kind-specific payload.
    std::int32_t i0 = 0; ///< kind-specific payload (track, from...).
    std::int32_t i1 = 0; ///< kind-specific payload (to-mode, ...).
};

/** Flight-recorder configuration (see obs.hh for the CLI knobs). */
struct FlightParams
{
    int streams = 1;             ///< ring count (stream 0 = pipeline).
    std::size_t capacity = 1024; ///< events retained per stream.
    std::string dumpPath;        ///< auto/post-mortem dump location.
    int maxAutoDumps = 1;        ///< rate limit on trigger dumps.
    bool dumpOnMiss = true;      ///< trigger on deadline miss.
    bool dumpOnSafeStop = true;  ///< trigger on SAFE_STOP entry.
    bool dumpOnFault = false;    ///< trigger on fault-injector events.
};

/**
 * The recorder: per-stream bounded rings plus trigger bookkeeping.
 * One process-wide instance (like the tracer and metric registry);
 * configure() is called once at tool setup and may be called again
 * between runs (it drops recorded events).
 */
class FlightRecorder
{
  public:
    FlightRecorder();

    /** The process-wide recorder used by all instrumentation sites. */
    static FlightRecorder& instance();

    /** (Re)allocate rings and arm triggers; clears prior events. */
    void configure(const FlightParams& params);

    /** Grow the ring set to at least `streams` rings. */
    void ensureStreams(int streams);

    /** Master switch; disabled recorders ignore every event. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** True when record sites should push events. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** The active configuration. */
    const FlightParams& params() const { return params_; }

    /** Wall milliseconds since the recorder's construction epoch. */
    double nowMs() const;

    /** Record one completed span on `track` of `stream`'s timeline. */
    void recordSpan(int stream, const char* name, std::int64_t frame,
                    double tMs, double durMs, int track = 0);

    /** Record one scalar observation. */
    void recordMetric(int stream, const char* name, std::int64_t frame,
                      double tMs, double value);

    /**
     * Record a governor transition. `fromName`/`toName` are the
     * written-contract mode names; `from`/`to` their enum values.
     */
    void recordTransition(int stream, const char* reason,
                          std::int64_t frame, double tMs, int from,
                          int to, const char* fromName,
                          const char* toName);

    /**
     * Record an admission decision (`action` = "admit" / "coast" /
     * "shed"), with the engine cost scale it was admitted at.
     */
    void recordAdmission(int stream, const char* action,
                         std::int64_t frame, double tMs,
                         double costScale, bool degraded);

    /** Record a point event with an optional scalar payload. */
    void recordMark(int stream, const char* name, std::int64_t frame,
                    double tMs, double value = 0.0);

    /**
     * Record a fleet stream migration: the stream's dispatch
     * ownership moved from shard `fromShard` to shard `toShard` at
     * rebalancing epoch `epoch`. Lands in the stream's own ring (a
     * post-mortem of a misbehaving vehicle shows every machine that
     * served it) as a transition event over shard ids.
     */
    void recordMigration(int stream, std::int64_t epoch, double tMs,
                         int fromShard, int toShard);

    /**
     * Record a cold-tile localization stall: vehicle `stream`
     * needed map tile (tileX, tileY) at frame `frame` and found it
     * cold -- the LOC path is blocked on a demand fetch. Lands as a
     * "map.tile.stall" mark carrying the tile coordinate, so a
     * post-mortem of a misbehaving vehicle shows exactly where on
     * the map its localization went blind.
     */
    void recordTileStall(int stream, std::int64_t frame, double tMs,
                         int tileX, int tileY);

    /** Record a perf-counter delta covering [tMs, tMs + durMs]. */
    void recordPerf(int stream, const char* name, std::int64_t frame,
                    double tMs, double durMs, const PerfDelta& delta);

    /**
     * Deadline-miss trigger: records a "deadline.miss" mark carrying
     * the end-to-end latency and overrun, then auto-dumps when
     * dumpOnMiss is armed and the dump budget remains.
     */
    void noteDeadlineMiss(int stream, std::int64_t frame, double tMs,
                          double e2eMs, double overrunMs);

    /** SAFE_STOP trigger (same dump policy, dumpOnSafeStop). */
    void noteSafeStop(int stream, std::int64_t frame, double tMs);

    /** Fault-injector trigger (dump only when dumpOnFault). */
    void noteFault(int stream, const char* kind, std::int64_t frame,
                   double tMs);

    /**
     * Write a dump now, regardless of trigger policy. Events are
     * written per stream in (t_ms, longer-span-first) order via a
     * temp file + atomic rename.
     * @return false (with a warning) when the file cannot be written.
     */
    bool dumpNow(const std::string& path, const char* reason,
                 std::int64_t triggerFrame, int triggerStream);

    /** Dumps written since configure() (auto + on-demand). */
    int dumpsWritten() const;

    /** Trigger events seen since configure() (dumped or not). */
    std::uint64_t triggersSeen() const;

    /** Path of the most recent dump; empty when none. */
    std::string lastDumpPath() const;

    /** Events currently retained across all rings. */
    std::size_t eventCount() const;

    /** Events evicted from `stream`'s ring since configure(). */
    std::uint64_t droppedEvents(int stream) const;

    /** Drop all recorded events (rings stay allocated). */
    void clear();

    /** The dump document as a JSON string (for tests). */
    std::string dumpJson(const char* reason, std::int64_t triggerFrame,
                         int triggerStream) const;

  private:
    /** One stream's bounded ring. */
    struct Ring
    {
        mutable std::mutex mutex;
        std::vector<FlightEvent> buf; ///< capacity-sized storage.
        std::uint64_t total = 0;      ///< lifetime pushes.
    };

    void push(int stream, const FlightEvent& event);
    void autoDump(const char* reason, std::int64_t frame, int stream);

    std::atomic<bool> enabled_{false};
    FlightParams params_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex configMutex_; ///< guards rings_ vector + dumps.
    std::vector<std::unique_ptr<Ring>> rings_;
    std::atomic<int> dumpsWritten_{0};
    std::atomic<std::uint64_t> triggersSeen_{0};
    std::string lastDumpPath_;
};

/** The process-wide recorder (shorthand for FlightRecorder::instance). */
inline FlightRecorder&
flight()
{
    return FlightRecorder::instance();
}

} // namespace ad::obs

#endif // AD_OBS_FLIGHT_HH
