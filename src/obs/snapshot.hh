/**
 * @file
 * Periodic metrics snapshot exporter. Tools run for minutes; the
 * end-of-run metrics dump tells you what happened only after the
 * fact. The snapshotter serializes the metric registry to a JSON
 * file at a fixed interval so external observers (the `adtop` table
 * renderer, a shell loop, a dashboard scraper) can watch a run live.
 *
 * Writes are atomic: the document lands in `<path>.tmp` and is
 * renamed over the target, so a reader polling the file never sees a
 * torn snapshot -- it sees the previous complete one or the new
 * complete one. The snapshot envelope carries a schema tag, a
 * sequence number and the producer's timestamp, on top of the
 * registry's own jsonDump() payload.
 */

#ifndef AD_OBS_SNAPSHOT_HH
#define AD_OBS_SNAPSHOT_HH

#include <string>

#include "obs/metrics.hh"

namespace ad::obs {

/** Snapshot exporter knobs. */
struct SnapshotOptions
{
    std::string path;          ///< target file; empty disables.
    double intervalMs = 500.0; ///< min producer time between writes.
};

/**
 * Interval-gated snapshot writer over one registry. The caller
 * supplies the clock (maybeWrite(nowMs)) so snapshots work equally
 * under wall time (adrun's frame loop) and a single end-of-run
 * writeNow() (adserve, whose run is virtual-clocked).
 */
class MetricsSnapshotter
{
  public:
    /**
     * @param registry the registry to serialize (must outlive this).
     * @param options  target path and write interval.
     */
    MetricsSnapshotter(const MetricRegistry& registry,
                       const SnapshotOptions& options);

    /**
     * Write a snapshot when at least intervalMs has passed since the
     * last write (the first call always writes).
     * @param nowMs producer timestamp, any monotonic ms clock.
     * @return true when a snapshot was written.
     */
    bool maybeWrite(double nowMs);

    /** Write a snapshot unconditionally (atomic rename). */
    bool writeNow(double nowMs);

    /** Snapshots successfully written. */
    int snapshotsWritten() const { return written_; }

    /** The configured target path. */
    const std::string& path() const { return options_.path; }

  private:
    const MetricRegistry& registry_;
    SnapshotOptions options_;
    double lastWriteMs_ = 0.0;
    int written_ = 0;
};

} // namespace ad::obs

#endif // AD_OBS_SNAPSHOT_HH
