/**
 * @file
 * Frame-scoped tracing for the measured-mode pipeline. The paper's
 * predictability constraint (Section 2.4.2) judges the system by
 * 99.99th-percentile latency against a 100 ms budget; aggregate
 * quantiles say *that* a frame was slow, a trace says *where inside
 * that frame* the time went. TraceRecorder collects RAII TraceSpans
 * (name, category, frame id, thread id, start, duration) into
 * per-thread buffers and exports them as Chrome trace_event JSON,
 * loadable in chrome://tracing or Perfetto.
 *
 * Overhead contract: when tracing is disabled every span degenerates
 * to one relaxed atomic load and a null-pointer store -- no clock
 * reads, no allocation, no locks -- so instrumentation can stay
 * compiled into the hot stages permanently. Tracing only observes
 * wall-clock time and never touches engine state, so pipeline outputs
 * are bitwise-identical with tracing on or off.
 */

#ifndef AD_OBS_TRACE_HH
#define AD_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/perf.hh"

namespace ad::obs {

/** One completed span ("ph":"X" in the Chrome trace format). */
struct TraceEvent
{
    std::string name;          ///< span name ("DET", "loc.fe", ...).
    const char* category = ""; ///< static-lifetime category string.
    std::int64_t frame = -1;   ///< pipeline frame id, -1 outside frames.
    std::uint32_t tid = 0;     ///< small sequential thread id.
    double startUs = 0;        ///< microseconds since recorder epoch.
    double durUs = 0;          ///< span duration in microseconds.
    bool hasPerf = false;      ///< perf delta sampled for this span.
    PerfDelta perf;            ///< counter deltas (when hasPerf).
};

/**
 * Thread-safe span collector. Spans are appended to per-thread
 * buffers (one short mutex hold per completed span, uncontended
 * except during export), so tracing a parallelFor shard never
 * serializes the shards against each other.
 */
class TraceRecorder
{
  public:
    TraceRecorder();

    /** The process-wide recorder used by all instrumentation sites. */
    static TraceRecorder& instance();

    /** Master switch; disabled recorders ignore every span. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Opt-in switch for per-layer NN spans (category "nn"). They are
     * an order of magnitude more numerous than stage spans, so they
     * stay off unless explicitly requested (obs.trace_nn).
     */
    void setNnLayerSpans(bool on)
    {
        nnLayers_.store(on, std::memory_order_relaxed);
    }

    bool nnLayerSpans() const
    {
        return enabled() && nnLayers_.load(std::memory_order_relaxed);
    }

    /**
     * Opt-in switch for sampling perf counters over spans
     * (obs.perf). Per-layer NN spans are never sampled -- two
     * counter reads per layer would perturb what they measure.
     */
    void setPerfSpans(bool on)
    {
        perfSpans_.store(on, std::memory_order_relaxed);
    }

    /** True when spans should carry perf-counter deltas. */
    bool perfSpansEnabled() const
    {
        return enabled() && perfSpans_.load(std::memory_order_relaxed);
    }

    /**
     * Tag subsequent spans with a frame id. The serial pipeline sets
     * this once per processFrame; spans on worker threads inherit it,
     * which is correct while one frame is in flight at a time. When
     * the async frame-graph executor overlaps frames it instead scopes
     * each stage task with a ScopedTraceFrame, whose thread-local
     * override takes precedence over this global.
     */
    void setFrame(std::int64_t frame)
    {
        frame_.store(frame, std::memory_order_relaxed);
    }

    std::int64_t currentFrame() const
    {
        return frame_.load(std::memory_order_relaxed);
    }

    /**
     * The frame id unresolved spans on this thread will be tagged
     * with: the thread-local ScopedTraceFrame override when one is
     * active, this recorder's currentFrame() otherwise.
     */
    std::int64_t resolveFrame() const;

    /** Microseconds since the recorder's construction epoch. */
    double nowUs() const;

    /**
     * Append one completed span. @p frame of INT64_MIN means "use the
     * recorder's current frame".
     */
    void record(std::string name, const char* category, double startUs,
                double durUs, std::int64_t frame = INT64_MIN);

    /** record() variant carrying a sampled perf-counter delta. */
    void recordWithPerf(std::string name, const char* category,
                        double startUs, double durUs, std::int64_t frame,
                        const PerfDelta& perf);

    /** Total spans recorded across all threads. */
    std::size_t eventCount() const;

    /** All events, merged and sorted by start time. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all recorded events (buffers stay registered). */
    void clear();

    /** The Chrome trace_event JSON document as a string. */
    std::string chromeTraceJson() const;

    /**
     * Write the Chrome trace to a file.
     * @return false (with a warning) when the file cannot be written.
     */
    bool writeChromeTrace(const std::string& path) const;

  private:
    struct ThreadBuffer
    {
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
        std::uint32_t tid = 0;
    };

    /** This thread's buffer, registered on first use. */
    ThreadBuffer& localBuffer();

    std::atomic<bool> enabled_{false};
    std::atomic<bool> nnLayers_{false};
    std::atomic<bool> perfSpans_{false};
    std::atomic<std::int64_t> frame_{-1};
    /**
     * Distinguishes this recorder from a destroyed one that occupied
     * the same address, so the thread-local buffer cache in
     * localBuffer() can never serve a dangling pointer.
     */
    const std::uint64_t generation_;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex registryMutex_;
    std::unordered_map<std::thread::id, std::shared_ptr<ThreadBuffer>>
        buffers_;
    std::uint32_t nextTid_ = 1;
};

/** The process-wide recorder (shorthand for TraceRecorder::instance). */
inline TraceRecorder&
tracer()
{
    return TraceRecorder::instance();
}

/**
 * RAII thread-local frame override for cross-thread span parenting.
 *
 * The async frame-graph executor runs stages of different frames on
 * the same worker pool concurrently, so a single global "current
 * frame" can no longer tag spans correctly. The executor wraps each
 * stage task in a ScopedTraceFrame; every span the task records
 * (including nested NN-layer spans on the same thread) resolves its
 * frame id from this override instead of the global, restoring the
 * previous override on destruction so nested scopes compose.
 *
 * Spans started on one thread and finished on another are not
 * supported (TraceSpan is not movable), so resolving at record time
 * on the recording thread is sufficient.
 */
class ScopedTraceFrame
{
  public:
    /** Override the calling thread's span frame id with @p frame. */
    explicit ScopedTraceFrame(std::int64_t frame);

    /** Restore the previous override (or none). */
    ~ScopedTraceFrame();

    ScopedTraceFrame(const ScopedTraceFrame&) = delete;
    ScopedTraceFrame& operator=(const ScopedTraceFrame&) = delete;

  private:
    std::int64_t prev_;
};

/**
 * RAII span. Construction samples the clock only when the recorder is
 * enabled; destruction records the completed event. The const char*
 * overloads never allocate when tracing is off.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceRecorder& rec, const char* name,
              const char* category = "stage",
              std::int64_t frame = INT64_MIN)
    {
        if (rec.enabled())
            begin(rec, name, category, frame);
    }

    /** Dynamic-name overload; the name is copied only when enabled. */
    TraceSpan(TraceRecorder& rec, const std::string& name,
              const char* category = "stage",
              std::int64_t frame = INT64_MIN)
    {
        if (rec.enabled())
            begin(rec, name, category, frame);
    }

    ~TraceSpan()
    {
        if (!rec_)
            return;
        const double durUs = rec_->nowUs() - startUs_;
        if (perfOn_) {
            const PerfDelta d =
                PerfSampler::delta(perfStart_, PerfSampler::read());
            publishPerfDelta(name_.c_str(), d);
            rec_->recordWithPerf(std::move(name_), category_, startUs_,
                                 durUs, frame_, d);
        } else {
            rec_->record(std::move(name_), category_, startUs_, durUs,
                         frame_);
        }
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    template <typename Name>
    void
    begin(TraceRecorder& rec, Name&& name, const char* category,
          std::int64_t frame)
    {
        rec_ = &rec;
        name_ = std::forward<Name>(name);
        category_ = category;
        frame_ = frame;
        if (rec.perfSpansEnabled() && std::strcmp(category, "nn") != 0) {
            perfOn_ = true;
            perfStart_ = PerfSampler::read();
        }
        startUs_ = rec.nowUs();
    }

    TraceRecorder* rec_ = nullptr;
    std::string name_;
    const char* category_ = "";
    std::int64_t frame_ = INT64_MIN;
    double startUs_ = 0;
    bool perfOn_ = false;
    PerfSampler::Reading perfStart_;
};

} // namespace ad::obs

#endif // AD_OBS_TRACE_HH
