/**
 * @file
 * Hardware performance-counter sampling for trace spans. The paper's
 * characterization (Section 5) attributes stage latency to the
 * microarchitecture -- cycles burned, instructions retired, cache
 * behavior -- not just wall time; PerfSampler brings that view into
 * the reproduction. Each sampling thread lazily opens a small set of
 * per-thread `perf_event_open` counters (task-clock, cycles,
 * instructions, LLC misses, counting this thread only) and TraceSpan
 * reads them at span begin/end so per-stage IPC and cache-miss rates
 * land in the Chrome trace, the metrics registry and the flight
 * recorder.
 *
 * Portability contract: when `perf_event_open` is unavailable --
 * locked-down containers (perf_event_paranoid), non-Linux hosts, or
 * an explicit `AD_PERF_DISABLE=1` -- the sampler silently falls back
 * to CLOCK_THREAD_CPUTIME_ID: task-clock stays exact, the hardware
 * columns read zero, and PerfDelta::hardware reports which world the
 * numbers came from. Nothing in the pipeline behaves differently
 * either way; sampling only ever observes.
 */

#ifndef AD_OBS_PERF_HH
#define AD_OBS_PERF_HH

#include <cstdint>

namespace ad::obs {

/** Counter deltas over one sampled interval (one trace span). */
struct PerfDelta
{
    double taskClockMs = 0.0; ///< CPU time this thread ran, ms.
    double cycles = 0.0;      ///< core cycles (0 when unavailable).
    double instructions = 0.0; ///< instructions retired (0 when n/a).
    double llcMisses = 0.0;   ///< last-level cache misses (0 when n/a).
    bool hardware = false;    ///< true when the HW counters are real.

    /** Instructions per cycle; 0 when cycles were not counted. */
    double
    ipc() const
    {
        return cycles > 0.0 ? instructions / cycles : 0.0;
    }

    /** LLC misses per thousand instructions; 0 when not counted. */
    double
    missesPerKiloInstr() const
    {
        return instructions > 0.0 ? 1000.0 * llcMisses / instructions
                                  : 0.0;
    }
};

/**
 * Per-thread counter access. All state lives in thread-local storage
 * (the perf fds count the calling thread only), so read() is
 * lock-free and two pipeline worker threads never share a counter.
 */
class PerfSampler
{
  public:
    /** Raw counter values at one instant (deltas via delta()). */
    struct Reading
    {
        std::uint64_t taskClockNs = 0; ///< thread CPU time, ns.
        std::uint64_t cycles = 0;       ///< raw cycle count.
        std::uint64_t instructions = 0; ///< raw instruction count.
        std::uint64_t llcMisses = 0;    ///< raw LLC miss count.
        bool hardware = false; ///< hardware counters were live.
    };

    /**
     * Sample the calling thread's counters, opening them on first
     * use. Falls back to CLOCK_THREAD_CPUTIME_ID when perf events
     * cannot be opened (never retried after the first failure).
     */
    static Reading read();

    /** Counter deltas between two readings of the same thread. */
    static PerfDelta delta(const Reading& start, const Reading& end);

    /** True when AD_PERF_DISABLE=1 forces the portable fallback. */
    static bool forcedOff();

    /**
     * True when the calling thread's hardware group is live (only
     * meaningful after the thread's first read()).
     */
    static bool threadHasHardware();
};

/**
 * Publish one span's counter delta: per-stage IPC / miss-rate /
 * task-clock histograms into the metric registry (when metrics are
 * enabled). Also retains the delta in a small per-thread table keyed
 * by span name so the pipeline can re-emit stage deltas on its own
 * virtual timeline into the flight recorder -- see
 * latestPerfDelta().
 *
 * @param name span name ("DET", "FRAME", ...).
 * @param d    the sampled delta.
 */
void publishPerfDelta(const char* name, const PerfDelta& d);

/**
 * The calling thread's most recent delta published under `name`, or
 * nullptr when none has been. Pointers stay valid for the thread's
 * lifetime; contents are overwritten by the next publish under the
 * same name.
 */
const PerfDelta* latestPerfDelta(const char* name);

} // namespace ad::obs

#endif // AD_OBS_PERF_HH
