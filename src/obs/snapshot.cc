#include "obs/snapshot.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace ad::obs {

MetricsSnapshotter::MetricsSnapshotter(const MetricRegistry& registry,
                                       const SnapshotOptions& options)
    : registry_(registry), options_(options)
{
}

bool
MetricsSnapshotter::maybeWrite(double nowMs)
{
    if (options_.path.empty())
        return false;
    if (written_ > 0 && nowMs - lastWriteMs_ < options_.intervalMs)
        return false;
    return writeNow(nowMs);
}

bool
MetricsSnapshotter::writeNow(double nowMs)
{
    if (options_.path.empty())
        return false;
    std::ostringstream os;
    os << "{\n  \"schema\": \"ad.metrics.v1\",\n  \"seq\": "
       << written_ << ",\n  \"now_ms\": " << nowMs
       << ",\n  \"metrics\": " << registry_.jsonDump() << "}\n";

    const std::string tmp = options_.path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out) {
            warn("MetricsSnapshotter: cannot write '", tmp, "'");
            return false;
        }
        out << os.str();
        if (!out) {
            warn("MetricsSnapshotter: short write to '", tmp, "'");
            return false;
        }
    }
    if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
        warn("MetricsSnapshotter: cannot rename '", tmp, "' to '",
             options_.path, "'");
        return false;
    }
    lastWriteMs_ = nowMs;
    ++written_;
    return true;
}

} // namespace ad::obs
