/**
 * @file
 * Process-wide metric registry: named counters (monotonic, atomic),
 * gauges (last-written value) and latency histograms (backed by
 * LatencyRecorder so --metrics reports the same tail quantiles the
 * paper's figures use). The registry powers the `--metrics` dump in
 * adrun and the fig6/fig11 harnesses: per-stage latency summaries, NN
 * per-layer FLOP/byte inventories, thread-pool task counters and the
 * deadline watchdog's violation table all land here.
 *
 * Hot-path sites guard on metricsEnabled() (one relaxed atomic load)
 * and cache Counter/Gauge references, so the disabled cost is a
 * predicted-not-taken branch.
 */

#ifndef AD_OBS_METRICS_HH
#define AD_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/stats.hh"

namespace ad {
class ThreadPool;
}

namespace ad::obs {

/** Monotonic event counter; add() is lock-free. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (queue depth, thread count, ...). */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Thread-safe latency histogram with the paper's quantile summary.
 *
 * Optionally carries fixed bucket bounds (sorted upper edges; one
 * implicit overflow bucket above the last edge) so exporters can
 * render a latency distribution without re-deriving edges from the
 * samples. Bounds are configuration, not data: reset() clears the
 * recorded samples and counts but keeps the bounds, and registry
 * merges propagate bounds into freshly created (or freshly reset)
 * target slots.
 */
class Histogram
{
  public:
    void
    record(double v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        recorder_.record(v);
        countInto(v);
    }

    /** Merge an externally collected recorder (e.g.\ a stage's). */
    void
    mergeFrom(const LatencyRecorder& other)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        recorder_.merge(other);
        for (const double v : other.samples())
            countInto(v);
    }

    /**
     * Install bucket upper bounds (sorted ascending; sorted here if
     * not). Counts are recomputed from the currently held samples,
     * so setBounds may be called before or after recording.
     */
    void setBounds(std::vector<double> bounds);

    /** Copy of the bucket upper bounds; empty when unbucketed. */
    std::vector<double>
    bounds() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return bounds_;
    }

    /** Per-bucket counts, size bounds()+1 (last = overflow). */
    std::vector<std::uint64_t>
    bucketCounts() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return bucketCounts_;
    }

    LatencySummary
    summary() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return recorder_.summary();
    }

    /** Copy of the underlying recorder (for registry merging). */
    LatencyRecorder
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return recorder_;
    }

    std::size_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return recorder_.count();
    }

    /** Drop samples and zero bucket counts; bounds are retained. */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        recorder_.clear();
        for (auto& c : bucketCounts_)
            c = 0;
    }

  private:
    /** Count one sample into its bucket (mutex_ held). */
    void
    countInto(double v)
    {
        if (bounds_.empty())
            return;
        std::size_t b = 0;
        while (b < bounds_.size() && v > bounds_[b])
            ++b;
        ++bucketCounts_[b];
    }

    mutable std::mutex mutex_;
    LatencyRecorder recorder_;
    std::vector<double> bounds_;
    std::vector<std::uint64_t> bucketCounts_;
};

/**
 * Name -> metric map. Metric objects are created on first lookup and
 * never destroyed before the registry, so call sites may cache the
 * returned references across frames.
 *
 * Besides the process-wide instance(), registries are freely
 * constructible: a worker or server keeps its own local registry on
 * the hot path (no shared lock, no contention) and folds it into
 * the global one with a single merge() when its run ends. The
 * serving layer's per-stream labeled metrics use exactly this
 * pattern.
 */
class MetricRegistry
{
  public:
    /** A fresh, empty, local registry (see class comment). */
    MetricRegistry() = default;

    /** The process-wide registry used by all instrumentation sites. */
    static MetricRegistry& instance();

    /** Master switch consulted by hot-path instrumentation sites. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /**
     * Histogram lookup that also installs bucket bounds on first
     * use. An existing histogram keeps the bounds it already has
     * (first writer wins); one without bounds adopts these.
     */
    Histogram& histogram(const std::string& name,
                         const std::vector<double>& bounds);

    /**
     * Snapshot a thread pool's task accounting into gauges under
     * @p prefix: tasks_run, tasks_thrown, peak_queue_depth, workers.
     */
    void captureThreadPool(const std::string& prefix,
                           const ThreadPool& pool);

    /**
     * Fold another registry into this one: counters add, gauges
     * take the other's last-written value, histograms merge their
     * samples. Metrics absent here are created. Self-merge is a
     * no-op. Both registries are locked for the duration, so merge
     * belongs at aggregation points (end of a run, end of a worker),
     * never on a per-frame path.
     */
    void merge(const MetricRegistry& other);

    /** Multi-line human-readable dump, sorted by metric name. */
    std::string textDump() const;

    /** The same content as a JSON object. */
    std::string jsonDump() const;

    /**
     * Zero every metric *in place*: counters to 0, gauges to 0,
     * histograms emptied with their bucket bounds retained. Metric
     * objects are never destroyed, upholding the cached-reference
     * contract above -- a reference obtained before reset() stays
     * valid (and observes the zeroing) after it.
     */
    void reset();

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Canonical labeled-metric name: "name{key=value}". One flat string
 * keeps the registry's map simple while giving per-stream (or
 * per-shard, per-camera, ...) metrics a uniform, parseable form.
 */
std::string labeled(const std::string& name, const std::string& key,
                    const std::string& value);

/** The process-wide registry (shorthand for MetricRegistry::instance). */
inline MetricRegistry&
metrics()
{
    return MetricRegistry::instance();
}

/** True when hot-path sites should record into the registry. */
inline bool
metricsEnabled()
{
    return MetricRegistry::instance().enabled();
}

} // namespace ad::obs

#endif // AD_OBS_METRICS_HH
