#include "obs/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/logging.hh"

namespace ad::obs::json {

bool
Value::asBool() const
{
    if (!isBool())
        panic("json::Value::asBool on non-bool");
    return std::get<bool>(v_);
}

double
Value::asNumber() const
{
    if (!isNumber())
        panic("json::Value::asNumber on non-number");
    return std::get<double>(v_);
}

const std::string&
Value::asString() const
{
    if (!isString())
        panic("json::Value::asString on non-string");
    return std::get<std::string>(v_);
}

const Array&
Value::asArray() const
{
    if (!isArray())
        panic("json::Value::asArray on non-array");
    return std::get<Array>(v_);
}

const Object&
Value::asObject() const
{
    if (!isObject())
        panic("json::Value::asObject on non-object");
    return std::get<Object>(v_);
}

const Value*
Value::find(const std::string& key) const
{
    if (!isObject())
        return nullptr;
    const auto& obj = std::get<Object>(v_);
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

namespace {

/** Recursive-descent parser over an in-memory document. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    std::optional<Value>
    run(std::string* error)
    {
        try {
            skipWs();
            Value v = parseValue();
            skipWs();
            if (pos_ != text_.size())
                fail("trailing content");
            return v;
        } catch (const std::runtime_error& e) {
            if (error)
                *error = e.what();
            return std::nullopt;
        }
    }

  private:
    [[noreturn]] void
    fail(const std::string& what) const
    {
        std::ostringstream os;
        os << "JSON error at offset " << pos_ << ": " << what;
        throw std::runtime_error(os.str());
    }

    char
    peek() const
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    next()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail(std::string("expected '") + c + "'");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consumeLiteral(const char* lit)
    {
        const std::size_t len = std::string_view(lit).size();
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    Value
    parseValue()
    {
        switch (peek()) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return Value(parseString());
        case 't':
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Value(true);
        case 'f':
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Value(false);
        case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Value(nullptr);
        default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Object obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Value(std::move(obj));
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            obj.emplace(std::move(key), parseValue());
            skipWs();
            const char c = next();
            if (c == '}')
                return Value(std::move(obj));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Array arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Value(std::move(arr));
        }
        for (;;) {
            skipWs();
            arr.push_back(parseValue());
            skipWs();
            const char c = next();
            if (c == ']')
                return Value(std::move(arr));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            const char c = next();
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            const char esc = next();
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out.push_back(esc);
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = next();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else
                        fail("bad \\u escape");
                }
                // Validation-oriented reader: non-ASCII escapes are
                // preserved losslessly enough for equality checks.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                fail("bad escape character");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail("bad number '" + token + "'");
        return Value(v);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Value>
parse(const std::string& text, std::string* error)
{
    return Parser(text).run(error);
}

std::optional<Value>
parseFile(const std::string& path, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str(), error);
}

} // namespace ad::obs::json
