/**
 * @file
 * Deadline watchdog for the 100 ms reaction budget (Section 2.4.1).
 * Each frame's composed end-to-end latency -- max(LOC, DET + TRA) +
 * FUSION + MOTPLAN, the Figure 1 parallel-branch composition -- is
 * checked against the budget as the frame completes. Violations are
 * counted, attributed to the worst offending stage *on the critical
 * path* (a slow LOC hidden under an even slower DET+TRA branch did not
 * cause the miss), and optionally reported via warn() so an operator
 * sees the miss when it happens rather than in a post-run summary.
 */

#ifndef AD_OBS_DEADLINE_HH
#define AD_OBS_DEADLINE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace ad::obs {

/** The five measured pipeline stages (Figure 1). */
enum class Stage { Det = 0, Tra, Loc, Fusion, MotPlan };

inline constexpr std::size_t kStageCount = 5;

/** Short uppercase stage name ("DET", "TRA", ...). */
const char* stageName(Stage stage);

/** Per-stage latencies of one frame, as fed to the watchdog (ms). */
struct FrameLatencySample
{
    double detMs = 0;
    double traMs = 0;
    double locMs = 0;
    double fusionMs = 0;
    double motPlanMs = 0;

    /** Parallel-branch composition (Figure 1). */
    double
    endToEndMs() const
    {
        return std::max(locMs, detMs + traMs) + fusionMs + motPlanMs;
    }
};

/** Watchdog knobs. */
struct DeadlineParams
{
    double budgetMs = 100.0;   ///< the paper's reaction budget.
    bool logViolations = false; ///< warn() on each violation.
    /** Stop warning after this many violations (0 = never warn). */
    int maxLoggedViolations = 10;
};

/**
 * Streaming deadline monitor. observe() is a handful of comparisons,
 * so the pipeline feeds it every frame regardless of whether tracing
 * or metrics are enabled; it performs no allocation after
 * construction and never touches engine state.
 */
class DeadlineMonitor
{
  public:
    explicit DeadlineMonitor(const DeadlineParams& params = {});

    /** Check one completed frame against the budget. */
    void observe(std::int64_t frame, const FrameLatencySample& sample);

    std::uint64_t framesObserved() const { return frames_; }
    std::uint64_t violations() const { return violations_; }

    /** Violations attributed to each stage (index by Stage). */
    const std::array<std::uint64_t, kStageCount>&
    violationsByStage() const
    {
        return byStage_;
    }

    /** Largest end-to-end overrun seen (ms beyond the budget). */
    double worstOverrunMs() const { return worstOverrunMs_; }

    /** Frame id of the worst overrun, -1 when none. */
    std::int64_t worstFrame() const { return worstFrame_; }

    const DeadlineParams& params() const { return params_; }

    /**
     * The stage that contributed most to this sample's critical path:
     * the slower perception branch's dominant stage, or FUSION /
     * MOTPLAN when they dominate outright.
     */
    static Stage worstStage(const FrameLatencySample& sample);

    /** Multi-line violation-attribution table. */
    std::string report() const;

  private:
    DeadlineParams params_;
    std::uint64_t frames_ = 0;
    std::uint64_t violations_ = 0;
    std::array<std::uint64_t, kStageCount> byStage_{};
    double worstOverrunMs_ = 0;
    std::int64_t worstFrame_ = -1;
    int logged_ = 0;
};

} // namespace ad::obs

#endif // AD_OBS_DEADLINE_HH
