/**
 * @file
 * Minimal JSON reader used to validate the observability layer's own
 * emitters: the trace tests and the adtrace_check tool parse the
 * emitted Chrome trace / metrics JSON back and assert structure
 * instead of grepping text. Supports the full JSON value grammar
 * (objects, arrays, strings with escapes, numbers, booleans, null);
 * not a general-purpose library -- no streaming, whole document in
 * memory, which is exactly right for checking our own small files.
 */

#ifndef AD_OBS_JSON_HH
#define AD_OBS_JSON_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace ad::obs::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One parsed JSON value (recursive sum type). */
class Value
{
  public:
    Value() : v_(nullptr) {}
    Value(std::nullptr_t) : v_(nullptr) {}
    Value(bool b) : v_(b) {}
    Value(double d) : v_(d) {}
    Value(std::string s) : v_(std::move(s)) {}
    Value(Array a) : v_(std::move(a)) {}
    Value(Object o) : v_(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(v_); }
    bool isBool() const { return std::holds_alternative<bool>(v_); }
    bool isNumber() const { return std::holds_alternative<double>(v_); }
    bool isString() const { return std::holds_alternative<std::string>(v_); }
    bool isArray() const { return std::holds_alternative<Array>(v_); }
    bool isObject() const { return std::holds_alternative<Object>(v_); }

    /** Typed accessors; panic() on type mismatch (test/tool usage). */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const Array& asArray() const;
    const Object& asObject() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const Value* find(const std::string& key) const;

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        v_;
};

/**
 * Parse a complete JSON document. Trailing non-whitespace is an error.
 * @param error receives a message with offset on failure (optional).
 */
std::optional<Value> parse(const std::string& text,
                           std::string* error = nullptr);

/** Parse a JSON file; nullopt (with error message) on I/O failure. */
std::optional<Value> parseFile(const std::string& path,
                               std::string* error = nullptr);

} // namespace ad::obs::json

#endif // AD_OBS_JSON_HH
