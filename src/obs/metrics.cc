#include "obs/metrics.hh"

#include <algorithm>
#include <sstream>

#include "common/thread_pool.hh"

namespace ad::obs {

void
Histogram::setBounds(std::vector<double> bounds)
{
    std::sort(bounds.begin(), bounds.end());
    std::lock_guard<std::mutex> lock(mutex_);
    bounds_ = std::move(bounds);
    if (bounds_.empty()) {
        bucketCounts_.clear();
        return;
    }
    bucketCounts_.assign(bounds_.size() + 1, 0);
    for (const double v : recorder_.samples())
        countInto(v);
}

MetricRegistry&
MetricRegistry::instance()
{
    static MetricRegistry registry;
    return registry;
}

Counter&
MetricRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Histogram&
MetricRegistry::histogram(const std::string& name,
                          const std::vector<double>& bounds)
{
    Histogram* h = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto& slot = histograms_[name];
        if (!slot)
            slot = std::make_unique<Histogram>();
        h = slot.get();
    }
    if (!bounds.empty() && h->bounds().empty())
        h->setBounds(bounds);
    return *h;
}

void
MetricRegistry::captureThreadPool(const std::string& prefix,
                                  const ThreadPool& pool)
{
    gauge(prefix + ".workers")
        .set(static_cast<double>(pool.workerCount()));
    gauge(prefix + ".tasks_run")
        .set(static_cast<double>(pool.executedTaskCount()));
    gauge(prefix + ".tasks_thrown")
        .set(static_cast<double>(pool.failedTaskCount()));
    gauge(prefix + ".peak_queue_depth")
        .set(static_cast<double>(pool.peakQueueDepth()));
}

void
MetricRegistry::merge(const MetricRegistry& other)
{
    if (&other == this)
        return;
    // scoped_lock's deadlock-avoidance covers concurrent cross-merges.
    std::scoped_lock lock(mutex_, other.mutex_);
    for (const auto& [name, c] : other.counters_) {
        auto& slot = counters_[name];
        if (!slot)
            slot = std::make_unique<Counter>();
        slot->add(c->value());
    }
    for (const auto& [name, g] : other.gauges_) {
        auto& slot = gauges_[name];
        if (!slot)
            slot = std::make_unique<Gauge>();
        slot->set(g->value());
    }
    for (const auto& [name, h] : other.histograms_) {
        auto& slot = histograms_[name];
        if (!slot)
            slot = std::make_unique<Histogram>();
        // Bounds are configuration: a target slot that lacks them
        // (freshly created or freshly reset before the source ever
        // merged in) adopts the source's, so merge-after-reset keeps
        // the bucketed shape intact.
        if (slot->bounds().empty()) {
            const auto bounds = h->bounds();
            if (!bounds.empty())
                slot->setBounds(bounds);
        }
        slot->mergeFrom(h->snapshot());
    }
}

std::string
labeled(const std::string& name, const std::string& key,
        const std::string& value)
{
    return name + "{" + key + "=" + value + "}";
}

std::string
MetricRegistry::textDump() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    for (const auto& [name, c] : counters_)
        os << name << " = " << c->value() << "\n";
    for (const auto& [name, g] : gauges_)
        os << name << " = " << g->value() << "\n";
    for (const auto& [name, h] : histograms_)
        os << name << " " << h->summary().toString() << "\n";
    return os.str();
}

std::string
MetricRegistry::jsonDump() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": " << c->value();
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": " << g->value();
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        const auto s = h->summary();
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": {\"count\": " << s.count << ", \"mean\": " << s.mean
           << ", \"p50\": " << s.p50 << ", \"p95\": " << s.p95
           << ", \"p99\": " << s.p99 << ", \"p9999\": " << s.p9999
           << ", \"worst\": " << s.worst;
        const auto bounds = h->bounds();
        if (!bounds.empty()) {
            const auto counts = h->bucketCounts();
            os << ", \"buckets\": {\"bounds\": [";
            for (std::size_t i = 0; i < bounds.size(); ++i)
                os << (i ? ", " : "") << bounds[i];
            os << "], \"counts\": [";
            for (std::size_t i = 0; i < counts.size(); ++i)
                os << (i ? ", " : "") << counts[i];
            os << "]}";
        }
        os << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    return os.str();
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // In place, never erasing: references handed out by counter()/
    // gauge()/histogram() stay valid across reset() (the documented
    // contract), and histogram bucket bounds survive as configuration.
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->set(0.0);
    for (auto& [name, h] : histograms_)
        h->reset();
}

} // namespace ad::obs
