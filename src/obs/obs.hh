/**
 * @file
 * Umbrella header and command-line glue for the observability layer.
 * Tools and benches call setupFromConfig() after Config::fromArgs to
 * honor the shared knobs --
 *
 *   --trace <file>    enable tracing and write a Chrome trace there
 *   --metrics         enable the metric registry and dump it on exit
 *   --obs.trace       bool knob form of --trace
 *   --obs.trace_file  trace output path (default trace.json)
 *   --obs.trace_nn    also emit per-NN-layer spans (off by default)
 *   --obs.metrics     bool knob form of --metrics
 *   --obs.budget_ms   deadline watchdog budget (default 100)
 *   --obs.flight      flight recorder master switch (default on)
 *   --obs.flight_file      post-mortem dump path (default flight.json)
 *   --obs.flight_capacity  events retained per stream (default 1024)
 *   --obs.flight_max_dumps auto-dump budget per run (default 1)
 *   --flight-dump [file]   also dump the flight rings at exit
 *   --obs.perf        sample perf counters over trace spans
 *   --metrics-json <file>  periodic live metrics snapshot target
 *   --obs.metrics_json_interval_ms  min ms between snapshots (500)
 *
 * -- and finish() at the end of the run to write the trace file,
 * honor --flight-dump and print the metrics dump to stderr.
 */

#ifndef AD_OBS_OBS_HH
#define AD_OBS_OBS_HH

#include <string>
#include <vector>

#include "obs/deadline.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/perf.hh"
#include "obs/snapshot.hh"
#include "obs/trace.hh"

namespace ad {
class Config;
}

namespace ad::obs {

/** Resolved observability options for one tool run. */
struct ObsOptions
{
    bool trace = false;
    std::string traceFile; ///< empty unless trace is enabled.
    bool traceNnLayers = false;
    bool metricsDump = false;
    double budgetMs = 100.0;

    bool flight = true;       ///< flight recorder armed (always-on).
    std::string flightFile;   ///< auto/post-mortem dump path.
    std::size_t flightCapacity = 1024; ///< events per stream ring.
    int flightMaxDumps = 1;   ///< auto-dump budget.
    bool flightDumpAtExit = false; ///< --flight-dump given.
    std::string flightDumpPath; ///< --flight-dump target (or default).

    bool perfSpans = false;   ///< sample perf counters over spans.

    std::string metricsJsonPath; ///< live snapshot target; "" = off.
    double metricsJsonIntervalMs = 500.0; ///< snapshot cadence.

    /** True when finish() has end-of-run output to produce. */
    bool any() const
    {
        return trace || metricsDump || flightDumpAtExit;
    }
};

/**
 * Parse the obs.* / --trace / --metrics knobs and enable the global
 * recorder and registry accordingly.
 */
ObsOptions setupFromConfig(const Config& cfg);

/**
 * Every config key setupFromConfig reads, for composing a tool's
 * known-key list (Config::warnUnknownKeys).
 */
std::vector<std::string> knownConfigKeys();

/**
 * End-of-run actions: write the Chrome trace (reporting the path and
 * event count) and dump the metric registry to stderr.
 */
void finish(const ObsOptions& options);

} // namespace ad::obs

#endif // AD_OBS_OBS_HH
