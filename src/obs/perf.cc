#include "obs/perf.hh"

#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "obs/metrics.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ad::obs {

namespace {

/** Thread CPU time in nanoseconds (the portable fallback clock). */
std::uint64_t
threadCpuNs()
{
    timespec ts{};
#if defined(CLOCK_THREAD_CPUTIME_ID)
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
#else
    if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
        return 0;
#endif
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

#if defined(__linux__)
/** Open one per-thread counting fd; -1 on any failure. */
int
openCounter(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = syscall(SYS_perf_event_open, &attr, 0 /* self */,
                            -1 /* any cpu */, -1 /* no group */, 0);
    return static_cast<int>(fd);
}

/** Read one counter value; false when the read fails. */
bool
readCounter(int fd, std::uint64_t* value)
{
    if (fd < 0)
        return false;
    std::uint64_t v = 0;
    if (::read(fd, &v, sizeof(v)) != sizeof(v))
        return false;
    *value = v;
    return true;
}
#endif

/**
 * Per-thread counter file descriptors, opened on the thread's first
 * read() and closed when the thread exits. `cycles` and
 * `instructions` must both open for the thread to count as having
 * hardware counters (IPC needs the pair); `llcMisses` is optional
 * (some VMs expose cycles but not cache events).
 */
struct PerfThread
{
    bool opened = false;
    int taskClockFd = -1;
    int cyclesFd = -1;
    int instructionsFd = -1;
    int llcMissesFd = -1;
    bool hardware = false;

    void
    open()
    {
        opened = true;
        if (PerfSampler::forcedOff())
            return;
#if defined(__linux__)
        taskClockFd = openCounter(PERF_TYPE_SOFTWARE,
                                  PERF_COUNT_SW_TASK_CLOCK);
        cyclesFd = openCounter(PERF_TYPE_HARDWARE,
                               PERF_COUNT_HW_CPU_CYCLES);
        instructionsFd = openCounter(PERF_TYPE_HARDWARE,
                                     PERF_COUNT_HW_INSTRUCTIONS);
        llcMissesFd = openCounter(PERF_TYPE_HARDWARE,
                                  PERF_COUNT_HW_CACHE_MISSES);
        hardware = cyclesFd >= 0 && instructionsFd >= 0;
        if (!hardware) {
            // Partial hardware support is reported as none: an IPC
            // from one live counter would be fabricated.
            close(cyclesFd);
            close(instructionsFd);
            cyclesFd = instructionsFd = -1;
            close(llcMissesFd);
            llcMissesFd = -1;
        }
#endif
    }

    void
    close(int& fd)
    {
#if defined(__linux__)
        if (fd >= 0)
            ::close(fd);
#endif
        fd = -1;
    }

    ~PerfThread()
    {
        close(taskClockFd);
        close(cyclesFd);
        close(instructionsFd);
        close(llcMissesFd);
    }
};

PerfThread&
perfThread()
{
    thread_local PerfThread t;
    return t;
}

/**
 * Per-thread table of the most recent published delta per span name.
 * Fixed capacity: the instrumented span names are the five pipeline
 * stages plus FRAME; extra names simply stop being retained.
 */
struct LatestDeltaTable
{
    static constexpr std::size_t kSlots = 16;
    static constexpr std::size_t kNameLen = 24;
    char names[kSlots][kNameLen] = {};
    PerfDelta deltas[kSlots];
    std::size_t used = 0;

    PerfDelta*
    slotFor(const char* name, bool createIfMissing)
    {
        for (std::size_t i = 0; i < used; ++i)
            if (std::strncmp(names[i], name, kNameLen) == 0)
                return &deltas[i];
        if (!createIfMissing || used == kSlots)
            return nullptr;
        std::strncpy(names[used], name, kNameLen - 1);
        names[used][kNameLen - 1] = '\0';
        return &deltas[used++];
    }
};

LatestDeltaTable&
latestTable()
{
    thread_local LatestDeltaTable table;
    return table;
}

} // namespace

bool
PerfSampler::forcedOff()
{
    // Read once per process: flipping the env var mid-run would give
    // readings from two different worlds within one span.
    static const bool off = [] {
        const char* v = std::getenv("AD_PERF_DISABLE");
        return v && v[0] == '1';
    }();
    return off;
}

bool
PerfSampler::threadHasHardware()
{
    return perfThread().hardware;
}

PerfSampler::Reading
PerfSampler::read()
{
    PerfThread& t = perfThread();
    if (!t.opened)
        t.open();
    Reading r;
#if defined(__linux__)
    if (t.hardware) {
        r.hardware = readCounter(t.cyclesFd, &r.cycles) &&
                     readCounter(t.instructionsFd, &r.instructions);
        readCounter(t.llcMissesFd, &r.llcMisses);
    }
    if (!readCounter(t.taskClockFd, &r.taskClockNs))
        r.taskClockNs = threadCpuNs();
#else
    r.taskClockNs = threadCpuNs();
#endif
    if (!r.hardware)
        r.cycles = r.instructions = r.llcMisses = 0;
    return r;
}

PerfDelta
PerfSampler::delta(const Reading& start, const Reading& end)
{
    PerfDelta d;
    d.taskClockMs =
        static_cast<double>(end.taskClockNs - start.taskClockNs) / 1e6;
    d.hardware = start.hardware && end.hardware;
    if (d.hardware) {
        d.cycles = static_cast<double>(end.cycles - start.cycles);
        d.instructions =
            static_cast<double>(end.instructions - start.instructions);
        d.llcMisses =
            static_cast<double>(end.llcMisses - start.llcMisses);
    }
    return d;
}

void
publishPerfDelta(const char* name, const PerfDelta& d)
{
    if (PerfDelta* slot = latestTable().slotFor(name, true))
        *slot = d;
    if (metricsEnabled()) {
        auto& reg = metrics();
        const std::string prefix = std::string("perf.") + name;
        reg.histogram(prefix + ".task_clock_ms").record(d.taskClockMs);
        if (d.hardware) {
            reg.histogram(prefix + ".ipc").record(d.ipc());
            reg.histogram(prefix + ".llc_mpki")
                .record(d.missesPerKiloInstr());
        }
        reg.gauge("perf.hardware").set(d.hardware ? 1.0 : 0.0);
    }
}

const PerfDelta*
latestPerfDelta(const char* name)
{
    return latestTable().slotFor(name, false);
}

} // namespace ad::obs
