#include "obs/obs.hh"

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"

namespace ad::obs {

ObsOptions
setupFromConfig(const Config& cfg)
{
    ObsOptions opt;

    // --trace may carry the output path (`--trace trace.json`) or be
    // a bare flag (value "true"); obs.trace / obs.trace_file are the
    // config-knob spellings of the same choice.
    std::string traceArg = cfg.getString("trace");
    if (traceArg == "true")
        traceArg.clear();
    opt.traceFile = !traceArg.empty()
                        ? traceArg
                        : cfg.getString("obs.trace_file");
    opt.trace = !opt.traceFile.empty() || cfg.has("trace") ||
                cfg.getBool("obs.trace", false);
    if (opt.trace && opt.traceFile.empty())
        opt.traceFile = "trace.json";

    opt.traceNnLayers = cfg.getBool("obs.trace_nn", false);
    opt.metricsDump = cfg.getBool("metrics", false) ||
                      cfg.getBool("obs.metrics", false);
    opt.budgetMs = cfg.getDouble("obs.budget_ms", 100.0);

    opt.flight = cfg.getBool("obs.flight", true);
    opt.flightFile = cfg.getString("obs.flight_file");
    if (opt.flightFile.empty())
        opt.flightFile = "flight.json";
    const int cap = cfg.getInt("obs.flight_capacity", 1024);
    opt.flightCapacity =
        cap > 0 ? static_cast<std::size_t>(cap) : std::size_t{1};
    opt.flightMaxDumps = cfg.getInt("obs.flight_max_dumps", 1);

    // --flight-dump may carry the output path or be a bare flag; a
    // bare flag dumps to the auto-dump path.
    std::string dumpArg = cfg.getString("flight-dump");
    if (dumpArg == "true")
        dumpArg.clear();
    opt.flightDumpAtExit = cfg.has("flight-dump");
    opt.flightDumpPath = !dumpArg.empty() ? dumpArg : opt.flightFile;

    opt.perfSpans = cfg.getBool("obs.perf", false);

    opt.metricsJsonPath = cfg.getString("metrics-json");
    if (opt.metricsJsonPath == "true") {
        warn("--metrics-json needs a file path; snapshots disabled");
        opt.metricsJsonPath.clear();
    }
    opt.metricsJsonIntervalMs =
        cfg.getDouble("obs.metrics_json_interval_ms", 500.0);

    tracer().setEnabled(opt.trace);
    tracer().setNnLayerSpans(opt.traceNnLayers);
    tracer().setPerfSpans(opt.perfSpans);
    metrics().setEnabled(opt.metricsDump || !opt.metricsJsonPath.empty());

    FlightParams fp;
    fp.capacity = opt.flightCapacity;
    fp.dumpPath = opt.flightFile;
    fp.maxAutoDumps = opt.flightMaxDumps;
    flight().configure(fp);
    flight().setEnabled(opt.flight);
    return opt;
}

std::vector<std::string>
knownConfigKeys()
{
    return {"trace",
            "metrics",
            "obs.trace",
            "obs.trace_file",
            "obs.trace_nn",
            "obs.metrics",
            "obs.budget_ms",
            "obs.flight",
            "obs.flight_file",
            "obs.flight_capacity",
            "obs.flight_max_dumps",
            "flight-dump",
            "obs.perf",
            "metrics-json",
            "obs.metrics_json_interval_ms"};
}

void
finish(const ObsOptions& options)
{
    if (options.trace) {
        auto& rec = tracer();
        if (rec.writeChromeTrace(options.traceFile))
            std::fprintf(stderr,
                         "trace: wrote %zu events to %s "
                         "(open in chrome://tracing or Perfetto)\n",
                         rec.eventCount(), options.traceFile.c_str());
    }
    if (options.flightDumpAtExit)
        flight().dumpNow(options.flightDumpPath, "on-demand", -1, -1);
    if (options.metricsDump) {
        metrics().captureThreadPool("thread_pool.shared",
                                    sharedWorkerPool());
        std::fprintf(stderr, "--- metrics ---\n%s",
                     metrics().textDump().c_str());
    }
}

} // namespace ad::obs
