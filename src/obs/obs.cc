#include "obs/obs.hh"

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"

namespace ad::obs {

ObsOptions
setupFromConfig(const Config& cfg)
{
    ObsOptions opt;

    // --trace may carry the output path (`--trace trace.json`) or be
    // a bare flag (value "true"); obs.trace / obs.trace_file are the
    // config-knob spellings of the same choice.
    std::string traceArg = cfg.getString("trace");
    if (traceArg == "true")
        traceArg.clear();
    opt.traceFile = !traceArg.empty()
                        ? traceArg
                        : cfg.getString("obs.trace_file");
    opt.trace = !opt.traceFile.empty() || cfg.has("trace") ||
                cfg.getBool("obs.trace", false);
    if (opt.trace && opt.traceFile.empty())
        opt.traceFile = "trace.json";

    opt.traceNnLayers = cfg.getBool("obs.trace_nn", false);
    opt.metricsDump = cfg.getBool("metrics", false) ||
                      cfg.getBool("obs.metrics", false);
    opt.budgetMs = cfg.getDouble("obs.budget_ms", 100.0);

    tracer().setEnabled(opt.trace);
    tracer().setNnLayerSpans(opt.traceNnLayers);
    metrics().setEnabled(opt.metricsDump);
    return opt;
}

std::vector<std::string>
knownConfigKeys()
{
    return {"trace",       "metrics",        "obs.trace",
            "obs.trace_file", "obs.trace_nn", "obs.metrics",
            "obs.budget_ms"};
}

void
finish(const ObsOptions& options)
{
    if (options.trace) {
        auto& rec = tracer();
        if (rec.writeChromeTrace(options.traceFile))
            std::fprintf(stderr,
                         "trace: wrote %zu events to %s "
                         "(open in chrome://tracing or Perfetto)\n",
                         rec.eventCount(), options.traceFile.c_str());
    }
    if (options.metricsDump) {
        metrics().captureThreadPool("thread_pool.shared",
                                    sharedWorkerPool());
        std::fprintf(stderr, "--- metrics ---\n%s",
                     metrics().textDump().c_str());
    }
}

} // namespace ad::obs
