#include "obs/deadline.hh"

#include <sstream>

#include "common/logging.hh"

namespace ad::obs {

const char*
stageName(Stage stage)
{
    switch (stage) {
    case Stage::Det:
        return "DET";
    case Stage::Tra:
        return "TRA";
    case Stage::Loc:
        return "LOC";
    case Stage::Fusion:
        return "FUSION";
    case Stage::MotPlan:
        return "MOTPLAN";
    }
    return "?";
}

DeadlineMonitor::DeadlineMonitor(const DeadlineParams& params)
    : params_(params)
{
}

Stage
DeadlineMonitor::worstStage(const FrameLatencySample& s)
{
    // Only stages on the critical path can be blamed: the slower
    // perception branch (LOC vs DET+TRA), then FUSION and MOTPLAN
    // which are always serial.
    Stage worst;
    double worstMs;
    if (s.locMs >= s.detMs + s.traMs) {
        worst = Stage::Loc;
        worstMs = s.locMs;
    } else if (s.detMs >= s.traMs) {
        worst = Stage::Det;
        worstMs = s.detMs;
    } else {
        worst = Stage::Tra;
        worstMs = s.traMs;
    }
    if (s.fusionMs > worstMs) {
        worst = Stage::Fusion;
        worstMs = s.fusionMs;
    }
    if (s.motPlanMs > worstMs)
        worst = Stage::MotPlan;
    return worst;
}

void
DeadlineMonitor::observe(std::int64_t frame,
                         const FrameLatencySample& sample)
{
    ++frames_;
    const double e2e = sample.endToEndMs();
    if (e2e <= params_.budgetMs)
        return;

    ++violations_;
    const Stage stage = worstStage(sample);
    ++byStage_[static_cast<std::size_t>(stage)];
    const double overrun = e2e - params_.budgetMs;
    if (overrun > worstOverrunMs_) {
        worstOverrunMs_ = overrun;
        worstFrame_ = frame;
    }

    if (params_.logViolations && logged_ < params_.maxLoggedViolations) {
        ++logged_;
        warn("deadline: frame ", frame, " e2e ", e2e, " ms exceeds ",
             params_.budgetMs, " ms budget (worst stage ",
             stageName(stage), ")",
             logged_ == params_.maxLoggedViolations
                 ? "; further violations suppressed"
                 : "");
    }
}

std::string
DeadlineMonitor::report() const
{
    std::ostringstream os;
    os << "deadline budget " << params_.budgetMs << " ms: "
       << violations_ << "/" << frames_ << " frames violated";
    if (violations_) {
        os << " (worst frame " << worstFrame_ << ", +" << worstOverrunMs_
           << " ms over budget)\n";
        os << "violation attribution by worst critical-path stage:\n";
        for (std::size_t i = 0; i < kStageCount; ++i) {
            os << "  " << stageName(static_cast<Stage>(i)) << ": "
               << byStage_[i] << "\n";
        }
    } else {
        os << "\n";
    }
    return os.str();
}

} // namespace ad::obs
