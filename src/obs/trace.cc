#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace ad::obs {

namespace {

/** Escape a string for embedding in a JSON string literal. */
void
appendJsonEscaped(std::ostream& os, const std::string& s)
{
    for (const char c : s) {
        switch (c) {
        case '"':
            os << "\\\"";
            break;
        case '\\':
            os << "\\\\";
            break;
        case '\n':
            os << "\\n";
            break;
        case '\t':
            os << "\\t";
            break;
        case '\r':
            os << "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

/** Unique id per TraceRecorder ever constructed (see generation_). */
std::uint64_t
nextGeneration()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TraceRecorder::TraceRecorder()
    : generation_(nextGeneration()),
      epoch_(std::chrono::steady_clock::now())
{
}

TraceRecorder&
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

double
TraceRecorder::nowUs() const
{
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(d).count();
}

TraceRecorder::ThreadBuffer&
TraceRecorder::localBuffer()
{
    // One registry lookup per (thread, recorder) pair; the common case
    // (a single process-wide recorder) hits the thread-local cache.
    // The generation check keeps a cache entry from outliving its
    // recorder: a new recorder at a recycled address has a different
    // generation, so the stale buffer pointer is never dereferenced.
    thread_local std::uint64_t cachedGen = 0;
    thread_local ThreadBuffer* cachedBuffer = nullptr;
    if (cachedGen == generation_ && cachedBuffer)
        return *cachedBuffer;

    std::lock_guard<std::mutex> lock(registryMutex_);
    auto& slot = buffers_[std::this_thread::get_id()];
    if (!slot) {
        slot = std::make_shared<ThreadBuffer>();
        slot->tid = nextTid_++;
    }
    cachedGen = generation_;
    cachedBuffer = slot.get();
    return *slot;
}

namespace {

/**
 * Per-thread frame override installed by ScopedTraceFrame; INT64_MIN
 * means "no override, fall back to the recorder's global frame".
 */
thread_local std::int64_t threadFrameOverride = INT64_MIN;

} // namespace

std::int64_t
TraceRecorder::resolveFrame() const
{
    if (threadFrameOverride != INT64_MIN)
        return threadFrameOverride;
    return currentFrame();
}

ScopedTraceFrame::ScopedTraceFrame(std::int64_t frame)
    : prev_(threadFrameOverride)
{
    threadFrameOverride = frame;
}

ScopedTraceFrame::~ScopedTraceFrame()
{
    threadFrameOverride = prev_;
}

void
TraceRecorder::record(std::string name, const char* category,
                      double startUs, double durUs, std::int64_t frame)
{
    if (!enabled())
        return;
    if (frame == INT64_MIN)
        frame = resolveFrame();
    ThreadBuffer& buf = localBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back({std::move(name), category, frame, buf.tid,
                          startUs, durUs, false, PerfDelta{}});
}

void
TraceRecorder::recordWithPerf(std::string name, const char* category,
                              double startUs, double durUs,
                              std::int64_t frame, const PerfDelta& perf)
{
    if (!enabled())
        return;
    if (frame == INT64_MIN)
        frame = resolveFrame();
    ThreadBuffer& buf = localBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back({std::move(name), category, frame, buf.tid,
                          startUs, durUs, true, perf});
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::size_t n = 0;
    for (const auto& [id, buf] : buffers_) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        n += buf->events.size();
    }
    return n;
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> all;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        for (const auto& [id, buf] : buffers_) {
            std::lock_guard<std::mutex> bufLock(buf->mutex);
            all.insert(all.end(), buf->events.begin(),
                       buf->events.end());
        }
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.startUs < b.startUs;
              });
    return all;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    for (auto& [id, buf] : buffers_) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        buf->events.clear();
    }
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& e : snapshot()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"";
        appendJsonEscaped(os, e.name);
        os << "\",\"cat\":\"";
        appendJsonEscaped(os, e.category);
        os << "\",\"ph\":\"X\",\"ts\":" << e.startUs
           << ",\"dur\":" << e.durUs << ",\"pid\":1,\"tid\":" << e.tid
           << ",\"args\":{\"frame\":" << e.frame;
        if (e.hasPerf) {
            os << ",\"task_clock_ms\":" << e.perf.taskClockMs
               << ",\"hw\":" << (e.perf.hardware ? 1 : 0);
            if (e.perf.hardware)
                os << ",\"ipc\":" << e.perf.ipc()
                   << ",\"llc_mpki\":" << e.perf.missesPerKiloInstr()
                   << ",\"cycles\":" << e.perf.cycles
                   << ",\"instructions\":" << e.perf.instructions;
        }
        os << "}}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
TraceRecorder::writeChromeTrace(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("TraceRecorder: cannot write trace file '", path, "'");
        return false;
    }
    out << chromeTraceJson();
    return static_cast<bool>(out);
}

} // namespace ad::obs
