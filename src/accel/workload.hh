/**
 * @file
 * Component workload descriptors for the accelerator platform models.
 * The workloads are extracted from the real algorithm implementations
 * (the full-scale network profiles of ad_nn and the ORB pipeline's
 * pixel/feature counts), so the models consume the same inventory the
 * measured system executes -- and resolution scaling (Figure 13) is
 * applied mechanistically: spatial (conv/pool/pixel) work scales with
 * pixel count while fully connected layers and per-feature work do
 * not.
 */

#ifndef AD_ACCEL_WORKLOAD_HH
#define AD_ACCEL_WORKLOAD_HH

#include "nn/network.hh"

namespace ad::accel {

/** Feature-extraction workload (the LOC bottleneck portion). */
struct FeWorkload
{
    std::uint64_t pixels = 0;      ///< pyramid pixels streamed.
    std::uint64_t features = 0;    ///< descriptors computed.
    std::uint64_t binaryTests = 0; ///< rBRIEF comparisons.
};

/** The per-frame workload of the three bottleneck components. */
struct Workload
{
    double resolutionScale = 1.0;  ///< pixels relative to KITTI.
    nn::NetworkProfile det;        ///< YOLO-style detector profile.
    nn::NetworkProfile tra;        ///< GOTURN-style tracker profile.
    FeWorkload fe;
    /**
     * LOC's non-FE share executed on the host regardless of the FE
     * accelerator (map query, matching, RANSAC): Figure 7 measures FE
     * at 85.9% of LOC, leaving 14.1% on the host.
     */
    double locOthersCpuMs = 0.0;

    /**
     * Derive the workload at a different camera resolution: conv,
     * pool and activation FLOPs (and activation bytes) scale with the
     * pixel ratio; FC layers and weight footprints do not; FE pixels
     * scale while the retained feature count stays capped by the
     * extractor budget.
     */
    Workload scaled(double newResolutionScale) const;
};

/**
 * The paper-scale workload at the KITTI baseline resolution
 * (1242 x 375): full-scale DET (416 input) and TRA (227 crops)
 * profiles plus the ORB pyramid footprint.
 */
Workload standardWorkload();

/** Spatial-scaling helper exposed for tests. */
nn::NetworkProfile scaleSpatial(const nn::NetworkProfile& profile,
                                double factor);

} // namespace ad::accel

#endif // AD_ACCEL_WORKLOAD_HH
