/**
 * @file
 * Calibration anchors for the accelerator platform models: the paper's
 * measured latency (Figure 10a/b) and power (Figure 10c) grid, plus
 * full-utilization device powers for the vehicle-level analysis
 * (Figure 2). The platform models are roofline-style formulas whose
 * efficiency constants are fitted so that the *standard workload*
 * (accel/workload.hh) reproduces these anchors; scaling away from the
 * anchor (resolution, layer mix) is mechanistic. EXPERIMENTS.md
 * documents every fitted constant and its physical plausibility.
 */

#ifndef AD_ACCEL_CALIBRATION_HH
#define AD_ACCEL_CALIBRATION_HH

#include "accel/platform.hh"

namespace ad::accel {

/** One anchor cell of the Figure 10 grid. */
struct PaperAnchor
{
    double meanMs;
    double tailMs;   ///< 99.99th percentile.
    double powerW;
};

/**
 * Figure 10 anchors for the bottleneck components. FUSION and MOTPLAN
 * (Figure 6, CPU only) are anchored separately in the models.
 */
PaperAnchor paperAnchor(Component c, Platform p);

/**
 * Relocalization spike probability used for LOC's latency mixture on
 * CPU and GPU (the accelerated FE pipelines on FPGA/ASIC measure as
 * deterministic in the paper). Roughly one widened search per 250
 * frames (25 s of driving at 10 fps).
 */
constexpr double kLocSpikeProbability = 0.004;

/**
 * Device power at full utilization (W) for the Figure 2 computing
 * engine configurations (CPU+FPGA / CPU+GPU / CPU+3GPUs): dual-socket
 * Xeon host, Titan X board power, Stratix V development board.
 */
double devicePowerFullUtilWatts(Platform p);

} // namespace ad::accel

#endif // AD_ACCEL_CALIBRATION_HH
