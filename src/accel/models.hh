/**
 * @file
 * Accelerator platform models -- the substitution for the paper's
 * physical Xeon / Titan X / Stratix V / ASIC testbed (see DESIGN.md).
 * Each model converts a component workload (FLOPs by layer kind, bytes,
 * pixels, features) into latency via a roofline-style formula whose
 * efficiency constants are anchored to the paper's measurements
 * (accel/calibration.hh), and into power via the Figure 10c
 * measurements. Scaling behavior away from the anchor -- camera
 * resolution (Figure 13), layer mix, double buffering and LUT
 * trigonometry (the Section 4.2 ablations) -- is mechanistic.
 */

#ifndef AD_ACCEL_MODELS_HH
#define AD_ACCEL_MODELS_HH

#include <memory>

#include "accel/calibration.hh"
#include "accel/platform.hh"
#include "accel/workload.hh"

namespace ad::accel {

/**
 * Abstract platform model: deterministic base latency plus the
 * fitted variability shape.
 */
class PlatformModel
{
  public:
    virtual ~PlatformModel() = default;

    Platform platform() const { return platform_; }

    /**
     * Deterministic (mean) latency of one component invocation under
     * the given workload, in milliseconds.
     */
    virtual double baseLatencyMs(Component c,
                                 const Workload& w) const = 0;

    /** Component power draw (W), per Figure 10c. */
    double powerWatts(Component c) const;

    /**
     * Full latency distribution: the Figure 10 anchor's shape
     * (tail/mean ratio, spike mixture for LOC on CPU/GPU) scaled by
     * the mechanistic base-latency ratio between this workload and
     * the standard one.
     */
    LatencyDistribution latency(Component c, const Workload& w) const;

  protected:
    explicit PlatformModel(Platform p) : platform_(p) {}

    Platform platform_;
};

/**
 * Dual-socket Xeon E5-2630 v3 model. Effective throughputs are fitted
 * to the paper's measured means: the YOLO-style detector runs at
 * ~0.54 effective GFLOPS (unbatched darknet-style convolution), the
 * Caffe-based tracker at ~5.3 GFLOPS (MKL GEMM), and feature
 * extraction at ~80 cycles/pixel plus ~9900 cycles/feature.
 */
class CpuModel : public PlatformModel
{
  public:
    CpuModel() : PlatformModel(Platform::Cpu) {}
    double baseLatencyMs(Component c, const Workload& w) const override;
};

/**
 * Titan X (Pascal) model: per-component effective GFLOPS (weights
 * resident in device memory) and an 80 Mpixel/s CUDA ORB pipeline.
 */
class GpuModel : public PlatformModel
{
  public:
    GpuModel() : PlatformModel(Platform::Gpu) {}
    double baseLatencyMs(Component c, const Workload& w) const override;
};

/**
 * Stratix V model, mirroring the paper's Section 4.2.2 design: DNNs
 * execute layer by layer on the 256-DSP fabric (102.4 GFLOPS peak at
 * 200 MHz) with weights streamed from the host; double buffering
 * overlaps each layer's transfer with the previous layer's compute.
 * GOTURN's FC stack makes TRA transfer-bound (its 436 MB of weights
 * dominate), while the detector is compute-bound. The FE pipeline
 * streams pixels at 250 MHz with LUT-based trigonometry.
 */
class FpgaModel : public PlatformModel
{
  public:
    FpgaModel() : PlatformModel(Platform::Fpga) {}
    double baseLatencyMs(Component c, const Workload& w) const override;

    /** Ablation knobs (defaults reproduce the paper's design). */
    struct Options
    {
        bool doubleBuffering = true; ///< overlap transfer and compute.
        bool lutTrig = true;         ///< LUT sin/cos/atan2 in FE.
    };

    void setOptions(const Options& opts) { opts_ = opts; }
    const Options& options() const { return opts_; }

    /** One layer of the Figure 8 execution schedule. */
    struct ScheduleEntry
    {
        std::string layer;
        double computeMs = 0;
        double transferMs = 0;
        double layerMs = 0;      ///< after double-buffer overlap.
        bool transferBound = false;
    };

    /**
     * The per-layer schedule of a DNN component (DET or TRA) under
     * the current options -- the breakdown behind the DET
     * compute-bound / TRA transfer-bound finding.
     */
    std::vector<ScheduleEntry> schedule(Component c,
                                        const Workload& w) const;

  private:
    Options opts_;
};

/**
 * ASIC trio model: Eyeriss-style 65 nm CNN engine for the detector
 * (200 MHz -- the clock limitation the paper notes makes ASIC DET
 * slower than GPU), an extrapolated 45 nm array for the tracker's
 * convolutions plus an EIE-style FC engine, and the paper's own ARM
 * 45 nm, 4 GHz feature-extraction ASIC (Table 3: 21.97 mW,
 * 6539.9 um^2), whose deep re-timed pipeline spends more cycles per
 * pixel than the FPGA design but runs 16x faster.
 */
class AsicModel : public PlatformModel
{
  public:
    AsicModel() : PlatformModel(Platform::Asic) {}
    double baseLatencyMs(Component c, const Workload& w) const override;

    /** Ablation: LUT trigonometry (4x FE latency when disabled). */
    struct Options
    {
        bool lutTrig = true;
    };

    void setOptions(const Options& opts) { opts_ = opts; }
    const Options& options() const { return opts_; }

  private:
    Options opts_;
};

/** Shared immutable model instance for a platform. */
const PlatformModel& platformModel(Platform p);

/**
 * Amdahl's-law speedup of a component on the multicore CPU when its
 * kernel layer shards across `threads` cores. The parallel fractions
 * come from the Figure 7 cycle breakdown: the DNN share of DET
 * (~99.4%) and TRA (~99%) shards row-wise through the parallel GEMM,
 * while LOC's parallel share is only its RANSAC counting pass (~70%)
 * -- feature extraction stays serial, which is why multicore helps
 * LOC least and the tail argument survives more cores.
 */
double cpuParallelSpeedup(Component c, int threads);

/**
 * Amdahl's-law speedup of a component on the CPU when its DNN runs
 * the int8 quantized kernel path (nn/quant.hh) instead of fp32. The
 * quantizable fraction is the same DNN share cpuParallelSpeedup uses
 * (DET ~99.4%, TRA ~99%); the within-DNN speedups are measured, not
 * assumed -- the BENCH_quant.json artifact from
 * bench_ext_quant_accuracy on this host (int8 GEMM runs ~4x the fp32
 * packed kernel at 512^3, but DET's conv stack only nets ~1.25x
 * because im2col and (de)quantization stay in full precision, while
 * TRA's FC-heavy stack nets ~3.1x). LOC, Fusion and MotPlan carry no
 * DNN and return 1.0.
 */
double cpuQuantizedSpeedup(Component c);

/** The standard (paper-scale, KITTI-resolution) workload, cached. */
const Workload& standardWorkloadRef();

/** Table 3: the FE ASIC's post-synthesis specification. */
struct FeAsicSpec
{
    const char* technology = "ARM Artisan IBM SOI 45 nm";
    double areaUm2 = 6539.9;
    double clockGhz = 4.0;
    double powerMw = 21.97;
};

FeAsicSpec feAsicSpec();

} // namespace ad::accel

#endif // AD_ACCEL_MODELS_HH
