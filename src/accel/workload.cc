#include "accel/workload.hh"

#include <cmath>

#include "nn/models.hh"

namespace ad::accel {

nn::NetworkProfile
scaleSpatial(const nn::NetworkProfile& profile, double factor)
{
    nn::NetworkProfile scaled = profile;
    for (auto& l : scaled.layers) {
        switch (l.kind) {
          case nn::LayerKind::Conv:
          case nn::LayerKind::Pool:
          case nn::LayerKind::Activation:
            l.flops = static_cast<std::uint64_t>(l.flops * factor);
            l.inputBytes =
                static_cast<std::uint64_t>(l.inputBytes * factor);
            l.outputBytes =
                static_cast<std::uint64_t>(l.outputBytes * factor);
            break;
          case nn::LayerKind::FullyConnected:
            break; // feature vectors, not spatial maps
        }
    }
    return scaled;
}

Workload
standardWorkload()
{
    Workload w;
    w.resolutionScale = 1.0;
    w.det = nn::specProfile(nn::detectorSpec(416, 1.0, 4));
    w.tra = nn::trackerProfile(227, 1.0);

    // ORB over KITTI frames (1242 x 375) with the default 4-level,
    // 1.2x pyramid: sum of 1/1.2^(2l) ~= 2.51 of the base image.
    const double basePixels = 1242.0 * 375.0;
    double pixels = 0;
    double scale = 1.0;
    for (int l = 0; l < 4; ++l) {
        pixels += basePixels / (scale * scale);
        scale *= 1.2;
    }
    w.fe.pixels = static_cast<std::uint64_t>(pixels);
    // Keypoint budget 1000 halved per level: 1000+500+250+125.
    w.fe.features = 1875;
    w.fe.binaryTests = w.fe.features * 256;

    // Figure 7: FE = 85.9% of LOC; the paper's CPU LOC mean is
    // 40.8 ms, leaving 40.8 * 0.141 = 5.75 ms of host-side work.
    w.locOthersCpuMs = 40.8 * 0.141;
    return w;
}

Workload
Workload::scaled(double newResolutionScale) const
{
    Workload w = *this;
    const double factor = newResolutionScale / resolutionScale;
    w.resolutionScale = newResolutionScale;
    w.det = scaleSpatial(det, factor);
    w.tra = scaleSpatial(tra, factor);
    w.fe.pixels = static_cast<std::uint64_t>(fe.pixels * factor);
    // Retained features are capped by the extractor budget; only the
    // candidate stream grows with resolution.
    return w;
}

} // namespace ad::accel
