#include "accel/platform.hh"

#include <cmath>

#include "common/logging.hh"

namespace ad::accel {

const char*
platformName(Platform p)
{
    switch (p) {
      case Platform::Cpu: return "CPU";
      case Platform::Gpu: return "GPU";
      case Platform::Fpga: return "FPGA";
      case Platform::Asic: return "ASIC";
    }
    return "?";
}

const char*
componentName(Component c)
{
    switch (c) {
      case Component::Det: return "DET";
      case Component::Tra: return "TRA";
      case Component::Loc: return "LOC";
      case Component::Fusion: return "FUSION";
      case Component::MotPlan: return "MOTPLAN";
    }
    return "?";
}

PlatformSpec
platformSpec(Platform p)
{
    // Table 2 of the paper. Peak GFLOPS: CPU = cores x freq x 16 (AVX2
    // FMA, 8 lanes x 2 ops); GPU = 2 x cores x freq; FPGA = 2 x DSPs x
    // freq; ASIC column reports the Eyeriss-style CNN engine.
    switch (p) {
      case Platform::Cpu:
        return {"Intel Xeon E5-2630 v3 (2S)", 3.2, 16, 128, 59.0,
                16 * 3.2 * 16};
      case Platform::Gpu:
        return {"NVIDIA Titan X (Pascal)", 1.4, 3584, 12, 480.0,
                2 * 3584 * 1.4};
      case Platform::Fpga:
        return {"Altera Stratix V (256 DSPs)", 0.8, 256, 2, 6.4,
                2 * 256 * 0.2}; // DNN engine clocked at 200 MHz
      case Platform::Asic:
        return {"TSMC 65nm CNN / 45nm FC / ARM 45nm FE", 0.2, 168,
                0.0001815, 0.0, 2 * 168 * 0.2};
    }
    panic("platformSpec: bad platform");
}

double
LatencyDistribution::sample(Rng& rng) const
{
    return sampleGivenBody(rng.normal(), rng);
}

double
LatencyDistribution::sampleGivenBody(double z, Rng& rng) const
{
    double v = baseMs;
    if (sigma > 0)
        v *= std::exp(sigma * z);
    if (spikeProb > 0 && rng.bernoulli(spikeProb))
        v += spikeMs * std::exp(0.2 * rng.normal());
    return v;
}

double
LatencyDistribution::mean() const
{
    // E[spike lognormal factor] = exp(0.2^2 / 2).
    return baseMs * std::exp(sigma * sigma / 2) +
           spikeProb * spikeMs * std::exp(0.02);
}

double
LatencyDistribution::tail9999() const
{
    constexpr double z9999 = 3.719; // Phi^-1(0.9999)
    if (spikeProb > 1e-4) {
        // The top 1e-4 of the distribution consists of spike frames;
        // within those, the quantile is at 1 - 1e-4/spikeProb.
        const double q = 1.0 - 1e-4 / spikeProb;
        // Normal quantile approximation (Acklam's simplified form is
        // overkill here; piecewise fit is fine for q in (0.9, 1)).
        const double z = std::sqrt(2.0) *
            1.163 * std::log(1.0 / (2.0 * (1.0 - q))) /
            std::sqrt(std::log(1.0 / (2.0 * (1.0 - q))) + 1.0);
        return baseMs + spikeMs * std::exp(0.2 * std::min(z, 3.719));
    }
    return baseMs * std::exp(z9999 * sigma);
}

LatencyDistribution
LatencyDistribution::scaledBy(double factor) const
{
    LatencyDistribution d = *this;
    d.baseMs *= factor;
    d.spikeMs *= factor;
    return d;
}

LatencySummary
LatencyDistribution::summarize(int n, Rng& rng) const
{
    LatencyRecorder rec(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        rec.record(sample(rng));
    return rec.summary();
}

LatencyDistribution
LatencyDistribution::fit(double meanMs, double tailMs, double spikeProb)
{
    if (meanMs <= 0 || tailMs < meanMs)
        panic("LatencyDistribution::fit: bad targets mean=", meanMs,
              " tail=", tailMs);
    LatencyDistribution d;
    d.spikeProb = spikeProb;
    constexpr double z9999 = 3.719;
    if (spikeProb <= 0) {
        // Lognormal: tail/mean = exp(z*sigma - sigma^2/2).
        const double ratio = tailMs / meanMs;
        double sigma = std::log(ratio) / z9999;
        for (int i = 0; i < 8; ++i) // fixed-point refinement
            sigma = (std::log(ratio) + sigma * sigma / 2) / z9999;
        d.sigma = sigma;
        d.baseMs = meanMs / std::exp(sigma * sigma / 2);
        return d;
    }
    // Spike mixture: small body jitter; the tail is base + spike at
    // the in-spike quantile (factor ~exp(0.2 * z(1 - 1e-4/p))).
    d.sigma = 0.08;
    const double q = 1.0 - 1e-4 / spikeProb;
    const double z = std::sqrt(2.0) *
        1.163 * std::log(1.0 / (2.0 * (1.0 - q))) /
        std::sqrt(std::log(1.0 / (2.0 * (1.0 - q))) + 1.0);
    const double spikeFactor = std::exp(0.2 * std::min(z, 3.719));
    // Solve the 2x2 system: mean and tail as functions of base/spike.
    // mean = base * k1 + p * spike * k2 ; tail = base + spike * f.
    const double k1 = std::exp(d.sigma * d.sigma / 2);
    const double k2 = std::exp(0.02);
    // base = (tail - spike * f); substitute into the mean equation.
    const double spike =
        (meanMs - tailMs * k1 / 1.0) /
        (spikeProb * k2 - spikeFactor * k1);
    d.spikeMs = spike;
    d.baseMs = tailMs - spike * spikeFactor;
    if (d.spikeMs < 0 || d.baseMs <= 0)
        panic("LatencyDistribution::fit: infeasible spike fit for mean=",
              meanMs, " tail=", tailMs, " p=", spikeProb);
    return d;
}

} // namespace ad::accel
