#include "accel/models.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ad::accel {

namespace {

// FUSION and MOTPLAN run on the host CPU in every configuration
// (Figure 6 anchors: ~0.1 ms and ~0.5 ms at the 99.99th percentile).
constexpr double kFusionMeanMs = 0.05;
constexpr double kFusionTailMs = 0.10;
constexpr double kMotPlanMeanMs = 0.30;
constexpr double kMotPlanTailMs = 0.50;

// --- CPU constants (fitted to Figure 10a; see EXPERIMENTS.md). ---
constexpr double kCpuDetGflops = 0.5357;   // 3.830 GFLOP / 7.150 s
constexpr double kCpuTraGflops = 5.314;    // 4.246 GFLOP / 0.799 s
constexpr double kCpuFeCyclesPerPixel = 80.0;
constexpr double kCpuFeCyclesPerFeature = 9900.0;
constexpr double kCpuFreqHz = 3.2e9;

// --- GPU constants. ---
constexpr double kGpuDetGflops = 341.9;    // 3.830 GFLOP / 11.2 ms
constexpr double kGpuTraGflops = 772.0;    // 4.246 GFLOP / 5.5 ms
constexpr double kGpuFeMpixelsPerSec = 80.4; // 1.17 Mpx / 14.55 ms

// --- FPGA constants (Section 4.2.2 design). ---
constexpr double kFpgaDspGflops = 102.4;   // 256 DSPs x 2 x 200 MHz
// The 19-layer detector reconfigures the fabric per layer; its
// effective DSP utilization is fitted at 10.4% of peak. GOTURN's five
// large uniform convolutions sustain ~96% (it is transfer-bound
// anyway).
constexpr double kFpgaDetDspEff = 0.1037;
constexpr double kFpgaTraDspEff = 0.96;
constexpr double kFpgaHostLinkGBs = 0.90;  // effective PCIe gen2 x4
constexpr double kFpgaFeClockHz = 250e6;
constexpr double kFpgaFeCyclesPerPixel = 4.0;
constexpr double kFpgaFeCyclesPerFeature = 300.0; // 256 tests + drain
constexpr double kFpgaLutTrigSpeedup = 1.5; // Section 4.2.2

// --- ASIC constants. ---
constexpr double kAsicCnnGflops = 39.94;   // Eyeriss-style, 200 MHz
constexpr double kAsicTraConvGflops = 2683.0; // extrapolated 45 nm array
constexpr double kAsicFcGflops = 727.0;    // EIE-style engine
constexpr double kAsicFeClockHz = 4e9;     // Table 3
constexpr double kAsicFeCyclesPerPixel = 12.0; // deep re-timed pipeline
constexpr double kAsicFeCyclesPerFeature = 1800.0;
constexpr double kAsicLutTrigSpeedup = 4.0; // Section 4.2.3

/** FE latency common helper. */
double
feLatencyMs(const FeWorkload& fe, double clockHz, double cyclesPerPixel,
            double cyclesPerFeature)
{
    const double cycles = fe.pixels * cyclesPerPixel +
                          fe.features * cyclesPerFeature;
    return cycles / clockHz * 1e3;
}

} // namespace

double
PlatformModel::powerWatts(Component c) const
{
    switch (c) {
      case Component::Det:
      case Component::Tra:
      case Component::Loc:
        return paperAnchor(c, platform_).powerW;
      case Component::Fusion:
      case Component::MotPlan:
        // Host-side glue; its draw is inside the CPU baseline.
        return 0.0;
    }
    panic("powerWatts: bad component");
}

LatencyDistribution
PlatformModel::latency(Component c, const Workload& w) const
{
    if (c == Component::Fusion)
        return LatencyDistribution::fit(kFusionMeanMs, kFusionTailMs);
    if (c == Component::MotPlan)
        return LatencyDistribution::fit(kMotPlanMeanMs, kMotPlanTailMs);

    const PaperAnchor anchor = paperAnchor(c, platform_);
    const double scale = baseLatencyMs(c, w) /
                         baseLatencyMs(c, standardWorkloadRef());
    double spikeProb = 0.0;
    if (c == Component::Loc &&
        (platform_ == Platform::Cpu || platform_ == Platform::Gpu))
        spikeProb = kLocSpikeProbability;
    return LatencyDistribution::fit(anchor.meanMs * scale,
                                    anchor.tailMs * scale, spikeProb);
}

double
CpuModel::baseLatencyMs(Component c, const Workload& w) const
{
    switch (c) {
      case Component::Det:
        return w.det.totalFlops() / (kCpuDetGflops * 1e9) * 1e3;
      case Component::Tra:
        return w.tra.totalFlops() / (kCpuTraGflops * 1e9) * 1e3;
      case Component::Loc:
        return feLatencyMs(w.fe, kCpuFreqHz, kCpuFeCyclesPerPixel,
                           kCpuFeCyclesPerFeature) + w.locOthersCpuMs;
      case Component::Fusion:
        return kFusionMeanMs;
      case Component::MotPlan:
        return kMotPlanMeanMs;
    }
    panic("CpuModel: bad component");
}

double
GpuModel::baseLatencyMs(Component c, const Workload& w) const
{
    switch (c) {
      case Component::Det:
        return w.det.totalFlops() / (kGpuDetGflops * 1e9) * 1e3;
      case Component::Tra:
        return w.tra.totalFlops() / (kGpuTraGflops * 1e9) * 1e3;
      case Component::Loc:
        return w.fe.pixels / (kGpuFeMpixelsPerSec * 1e6) * 1e3 +
               w.locOthersCpuMs;
      case Component::Fusion:
      case Component::MotPlan:
        return 0.0; // host-side engines
    }
    panic("GpuModel: bad component");
}

std::vector<FpgaModel::ScheduleEntry>
FpgaModel::schedule(Component c, const Workload& w) const
{
    if (c != Component::Det && c != Component::Tra)
        panic("FpgaModel::schedule: only DNN components have a "
              "layer schedule");
    const nn::NetworkProfile& net = c == Component::Det ? w.det : w.tra;
    const double eff =
        c == Component::Det ? kFpgaDetDspEff : kFpgaTraDspEff;
    std::vector<ScheduleEntry> entries;
    entries.reserve(net.layers.size());
    for (const auto& layer : net.layers) {
        ScheduleEntry e;
        e.layer = layer.name;
        e.computeMs = layer.flops / (kFpgaDspGflops * eff * 1e9) * 1e3;
        e.transferMs =
            layer.weightBytes / (kFpgaHostLinkGBs * 1e9) * 1e3;
        e.layerMs = opts_.doubleBuffering
                        ? std::max(e.computeMs, e.transferMs)
                        : e.computeMs + e.transferMs;
        e.transferBound = e.transferMs > e.computeMs;
        entries.push_back(e);
    }
    return entries;
}

double
FpgaModel::baseLatencyMs(Component c, const Workload& w) const
{
    switch (c) {
      case Component::Det:
      case Component::Tra: {
        // Layer-by-layer schedule (Figure 8): each layer's weights
        // stream from the host while the fabric computes; with double
        // buffering a layer costs max(compute, transfer), without it
        // the two serialize.
        double totalMs = 0;
        for (const auto& entry : schedule(c, w))
            totalMs += entry.layerMs;
        return totalMs;
      }
      case Component::Loc: {
        double fe = feLatencyMs(w.fe, kFpgaFeClockHz,
                                kFpgaFeCyclesPerPixel,
                                kFpgaFeCyclesPerFeature);
        if (!opts_.lutTrig)
            fe *= kFpgaLutTrigSpeedup;
        return fe + w.locOthersCpuMs;
      }
      case Component::Fusion:
      case Component::MotPlan:
        return 0.0;
    }
    panic("FpgaModel: bad component");
}

double
AsicModel::baseLatencyMs(Component c, const Workload& w) const
{
    switch (c) {
      case Component::Det:
        return w.det.totalFlops() / (kAsicCnnGflops * 1e9) * 1e3;
      case Component::Tra: {
        const double convMs =
            w.tra.flopsOfKind(nn::LayerKind::Conv) /
            (kAsicTraConvGflops * 1e9) * 1e3;
        const double fcMs =
            w.tra.flopsOfKind(nn::LayerKind::FullyConnected) /
            (kAsicFcGflops * 1e9) * 1e3;
        return convMs + fcMs;
      }
      case Component::Loc: {
        double fe = feLatencyMs(w.fe, kAsicFeClockHz,
                                kAsicFeCyclesPerPixel,
                                kAsicFeCyclesPerFeature);
        if (!opts_.lutTrig)
            fe *= kAsicLutTrigSpeedup;
        return fe + w.locOthersCpuMs;
      }
      case Component::Fusion:
      case Component::MotPlan:
        return 0.0;
    }
    panic("AsicModel: bad component");
}

const PlatformModel&
platformModel(Platform p)
{
    static const CpuModel cpu;
    static const GpuModel gpu;
    static const FpgaModel fpga;
    static const AsicModel asic;
    switch (p) {
      case Platform::Cpu: return cpu;
      case Platform::Gpu: return gpu;
      case Platform::Fpga: return fpga;
      case Platform::Asic: return asic;
    }
    panic("platformModel: bad platform");
}

const Workload&
standardWorkloadRef()
{
    static const Workload w = standardWorkload();
    return w;
}

double
cpuParallelSpeedup(Component c, int threads)
{
    if (threads <= 1)
        return 1.0;
    // Parallel fractions from the Figure 7 cycle breakdown: what the
    // row-sharded kernel layer covers on each engine.
    double parallel = 0.0;
    switch (c) {
      case Component::Det: parallel = 0.994; break; // DNN share
      case Component::Tra: parallel = 0.99;  break; // DNN share
      case Component::Loc: parallel = 0.70;  break; // RANSAC counting
      case Component::Fusion:
      case Component::MotPlan: return 1.0;   // below the knob's reach
    }
    return 1.0 / ((1.0 - parallel) + parallel / threads);
}

double
cpuQuantizedSpeedup(Component c)
{
    // Quantizable fraction: the DNN share from the Figure 7 cycle
    // breakdown (same as cpuParallelSpeedup). Within-DNN speedups are
    // the measured dnn_speedup values in BENCH_quant.json
    // (bench_ext_quant_accuracy): DET's conv-dominated stack nets
    // ~1.25x (im2col and (de)quantization remain fp32), TRA's
    // FC-dominated stack ~3.1x.
    double quantizable = 0.0;
    double dnnSpeedup = 1.0;
    switch (c) {
      case Component::Det:
        quantizable = 0.994;
        dnnSpeedup = 1.25;
        break;
      case Component::Tra:
        quantizable = 0.99;
        dnnSpeedup = 3.1;
        break;
      case Component::Loc:
      case Component::Fusion:
      case Component::MotPlan:
        return 1.0; // no DNN on these engines.
    }
    return 1.0 / ((1.0 - quantizable) + quantizable / dnnSpeedup);
}

FeAsicSpec
feAsicSpec()
{
    return FeAsicSpec{};
}

} // namespace ad::accel
