#include "accel/calibration.hh"

#include "common/logging.hh"

namespace ad::accel {

PaperAnchor
paperAnchor(Component c, Platform p)
{
    // Figure 10a (mean), 10b (99.99th percentile) and 10c (power).
    // Rows: DET, TRA, LOC; columns: CPU, GPU, FPGA, ASIC.
    static constexpr PaperAnchor grid[3][4] = {
        // DET
        {{7150.0, 7734.4, 51.2}, {11.2, 14.3, 54.0},
         {369.6, 369.6, 21.5}, {95.9, 95.9, 7.9}},
        // TRA
        {{799.0, 1334.0, 106.9}, {5.5, 6.4, 55.0},
         {536.0, 536.0, 22.7}, {1.8, 1.8, 9.3}},
        // LOC
        {{40.8, 294.2, 53.8}, {20.3, 54.0, 53.0},
         {27.1, 27.1, 19.0}, {10.1, 10.1, 0.1}},
    };
    const int ci = static_cast<int>(c);
    if (ci < 0 || ci >= kNumBottlenecks)
        panic("paperAnchor: ", componentName(c),
              " is not a bottleneck component");
    return grid[ci][static_cast<int>(p)];
}

double
devicePowerFullUtilWatts(Platform p)
{
    switch (p) {
      case Platform::Cpu: return 170.0; // 2 x 85 W TDP sockets
      case Platform::Gpu: return 250.0; // Titan X board power
      case Platform::Fpga: return 25.0; // Stratix V dev board
      case Platform::Asic: return 18.0; // CNN+FC+FE engines combined
    }
    panic("devicePowerFullUtilWatts: bad platform");
}

} // namespace ad::accel
