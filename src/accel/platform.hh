/**
 * @file
 * Accelerator platform taxonomy and latency-distribution primitives for
 * the paper's evaluation (Section 4/5): the four computing platforms of
 * Table 2 (multicore Xeon CPU, Titan X Pascal GPU, Stratix V FPGA, and
 * the ASIC trio -- Eyeriss-style CNN, EIE-style FC, and the paper's own
 * 4 GHz feature-extraction ASIC of Table 3), the three computational
 * bottleneck components (DET, TRA, LOC) plus the two light engines
 * (FUSION, MOTPLAN), and the stochastic latency model that separates
 * near-deterministic accelerators from heavy-tailed CPU execution.
 */

#ifndef AD_ACCEL_PLATFORM_HH
#define AD_ACCEL_PLATFORM_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"

namespace ad::accel {

/** Computing platforms (Table 2). */
enum class Platform { Cpu = 0, Gpu, Fpga, Asic };

constexpr int kNumPlatforms = 4;

/** Pipeline components characterized by the paper. */
enum class Component { Det = 0, Tra, Loc, Fusion, MotPlan };

constexpr int kNumBottlenecks = 3; ///< DET, TRA, LOC.

const char* platformName(Platform p);
const char* componentName(Component c);

/** Hardware specification row from Table 2. */
struct PlatformSpec
{
    const char* model;
    double frequencyGhz;
    int cores;              ///< cores / CUDA cores / DSPs.
    double memoryGb;
    double memoryBwGBs;
    /** Peak single-precision throughput implied by the spec (GFLOPS). */
    double peakGflops;
};

/** Table 2 lookup. */
PlatformSpec platformSpec(Platform p);

/**
 * A component's latency distribution on a platform: a lognormal body
 * (multiplicative execution jitter) plus an optional spike mixture
 * modeling localization's relocalization events -- the widened map
 * search that produces LOC's heavy tail (Section 5.1.2).
 */
struct LatencyDistribution
{
    double baseMs = 0;      ///< lognormal scale (median).
    double sigma = 0;       ///< lognormal shape.
    double spikeProb = 0;   ///< per-frame probability of a spike.
    double spikeMs = 0;     ///< mean extra latency of a spike.

    /** Draw one latency sample. */
    double sample(Rng& rng) const;

    /**
     * Draw a sample whose lognormal body uses the given standard
     * normal variate. Components sharing one physical platform
     * experience the same congestion in a frame, so the system model
     * draws one z per platform per frame and feeds it to every
     * component on that platform -- which is why the paper's all-CPU
     * end-to-end tail (9.1 s) is the *sum* of the component tails.
     * Spike events (relocalization) remain independent.
     */
    double sampleGivenBody(double z, Rng& rng) const;

    /** Analytic mean. */
    double mean() const;

    /**
     * Approximate analytic 99.99th percentile: when spikes are more
     * frequent than 1e-4 the tail is spike-dominated, otherwise the
     * lognormal quantile applies.
     */
    double tail9999() const;

    /** Monte Carlo summary over n samples. */
    LatencySummary summarize(int n, Rng& rng) const;

    /**
     * The same distribution with all latency scales (body median and
     * spike mean) multiplied by `factor`; the shape (sigma, spike
     * probability) is unchanged. Used to apply modeled multicore
     * speedups to the measured single-socket CPU anchors.
     */
    LatencyDistribution scaledBy(double factor) const;

    /**
     * Fit a distribution to a target (mean, p99.99) pair with the
     * given spike probability (0 for pure lognormal). Used to anchor
     * the platform models to measured data.
     */
    static LatencyDistribution fit(double meanMs, double tailMs,
                                   double spikeProb = 0.0);
};

} // namespace ad::accel

#endif // AD_ACCEL_PLATFORM_HH
